//! Architectural invariant checks over the live simulator types.
//!
//! Unlike the lint rules, these checks link against the actual crates and
//! interrogate the constants and configurations the simulator runs with:
//!
//! * PTE bit fields (paper Figure 4) are pairwise disjoint and contiguous.
//! * Anchor-distance candidates are nonempty, strictly increasing powers
//!   of two (the distance is stored as a log2 in anchor PTE ignored bits,
//!   so a non-power-of-two would silently round).
//! * Every scheme's TLB arrays have power-of-two set counts with index
//!   masks covering exactly the VPN index bits (`mask == sets - 1`).

use hytlb_core::DistanceSelector;
use hytlb_mem::Scenario;
use hytlb_pagetable::FLAG_MASKS;
use hytlb_sim::{PaperConfig, SchemeKind};
use std::sync::Arc;

/// Runs every invariant check and returns the violations, each a
/// standalone human-readable sentence. Empty means the architecture
/// constants are consistent.
#[must_use]
pub fn check_all() -> Vec<String> {
    let mut violations = check_pte_masks();
    violations.extend(check_anchor_distances());
    violations.extend(check_tlb_geometries());
    violations
}

/// PTE bit fields must be nonempty, pairwise disjoint, and contiguous.
#[must_use]
pub fn check_pte_masks() -> Vec<String> {
    let mut violations = Vec::new();
    for (i, &(name_a, mask_a)) in FLAG_MASKS.iter().enumerate() {
        if mask_a == 0 {
            violations.push(format!("PTE field `{name_a}` has an empty mask"));
            continue;
        }
        let shifted = mask_a >> mask_a.trailing_zeros();
        if shifted & (shifted + 1) != 0 {
            violations.push(format!("PTE field `{name_a}` mask {mask_a:#x} is not contiguous"));
        }
        for &(name_b, mask_b) in &FLAG_MASKS[i + 1..] {
            if mask_a & mask_b != 0 {
                violations.push(format!(
                    "PTE fields `{name_a}` ({mask_a:#x}) and `{name_b}` \
                     ({mask_b:#x}) overlap"
                ));
            }
        }
    }
    violations
}

/// Anchor-distance candidates must be strictly increasing powers of two.
#[must_use]
pub fn check_anchor_distances() -> Vec<String> {
    let mut violations = Vec::new();
    let candidates = DistanceSelector::paper_default().candidates().to_vec();
    if candidates.is_empty() {
        violations.push("anchor-distance candidate list is empty".to_owned());
    }
    for &d in &candidates {
        if !d.is_power_of_two() {
            violations.push(format!("anchor distance {d} is not a power of two"));
        }
    }
    for pair in candidates.windows(2) {
        if pair[0] >= pair[1] {
            violations.push(format!(
                "anchor distances are not strictly increasing: {} then {}",
                pair[0], pair[1]
            ));
        }
    }
    violations
}

/// The scheme kinds whose TLB arrays the geometry check instantiates: the
/// paper's figure set plus every extension scheme.
fn audited_kinds() -> Vec<SchemeKind> {
    let mut kinds = SchemeKind::paper_set().to_vec();
    kinds.extend([
        SchemeKind::Thp1G,
        SchemeKind::Colt,
        SchemeKind::AnchorStatic(32),
        SchemeKind::AnchorMultiRegion(4),
    ]);
    kinds
}

/// Builds every audited scheme against a small deterministic mapping and
/// verifies each reported TLB array: nonzero ways, power-of-two set
/// count, and an index mask of exactly `sets - 1` (so the index covers
/// the low VPN bits with no gap and no aliasing).
#[must_use]
pub fn check_tlb_geometries() -> Vec<String> {
    let config = PaperConfig::default();
    let map = Arc::new(Scenario::MediumContiguity.generate(4096, config.seed));
    let mut violations = Vec::new();
    for kind in audited_kinds() {
        let scheme = kind.build(&map, &config);
        let geometries = scheme.geometries();
        if geometries.is_empty() {
            violations.push(format!("scheme {} reports no TLB geometries to audit", kind.label()));
        }
        for g in geometries {
            if !g.is_well_formed() {
                violations.push(format!(
                    "scheme {}: TLB array {g} is malformed (want power-of-two \
                     sets, nonzero ways, index mask == sets - 1)",
                    kind.label()
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_invariants_hold() {
        assert_eq!(check_all(), Vec::<String>::new());
    }

    #[test]
    fn every_audited_scheme_reports_geometries() {
        // The geometry check is vacuous for a scheme that returns no
        // arrays, so the check itself must flag that case — proven by the
        // violation text above; here we pin that all audited kinds do
        // report at least one array today.
        assert!(check_tlb_geometries().is_empty());
    }
}
