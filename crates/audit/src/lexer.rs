//! A minimal hand-rolled Rust lexer.
//!
//! The audit rules only need a token stream that is faithful about the
//! things that confuse plain text search: string and character literals,
//! lifetimes, nested block comments, raw strings, and doc comments. The
//! lexer keeps comments in the stream (the allowlist lives in comments)
//! and records the 1-based line of every token.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `as`, `match`, and the `_`
    /// pattern, which Rust treats as its own token but the rules are
    /// happiest seeing as a one-character identifier).
    Ident,
    /// Integer or float literal, with any suffix attached.
    Number,
    /// String, raw string, byte string, or char literal.
    Literal,
    /// Lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// `//` line comment or `/* */` block comment, text included.
    Comment,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification of the token.
    pub kind: TokenKind,
    /// The token's verbatim source text.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Token<'_> {
    /// True for punctuation tokens whose text is exactly `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }

    /// True for identifier tokens whose text is exactly `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// Tokenizes `source`. Unterminated literals and comments are tolerated:
/// the remainder of the file becomes one token, which is the most useful
/// behavior for a linter (it never aborts a whole run on one bad file).
#[must_use]
pub fn tokenize(source: &str) -> Vec<Token<'_>> {
    Lexer { src: source, bytes: source.as_bytes(), pos: 0, line: 1 }.run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        let mut out = Vec::new();
        while let Some(&b) = self.bytes.get(self.pos) {
            let start = self.pos;
            let line = self.line;
            let kind = match b {
                b' ' | b'\t' | b'\r' => {
                    self.pos += 1;
                    continue;
                }
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal()
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string_literal()
                }
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => self.ident(),
                _ => {
                    // Multibyte UTF-8 only occurs inside comments and
                    // strings in this codebase; treat a stray lead byte as
                    // opaque punctuation and resynchronize on the next
                    // ASCII boundary.
                    let ch_len = self.src[self.pos..].chars().next().map_or(1, char::len_utf8);
                    self.pos += ch_len;
                    TokenKind::Punct
                }
            };
            out.push(Token { kind, text: &self.src[start..self.pos], line });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::Comment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Comment
    }

    /// True at `r"`, `r#`, `br"`, or `br#` — the start of a raw string.
    fn raw_string_ahead(&self) -> bool {
        let after_b = if self.bytes[self.pos] == b'b' { self.pos + 1 } else { self.pos };
        self.bytes.get(after_b) == Some(&b'r')
            && matches!(self.bytes.get(after_b + 1), Some(b'"' | b'#'))
    }

    fn raw_string(&mut self) -> TokenKind {
        if self.bytes[self.pos] == b'b' {
            self.pos += 1;
        }
        self.pos += 1; // the `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#foo`: a raw identifier, not a string. Rewind over the
            // hash and lex the identifier body.
            self.pos -= hashes;
            return self.ident();
        }
        self.pos += 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let end = self.pos + 1;
                if self.bytes[end..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes {
                    self.pos = end + hashes;
                    return TokenKind::Literal;
                }
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        TokenKind::Literal
    }

    fn string_literal(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Literal;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Literal
    }

    /// A `'` is either a char literal or a lifetime. It is a lifetime when
    /// an identifier follows and the character after it is not `'`.
    fn quote(&mut self) -> TokenKind {
        let after = self.peek(1);
        let is_lifetime = matches!(after, Some(b'_' | b'a'..=b'z' | b'A'..=b'Z')) && {
            let mut i = self.pos + 2;
            while matches!(self.bytes.get(i), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'))
            {
                i += 1;
            }
            self.bytes.get(i) != Some(&b'\'')
        };
        if is_lifetime {
            self.pos += 2;
            while matches!(self.peek(0), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')) {
                self.pos += 1;
            }
            return TokenKind::Lifetime;
        }
        self.char_literal()
    }

    fn char_literal(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    return TokenKind::Literal;
                }
                b'\n' => {
                    // Unterminated char literal; stop at the line break so
                    // the rest of the file still lexes.
                    return TokenKind::Literal;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Literal
    }

    fn number(&mut self) -> TokenKind {
        let digits: &[u8] = if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.pos += 2;
            b"0123456789abcdefABCDEF_"
        } else {
            b"0123456789_"
        };
        while self.peek(0).is_some_and(|b| digits.contains(&b)) {
            self.pos += 1;
        }
        // A `.` continues the number only when a digit follows (so `0..5`
        // and `4.max(x)` lex the dot as punctuation).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            while self.peek(0).is_some_and(|b| digits.contains(&b)) {
                self.pos += 1;
            }
        }
        // Attach any suffix (`u64`, `f64`, `usize`, exponent).
        while matches!(self.peek(0), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')) {
            self.pos += 1;
        }
        TokenKind::Number
    }

    fn ident(&mut self) -> TokenKind {
        while matches!(self.peek(0), Some(b'_' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9')) {
            self.pos += 1;
        }
        TokenKind::Ident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        tokenize(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_lifetimes_are_distinguished() {
        let toks = kinds("let s: &'a str = \"x as u64 // not code\"; // trailing");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a")));
        assert!(toks.contains(&(TokenKind::Literal, "\"x as u64 // not code\"")));
        assert!(toks.contains(&(TokenKind::Comment, "// trailing")));
        // The `as u64` inside the string must not produce ident tokens.
        assert!(!toks.contains(&(TokenKind::Ident, "as")));
    }

    #[test]
    fn nested_block_comments_and_raw_strings() {
        let toks = kinds("/* a /* b */ c */ r#\"raw \" inner\"# 'x' b'\\n'");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1], (TokenKind::Literal, "r#\"raw \" inner\"#"));
        assert_eq!(toks[2], (TokenKind::Literal, "'x'"));
        assert_eq!(toks[3], (TokenKind::Literal, "b'\\n'"));
    }

    #[test]
    fn numbers_ranges_and_suffixes() {
        let toks = kinds("0x1ff 1_000u64 1.5 0..5");
        assert_eq!(toks[0], (TokenKind::Number, "0x1ff"));
        assert_eq!(toks[1], (TokenKind::Number, "1_000u64"));
        assert_eq!(toks[2], (TokenKind::Number, "1.5"));
        assert_eq!(toks[3], (TokenKind::Number, "0"));
        assert_eq!(toks[4], (TokenKind::Punct, "."));
        assert_eq!(toks[5], (TokenKind::Punct, "."));
        assert_eq!(toks[6], (TokenKind::Number, "5"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = tokenize("a\n/* x\ny */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }
}
