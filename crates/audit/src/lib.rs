//! `hytlb-audit` — self-hosted static analysis for the hytlb workspace.
//!
//! The simulator's figures are only as trustworthy as the bit-exact rules
//! every translation path follows, so this crate enforces them
//! mechanically instead of by review:
//!
//! * [`lexer`] — a minimal hand-rolled Rust tokenizer (comments kept,
//!   lines tracked) in the spirit of the vendored crates: zero external
//!   dependencies.
//! * [`rules`] — the five repo-specific lint rules R1–R5 (address-domain
//!   casts, hot-path panics, crate attributes, determinism, wildcard
//!   match arms) plus the `// audit:allow(rule)` suppression syntax.
//! * [`invariants`] — checks that link against the live simulator types
//!   and verify architectural constants (PTE field disjointness, anchor
//!   distance powers of two, TLB geometry well-formedness).
//! * [`workspace`] — the `.rs` file walker (skips `vendor/` and
//!   `target/`) and the driver that applies the rules to every file.
//!
//! Run it as `cargo run -p hytlb-audit -- check` (lint pass) or
//! `cargo run -p hytlb-audit -- invariants` (constant checks). Both exit
//! nonzero on any finding; CI runs both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod lexer;
pub mod rules;
pub mod workspace;
