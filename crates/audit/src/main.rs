//! Command-line entry point: `hytlb-audit <check|invariants> [root]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hytlb_audit::{invariants, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mode = args.next().unwrap_or_default();
    let root = args.next().map_or_else(workspace::default_root, PathBuf::from);
    match mode.as_str() {
        "check" => run_check(&root),
        "invariants" => run_invariants(),
        _ => {
            eprintln!(
                "usage: hytlb-audit <check|invariants> [workspace-root]\n\
                 \n\
                 check       lint every workspace .rs file against rules R1-R5\n\
                 invariants  verify architectural constants of the live types"
            );
            ExitCode::from(2)
        }
    }
}

fn run_check(root: &std::path::Path) -> ExitCode {
    let findings = workspace::check_workspace(root);
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("audit: clean ({} files)", workspace::rust_files(root).len());
        ExitCode::SUCCESS
    } else {
        println!("audit: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn run_invariants() -> ExitCode {
    let violations = invariants::check_all();
    for violation in &violations {
        println!("{violation}");
    }
    if violations.is_empty() {
        println!("invariants: all hold");
        ExitCode::SUCCESS
    } else {
        println!("invariants: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
