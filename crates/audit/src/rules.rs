//! The repo-specific lint rules (R1–R5) and the allowlist machinery.
//!
//! Every rule works on the token stream of one file plus the file's
//! workspace-relative path, which decides which rules apply:
//!
//! * **`cast` (R1)** — no raw `as` casts to integer types on
//!   address-domain values outside `crates/types`; go through the newtype
//!   accessors (`VirtAddr::as_u64`, `usize_from`, `index_bits`, …).
//! * **`panic` (R2)** — no `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` in simulator hot paths (`crates/sim/src/engine.rs`,
//!   `crates/tlb`, `crates/schemes`) unless allowlisted with the invariant
//!   stated.
//! * **`crate-attrs` (R3)** — every crate root carries
//!   `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//! * **`determinism` (R4)** — no `SystemTime::now`, `thread_rng`,
//!   `from_entropy`, or `rand::random` anywhere; `Instant::now` only in
//!   `crates/bench` (wall-clock reporting, never simulated state).
//! * **`wildcard-match` (R5)** — no `_ =>` match arms in
//!   `crates/schemes`: adding a scheme or page size must be a compile
//!   error at every dispatch site, not a silent fall-through.
//!
//! A finding is suppressed by `// audit:allow(<rule>): <why>` on the same
//! line, or on its own comment line (possibly the first of several
//! comment lines) directly above the offending code line.

use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::HashSet;
use std::fmt;

/// The five audit rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: raw integer `as` cast on an address-domain value.
    Cast,
    /// R2: panic path in simulator hot code.
    Panic,
    /// R3: crate root missing the required inner attributes.
    CrateAttrs,
    /// R4: nondeterministic time or RNG source.
    Determinism,
    /// R5: `_` wildcard match arm in the scheme crate.
    WildcardMatch,
}

impl Rule {
    /// The rule's name as written in `audit:allow(...)` comments.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::Cast => "cast",
            Rule::Panic => "panic",
            Rule::CrateAttrs => "crate-attrs",
            Rule::Determinism => "determinism",
            Rule::WildcardMatch => "wildcard-match",
        }
    }
}

/// One rule violation, pointing at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.message)
    }
}

/// Ident fragments that mark a value as address-domain for R1. An
/// identifier is flagged when any `_`-separated component, lowercased,
/// appears here: `vpn`, `head_vpn`, `PAGE_SIZE`, `pte_bits` all match.
const ADDRESS_FRAGMENTS: [&str; 14] = [
    "va", "pa", "vpn", "pfn", "vcn", "pcn", "avpn", "appn", "wdw", "vaddr", "paddr", "addr", "pte",
    "page",
];

/// Integer target types whose `as` casts R1 inspects (`as f64` for
/// statistics is always fine — floats never feed back into translation).
const INT_TYPES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Runs every path-applicable rule on one file and returns the surviving
/// findings (allowlist already applied). `rel_path` must use `/`
/// separators and be relative to the workspace root.
#[must_use]
pub fn check_file(rel_path: &str, source: &str) -> Vec<Finding> {
    let tokens = tokenize(source);
    let scope = Scope::of(rel_path);
    let test_ranges = test_mod_ranges(&tokens);
    let in_test = |i: usize| test_ranges.iter().any(|&(lo, hi)| lo <= i && i <= hi);

    let mut findings = Vec::new();
    if scope.check_casts {
        rule_cast(rel_path, &tokens, &in_test, &mut findings);
    }
    if scope.check_panics {
        rule_panic(rel_path, &tokens, &in_test, &mut findings);
    }
    rule_determinism(rel_path, &tokens, scope.allow_instant, &mut findings);
    if scope.check_wildcards {
        rule_wildcard(rel_path, &tokens, &in_test, &mut findings);
    }

    let allows = allowed_lines(&tokens);
    findings.retain(|f| !allows.contains(&(f.rule, f.line)));
    findings
}

/// R3, run only on crate roots (`src/lib.rs` files): both required inner
/// attributes must be present.
#[must_use]
pub fn check_crate_root(rel_path: &str, source: &str) -> Vec<Finding> {
    let tokens = tokenize(source);
    let attrs = inner_attributes(&tokens);
    let mut findings = Vec::new();
    for required in ["forbid(unsafe_code)", "warn(missing_docs)"] {
        if !attrs.iter().any(|a| a == required) {
            findings.push(Finding {
                rule: Rule::CrateAttrs,
                file: rel_path.to_owned(),
                line: 1,
                message: format!("crate root is missing `#![{required}]`"),
            });
        }
    }
    findings
}

/// Which rules apply to a file, derived from its workspace-relative path.
struct Scope {
    check_casts: bool,
    check_panics: bool,
    check_wildcards: bool,
    allow_instant: bool,
}

impl Scope {
    fn of(rel_path: &str) -> Scope {
        let is_test_file = rel_path.contains("/tests/")
            || rel_path.starts_with("tests/")
            || rel_path.contains("/benches/")
            || rel_path.starts_with("examples/");
        let in_src = |cr: &str| rel_path.starts_with(&format!("crates/{cr}/src/"));
        Scope {
            check_casts: !is_test_file && !in_src("types") && !in_src("audit"),
            check_panics: !is_test_file
                && (rel_path == "crates/sim/src/engine.rs" || in_src("tlb") || in_src("schemes")),
            check_wildcards: !is_test_file && in_src("schemes"),
            allow_instant: rel_path.starts_with("crates/bench/"),
        }
    }
}

/// Token index ranges (inclusive) covered by `#[cfg(test)] mod … { … }`.
fn test_mod_ranges(tokens: &[Token<'_>]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Walk to the `{` of the annotated item (skipping further
        // attributes and the item header), then brace-match to its end.
        let mut j = i + 7;
        while j < tokens.len() && !tokens[j].is_punct('{') {
            j += 1;
        }
        let mut depth = 0i32;
        let mut end = j;
        while end < tokens.len() {
            if tokens[end].is_punct('{') {
                depth += 1;
            } else if tokens[end].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            end += 1;
        }
        ranges.push((i, end));
        i = end + 1;
    }
    ranges
}

/// Lines whose findings are suppressed, as `(rule, line)` pairs.
///
/// A trailing `// audit:allow(rule)` suppresses its own line. A comment
/// line containing only the allow (possibly followed by more comment
/// lines continuing the justification) suppresses the next line that
/// holds code.
fn allowed_lines(tokens: &[Token<'_>]) -> HashSet<(Rule, u32)> {
    let code_lines: HashSet<u32> =
        tokens.iter().filter(|t| t.kind != TokenKind::Comment).map(|t| t.line).collect();
    let mut allows = HashSet::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let Some(rule) = parse_allow(t.text) else { continue };
        let target = if code_lines.contains(&t.line) {
            // Trailing comment: applies to its own line.
            t.line
        } else {
            // Comment-only line: applies to the first code line below,
            // skipping over the rest of the comment block.
            match (t.line + 1..t.line + 64).find(|l| code_lines.contains(l)) {
                Some(l) => l,
                None => continue,
            }
        };
        allows.insert((rule, target));
    }
    allows
}

/// Extracts the rule from a `// audit:allow(rule)` comment, if this is
/// one.
fn parse_allow(comment: &str) -> Option<Rule> {
    let body = comment.trim_start_matches('/').trim_start();
    let rest = body.strip_prefix("audit:allow(")?;
    let name = rest.split(')').next()?;
    [Rule::Cast, Rule::Panic, Rule::CrateAttrs, Rule::Determinism, Rule::WildcardMatch]
        .into_iter()
        .find(|r| r.name() == name)
}

/// Inner attribute bodies (`forbid(unsafe_code)`, …) at the top of a
/// file, reconstructed from the tokens between `#![` and `]`.
fn inner_attributes(tokens: &[Token<'_>]) -> Vec<String> {
    let mut attrs = Vec::new();
    let code: Vec<&Token<'_>> = tokens.iter().filter(|t| t.kind != TokenKind::Comment).collect();
    let mut i = 0;
    while i + 2 < code.len() {
        if code[i].is_punct('#') && code[i + 1].is_punct('!') && code[i + 2].is_punct('[') {
            let mut body = String::new();
            let mut j = i + 3;
            while j < code.len() && !code[j].is_punct(']') {
                body.push_str(code[j].text);
                j += 1;
            }
            attrs.push(body);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    attrs
}

/// True when any `_`-separated component of `ident` names an
/// address-domain quantity, or the ident is a bit-width accessor whose
/// result is already the canonical integer form.
fn is_address_ident(ident: &str) -> bool {
    if ident == "as_u64" || ident == "as_usize" {
        return true;
    }
    ident.split('_').any(|part| ADDRESS_FRAGMENTS.contains(&part.to_ascii_lowercase().as_str()))
}

/// R1: `as <int-type>` casts whose operand mentions an address-domain
/// identifier.
fn rule_cast(
    rel_path: &str,
    tokens: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    let open_of = matching_opens(tokens);
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("as") || in_test(i) {
            continue;
        }
        let Some(ty) = tokens.get(i + 1) else { continue };
        if ty.kind != TokenKind::Ident || !INT_TYPES.contains(&ty.text) {
            continue;
        }
        if let Some(ident) = operand_address_ident(tokens, i, &open_of) {
            findings.push(Finding {
                rule: Rule::Cast,
                file: rel_path.to_owned(),
                line: tokens[i].line,
                message: format!(
                    "raw `as {}` cast on address-domain value `{ident}`; use the \
                     newtype accessors in crates/types instead",
                    ty.text
                ),
            });
        }
    }
}

/// For each closing bracket token index, the index of its opener.
fn matching_opens(tokens: &[Token<'_>]) -> Vec<Option<usize>> {
    let mut open_of = vec![None; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Punct {
            continue;
        }
        match t.text.chars().next() {
            Some(c @ ('(' | '[' | '{')) => stack.push((c, i)),
            Some(c @ (')' | ']' | '}')) => {
                let want = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                if let Some(&(got, j)) = stack.last() {
                    if got == want {
                        stack.pop();
                        open_of[i] = Some(j);
                    }
                }
            }
            _ => {}
        }
    }
    open_of
}

/// Walks backwards over the operand of the `as` at `as_idx` and returns
/// the first address-domain identifier it mentions, if any.
///
/// `as` binds tighter than every binary operator, so the operand extends
/// left through identifiers, field/path separators, literals, and
/// bracketed groups, and stops at the first operator, comma, or brace.
/// Identifiers inside bracketed groups count: `(pfn.as_u64() / n) as
/// usize` is still an address cast.
fn operand_address_ident<'a>(
    tokens: &'a [Token<'a>],
    as_idx: usize,
    open_of: &[Option<usize>],
) -> Option<&'a str> {
    let mut hit: Option<&str> = None;
    let mut i = as_idx;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        match t.kind {
            TokenKind::Comment => continue,
            TokenKind::Ident => {
                if t.text == "as" {
                    // Chained cast `x as u32 as u64`: keep walking left
                    // past the inner cast's type and keyword.
                    continue;
                }
                if hit.is_none() && is_address_ident(t.text) {
                    hit = Some(t.text);
                }
            }
            TokenKind::Number | TokenKind::Literal | TokenKind::Lifetime => {}
            TokenKind::Punct => match t.text.chars().next() {
                Some(')' | ']') => {
                    // Scan the group's interior for address idents, then
                    // jump to the opener and continue from before it.
                    let Some(open) = open_of[i] else { return hit };
                    if hit.is_none() {
                        hit = tokens[open + 1..i]
                            .iter()
                            .filter(|t| t.kind == TokenKind::Ident)
                            .map(|t| t.text)
                            .find(|s| is_address_ident(s));
                    }
                    i = open;
                }
                Some('.' | ':') => {}
                _ => break,
            },
        }
    }
    hit
}

/// R2: `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!` in hot paths.
fn rule_panic(
    rel_path: &str,
    tokens: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        if in_test(i) {
            continue;
        }
        let t = &tokens[i];
        let what = if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
        {
            format!(".{}()", t.text)
        } else if (t.is_ident("panic") || t.is_ident("unreachable"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            format!("{}!", t.text)
        } else {
            continue;
        };
        findings.push(Finding {
            rule: Rule::Panic,
            file: rel_path.to_owned(),
            line: t.line,
            message: format!(
                "`{what}` in a simulator hot path; return a typed error or \
                 allowlist it with the invariant stated"
            ),
        });
    }
}

/// R4: nondeterministic clock/RNG sources.
fn rule_determinism(
    rel_path: &str,
    tokens: &[Token<'_>],
    allow_instant: bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let followed_by_now = || {
            tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"))
        };
        let banned = match t.text {
            "SystemTime" => followed_by_now().then_some("SystemTime::now"),
            "Instant" if !allow_instant => followed_by_now().then_some("Instant::now"),
            "thread_rng" => Some("thread_rng"),
            "from_entropy" => Some("from_entropy"),
            "random" => (i >= 2
                && tokens[i - 1].is_punct(':')
                && tokens[i - 2].is_punct(':')
                && i >= 3
                && tokens[i - 3].is_ident("rand"))
            .then_some("rand::random"),
            _ => None,
        };
        if let Some(what) = banned {
            findings.push(Finding {
                rule: Rule::Determinism,
                file: rel_path.to_owned(),
                line: t.line,
                message: format!(
                    "`{what}` breaks bit-identical replay; thread a seeded RNG \
                     or pass timestamps in from the caller"
                ),
            });
        }
    }
}

/// R5: `_ =>` wildcard arms in the scheme crate.
fn rule_wildcard(
    rel_path: &str,
    tokens: &[Token<'_>],
    in_test: &dyn Fn(usize) -> bool,
    findings: &mut Vec<Finding>,
) {
    for i in 0..tokens.len() {
        if in_test(i) || !tokens[i].is_ident("_") {
            continue;
        }
        if tokens.get(i + 1).is_some_and(|a| a.is_punct('='))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct('>'))
        {
            findings.push(Finding {
                rule: Rule::WildcardMatch,
                file: rel_path.to_owned(),
                line: tokens[i].line,
                message: "`_ =>` wildcard arm; spell out the remaining variants \
                          so new schemes fail to compile here instead of \
                          falling through"
                    .to_owned(),
            });
        }
    }
}
