//! Workspace file discovery and the lint driver.

use crate::rules::{check_crate_root, check_file, Finding};
use std::path::{Path, PathBuf};

/// Directories never scanned: external stand-ins, build output, VCS.
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", "results"];

/// Returns the workspace root this binary was built from.
#[must_use]
pub fn default_root() -> PathBuf {
    // crates/audit/ -> crates/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Every `.rs` file under `root` (excluding [`SKIP_DIRS`]), as paths
/// relative to `root`, sorted for deterministic output.
#[must_use]
pub fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                if let Ok(rel) = path.strip_prefix(root) {
                    files.push(rel.to_path_buf());
                }
            }
        }
    }
    files.sort();
    files
}

/// Runs the lint rules over every workspace `.rs` file and returns all
/// findings, in path order. Files that cannot be read are skipped (the
/// walker only yields paths it just saw, so this is a race, not an
/// error class worth failing the audit over).
#[must_use]
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rel in rust_files(root) {
        let Ok(source) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(check_file(&rel_str, &source));
        if is_crate_root(&rel_str) {
            findings.extend(check_crate_root(&rel_str, &source));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// True for library crate roots: the facade `src/lib.rs` and every
/// `crates/*/src/lib.rs`.
#[must_use]
pub fn is_crate_root(rel_path: &str) -> bool {
    rel_path == "src/lib.rs"
        || (rel_path.starts_with("crates/") && rel_path.ends_with("/src/lib.rs"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walker_finds_this_file_and_skips_vendor() {
        let root = default_root();
        let files = rust_files(&root);
        assert!(files.iter().any(|f| f.ends_with("crates/audit/src/workspace.rs")));
        assert!(!files.iter().any(|f| f.starts_with("vendor")));
        assert!(!files.iter().any(|f| f.starts_with("target")));
    }

    #[test]
    fn crate_roots_are_recognized() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/tlb/src/lib.rs"));
        assert!(!is_crate_root("crates/tlb/src/l1.rs"));
        assert!(!is_crate_root("crates/bench/src/bin/ablations.rs"));
    }

    #[test]
    fn the_workspace_is_clean() {
        let findings = check_workspace(&default_root());
        let rendered: Vec<String> = findings.iter().map(ToString::to_string).collect();
        assert!(rendered.is_empty(), "audit findings:\n{}", rendered.join("\n"));
    }
}
