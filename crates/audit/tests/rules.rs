//! Fixture tests: for each audit rule, a minimal snippet that must trip
//! it, one that must pass, and one proving `// audit:allow(rule)`
//! suppresses it. These are the tripwires the acceptance criteria ask
//! for — a rule that silently stops firing fails here, not in review.

use hytlb_audit::rules::{check_crate_root, check_file, Finding, Rule};

/// A path inside the scheme crate: in scope for R1, R2, and R5.
const SCHEME_PATH: &str = "crates/schemes/src/fixture.rs";

fn rules_hit(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- R1 cast

#[test]
fn cast_rule_trips_on_address_domain_cast() {
    let src = "fn f(vpn: VirtPageNum) -> usize { vpn.as_u64() as usize }\n";
    let findings = check_file(SCHEME_PATH, src);
    assert_eq!(rules_hit(&findings), vec![Rule::Cast], "{findings:?}");
    assert_eq!(findings[0].line, 1);
    assert!(findings[0].message.contains("as usize"), "{}", findings[0].message);
}

#[test]
fn cast_rule_sees_through_parenthesized_operands() {
    let src = "fn f() -> usize { (pfn.as_u64() / per_node) as usize }\n";
    assert_eq!(rules_hit(&check_file(SCHEME_PATH, src)), vec![Rule::Cast]);
}

#[test]
fn cast_rule_passes_plain_arithmetic_and_float_casts() {
    let src = "fn f(off: u64, n: usize) -> u64 {\n\
               let a = (off + 1) as u64;\n\
               let b = n as u64;\n\
               let c = cycles as f64;\n\
               a + b + c as u64\n\
               }\n";
    assert_eq!(rules_hit(&check_file(SCHEME_PATH, src)), Vec::<Rule>::new());
}

#[test]
fn cast_rule_exempts_types_crate_and_cfg_test() {
    let src = "fn f(vpn: u64) -> usize { vpn as usize }\n";
    assert!(check_file("crates/types/src/addr.rs", src).is_empty());
    let tested = format!("#[cfg(test)]\nmod tests {{\n{src}\n}}\n");
    assert!(check_file(SCHEME_PATH, &tested).is_empty());
}

#[test]
fn cast_rule_honors_allow_comment() {
    let trailing = "fn f(vpn: u64) -> usize { vpn as usize } // audit:allow(cast): ffi\n";
    assert!(check_file(SCHEME_PATH, trailing).is_empty());
    let above = "// audit:allow(cast): fixture — the cast below is deliberate\n\
                 // and the justification spans two comment lines.\n\
                 fn f(vpn: u64) -> usize { vpn as usize }\n";
    assert!(check_file(SCHEME_PATH, above).is_empty());
}

#[test]
fn cast_rule_ignores_casts_inside_strings_and_comments() {
    let src = "fn f() -> &'static str { \"vpn as usize\" } // vpn as usize\n";
    assert!(check_file(SCHEME_PATH, src).is_empty());
}

// --------------------------------------------------------------- R2 panic

#[test]
fn panic_rule_trips_on_each_panicking_form() {
    for snippet in [
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }",
        "fn f() { panic!(\"boom\") }",
        "fn f() { unreachable!() }",
    ] {
        let findings = check_file(SCHEME_PATH, snippet);
        assert_eq!(rules_hit(&findings), vec![Rule::Panic], "snippet: {snippet}");
    }
}

#[test]
fn panic_rule_only_covers_hot_paths() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules_hit(&check_file("crates/sim/src/engine.rs", src)), vec![Rule::Panic]);
    assert_eq!(rules_hit(&check_file("crates/tlb/src/l1.rs", src)), vec![Rule::Panic]);
    // Cold paths (reporting, config) may panic on programmer error.
    assert!(check_file("crates/sim/src/report.rs", src).is_empty());
    assert!(check_file("crates/mem/src/numa.rs", src).is_empty());
}

#[test]
fn panic_rule_honors_allow_with_stated_invariant() {
    let src = "fn f(x: Option<u32>) -> u32 {\n\
               // audit:allow(panic): invariant — `x` was inserted above.\n\
               x.expect(\"inserted\")\n\
               }\n";
    assert!(check_file(SCHEME_PATH, src).is_empty());
}

#[test]
fn panic_rule_does_not_misread_related_idents() {
    // `unwrap_or_else` and `#[should_panic]` are fine.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }\n";
    assert!(check_file(SCHEME_PATH, src).is_empty());
}

// --------------------------------------------------------- R3 crate-attrs

#[test]
fn crate_attrs_rule_trips_when_either_attribute_is_missing() {
    let missing_both = "//! Docs.\npub fn f() {}\n";
    let findings = check_crate_root("crates/x/src/lib.rs", missing_both);
    assert_eq!(rules_hit(&findings), vec![Rule::CrateAttrs, Rule::CrateAttrs]);
    let missing_docs = "#![forbid(unsafe_code)]\npub fn f() {}\n";
    let findings = check_crate_root("crates/x/src/lib.rs", missing_docs);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("missing_docs"), "{}", findings[0].message);
}

#[test]
fn crate_attrs_rule_passes_a_conforming_root() {
    let src = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    assert!(check_crate_root("crates/x/src/lib.rs", src).is_empty());
}

// -------------------------------------------------------- R4 determinism

#[test]
fn determinism_rule_trips_on_clock_and_entropy_sources() {
    for (snippet, what) in [
        ("fn f() { let _ = SystemTime::now(); }", "SystemTime::now"),
        ("fn f() { let _ = Instant::now(); }", "Instant::now"),
        ("fn f() { let mut r = rand::thread_rng(); }", "thread_rng"),
        ("fn f() { let r = SmallRng::from_entropy(); }", "from_entropy"),
        ("fn f() -> u64 { rand::random() }", "rand::random"),
    ] {
        let findings = check_file("crates/mem/src/fixture.rs", snippet);
        assert_eq!(rules_hit(&findings), vec![Rule::Determinism], "snippet: {snippet}");
        assert!(findings[0].message.contains(what), "{}", findings[0].message);
    }
}

#[test]
fn determinism_rule_passes_seeded_rng_and_bench_wall_clock() {
    let seeded = "fn f(seed: u64) { let r = SmallRng::seed_from_u64(seed); }\n";
    assert!(check_file("crates/mem/src/fixture.rs", seeded).is_empty());
    // Wall-clock timing of the harness itself is fine in crates/bench.
    let timed = "fn f() { let t = Instant::now(); }\n";
    assert!(check_file("crates/bench/src/bin/fixture.rs", timed).is_empty());
}

#[test]
fn determinism_rule_honors_allow_comment() {
    let src = "// audit:allow(determinism): host-only diagnostic timestamp.\n\
               fn f() { let _ = SystemTime::now(); }\n";
    assert!(check_file("crates/mem/src/fixture.rs", src).is_empty());
}

// ----------------------------------------------------- R5 wildcard-match

#[test]
fn wildcard_rule_trips_on_wildcard_arm_in_schemes() {
    let src = "fn f(k: Kind) -> u32 { match k { Kind::A => 1, _ => 0 } }\n";
    let findings = check_file(SCHEME_PATH, src);
    assert_eq!(rules_hit(&findings), vec![Rule::WildcardMatch]);
}

#[test]
fn wildcard_rule_passes_exhaustive_and_binding_patterns() {
    // `Some(_)` and closure `|_|` are not wildcard *arms*.
    let src = "fn f(k: Option<u32>) -> u32 {\n\
               match k { Some(_) | None => 0 }\n\
               }\n\
               fn g(v: &[u32]) -> usize { v.iter().map(|_| 1).sum() }\n";
    assert!(check_file(SCHEME_PATH, src).is_empty());
}

#[test]
fn wildcard_rule_is_scoped_to_the_scheme_crate() {
    let src = "fn f(k: Kind) -> u32 { match k { Kind::A => 1, _ => 0 } }\n";
    assert!(check_file("crates/mem/src/fixture.rs", src).is_empty());
}

#[test]
fn wildcard_rule_honors_allow_comment() {
    let src = "fn f(k: Kind) -> u32 {\n\
               match k {\n\
               Kind::A => 1,\n\
               _ => 0, // audit:allow(wildcard-match): external enum.\n\
               }\n\
               }\n";
    assert!(check_file(SCHEME_PATH, src).is_empty());
}

// ------------------------------------------------------------ allowlist

#[test]
fn allow_comment_for_one_rule_does_not_blanket_others() {
    // The allow names `cast`, but the line also panics: the panic must
    // still be reported.
    let src = "fn f(vpn: u64) -> usize {\n\
               // audit:allow(cast): fixture.\n\
               let x = vpn as usize; x.checked_add(1).unwrap()\n\
               }\n";
    let findings = check_file(SCHEME_PATH, src);
    assert_eq!(rules_hit(&findings), vec![Rule::Panic], "{findings:?}");
}

#[test]
fn allow_comment_with_unknown_rule_is_inert() {
    let src = "// audit:allow(everything): nope.\n\
               fn f(vpn: u64) -> usize { vpn as usize }\n";
    assert_eq!(rules_hit(&check_file(SCHEME_PATH, src)), vec![Rule::Cast]);
}
