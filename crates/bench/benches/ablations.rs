//! Criterion: ablation microbenchmarks (DESIGN.md §4) — the performance
//! side of the miss-count ablations in `--bin ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hytlb_core::{AnchorConfig, AnchorScheme, FillPolicy};
use hytlb_mem::Scenario;
use hytlb_schemes::AnchorIndexing;
use hytlb_sim::{Machine, PaperConfig};
use hytlb_trace::WorkloadKind;
use std::sync::Arc;

fn config() -> PaperConfig {
    PaperConfig { accesses: 30_000, footprint_shift: 5, ..PaperConfig::default() }
}

/// Ablation 1: Figure 6 indexing vs naive — wall-clock of a full run (miss
/// differences are reported by the `ablations` binary).
fn indexing(c: &mut Criterion) {
    let config = config();
    let footprint = config.footprint_for(WorkloadKind::Milc);
    let map = Arc::new(Scenario::HighContiguity.generate(footprint, config.seed));
    let trace: Vec<u64> = WorkloadKind::Milc
        .generator(footprint, config.seed)
        .take(config.accesses as usize)
        .collect();
    let mut group = c.benchmark_group("ablation_indexing");
    group.sample_size(10);
    for (label, indexing) in
        [("fig6", AnchorIndexing::Fig6), ("naive", AnchorIndexing::NaiveLowBits)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &indexing, |b, &indexing| {
            b.iter(|| {
                let cfg = AnchorConfig { indexing, ..AnchorConfig::dynamic() };
                let scheme = AnchorScheme::new(Arc::clone(&map), cfg);
                Machine::from_scheme(Box::new(scheme), &map, &config)
                    .run(trace.iter().copied())
                    .tlb_misses()
            });
        });
    }
    group.finish();
}

/// Ablation 3: fill policies.
fn fill_policy(c: &mut Criterion) {
    let config = config();
    let footprint = config.footprint_for(WorkloadKind::Canneal);
    let map = Arc::new(Scenario::MediumContiguity.generate(footprint, config.seed));
    let trace: Vec<u64> = WorkloadKind::Canneal
        .generator(footprint, config.seed)
        .take(config.accesses as usize)
        .collect();
    let mut group = c.benchmark_group("ablation_fill_policy");
    group.sample_size(10);
    for (label, fill) in
        [("prefer_anchor", FillPolicy::PreferAnchor), ("always_regular", FillPolicy::AlwaysRegular)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &fill, |b, &fill| {
            b.iter(|| {
                let cfg = AnchorConfig { fill, ..AnchorConfig::dynamic() };
                let scheme = AnchorScheme::new(Arc::clone(&map), cfg);
                Machine::from_scheme(Box::new(scheme), &map, &config)
                    .run(trace.iter().copied())
                    .tlb_misses()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, indexing, fill_policy);
criterion_main!(benches);
