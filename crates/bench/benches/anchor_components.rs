//! Criterion: the anchor architecture's individual components — the
//! counterparts of Table 2 (lookup flow), Table 6 (Algorithm 1) and the
//! §3.3 distance-change sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hytlb_core::DistanceSelector;
use hytlb_mem::{ContiguityHistogram, Scenario};
use hytlb_pagetable::{AnchoredPageTable, PageTable};
use hytlb_schemes::{AnchorIndexing, SharedL2};
use hytlb_types::{PhysFrameNum, VirtPageNum};

/// Table 2 critical path: a shared-L2 anchor lookup + contiguity check.
fn anchor_lookup(c: &mut Criterion) {
    let mut l2 = SharedL2::paper_default();
    let d_log = 6u32;
    for i in 0..1024u64 {
        l2.insert_anchor(
            VirtPageNum::new(i << d_log),
            PhysFrameNum::new(i << d_log),
            1 << d_log,
            d_log,
            AnchorIndexing::Fig6,
        );
    }
    let mut i = 0u64;
    c.bench_function("table2_anchor_lookup_hit", |b| {
        b.iter(|| {
            i = (i + 37) % (1024 << d_log);
            l2.lookup_anchor(VirtPageNum::new(i), d_log, AnchorIndexing::Fig6)
                .filter(|h| h.covers(VirtPageNum::new(i)))
                .map(|h| h.translate(VirtPageNum::new(i)))
        });
    });
}

/// Algorithm 1: full candidate sweep over a realistic histogram.
fn distance_selection(c: &mut Criterion) {
    let selector = DistanceSelector::paper_default();
    let mut group = c.benchmark_group("table6_algorithm1_select");
    for scenario in [Scenario::DemandPaging, Scenario::LowContiguity, Scenario::MaxContiguity] {
        let map = scenario.generate(1 << 16, 7);
        let hist = ContiguityHistogram::from_map(&map);
        group.bench_with_input(BenchmarkId::from_parameter(scenario.label()), &hist, |b, hist| {
            b.iter(|| selector.select(hist));
        });
    }
    group.finish();
}

/// §3.3: re-anchoring sweeps at the paper's three distances.
fn distance_change_sweep(c: &mut Criterion) {
    let map = Scenario::MaxContiguity.generate(1 << 18, 7); // 1 GB
    let mut group = c.benchmark_group("sec3_3_distance_change_sweep");
    group.sample_size(10);
    for d in [8u64, 64, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), 8);
            b.iter(|| apt.reanchor(&map, d).anchors_written);
        });
    }
    group.finish();
}

criterion_group!(benches, anchor_lookup, distance_selection, distance_change_sweep);
criterion_main!(benches);
