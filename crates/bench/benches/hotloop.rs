//! Single-cell hot-loop throughput: the devirtualized, batched, pre-resolved
//! inner loop against the boxed scalar path it replaced, per scheme.
//!
//! For one (workload, scenario) cell this times two ways of running the same
//! trace through every paper scheme:
//!
//! * **scalar/boxed** — the pre-optimization shape: a `Box<dyn
//!   TranslationScheme>` behind the scalar per-access loop, with the machine
//!   rebuilding its own placement index (one virtual call per access, plus
//!   logical→virtual resolution inline).
//! * **batched/resolved** — the optimized shape: the trace resolved to
//!   virtual addresses once, then replayed through the enum-dispatched
//!   `access_batch` chunks with a shared placement index.
//!
//! Both runs must produce bit-identical stats; the bench asserts it.
//! Results go to `results/BENCH_hotloop.{txt,json}` with per-scheme and
//! aggregate `accesses_per_sec`.
//!
//! ```sh
//! cargo bench -p hytlb-bench --bench hotloop
//! cargo bench -p hytlb-bench --bench hotloop -- --quick
//! ```

use hytlb_bench::emit;
use hytlb_mem::Scenario;
use hytlb_sim::{Machine, PaperConfig, SchemeKind};
use hytlb_trace::WorkloadKind;
use std::sync::Arc;
use std::time::Instant;

/// Per-scheme measurement: wall-clock seconds for both loop shapes.
struct Row {
    label: String,
    scalar_s: f64,
    batched_s: f64,
}

fn main() {
    // `cargo bench` appends harness flags (`--bench`); only `--quick` is
    // ours, everything else is ignored.
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        PaperConfig { accesses: 200_000, footprint_shift: 4, ..PaperConfig::default() }
    } else {
        PaperConfig { accesses: 1_000_000, footprint_shift: 2, ..PaperConfig::default() }
    };
    let workload = WorkloadKind::Canneal;
    let scenario = Scenario::MediumContiguity;

    let footprint = config.footprint_for(workload);
    let map = Arc::new(scenario.generate(footprint, config.seed));
    let index = Arc::new(map.page_index());
    let trace: Vec<u64> =
        workload.generator(footprint, config.seed).take(config.accesses as usize).collect();

    let resolve_start = Instant::now();
    let resolved = index.resolve(&trace);
    let resolve_s = resolve_start.elapsed().as_secs_f64();

    println!(
        "== BENCH: single-cell hot loop ({workload} / {scenario}, {} accesses) ==\n",
        config.accesses
    );

    let mut rows = Vec::new();
    for kind in SchemeKind::paper_set() {
        // The pre-optimization shape: boxed scheme, scalar loop, private index.
        let mut boxed = Machine::from_scheme(kind.build(&map, &config), &map, &config);
        let scalar_start = Instant::now();
        let scalar_stats = boxed.try_run(trace.iter().copied()).expect("mapped trace");
        let scalar_s = scalar_start.elapsed().as_secs_f64();

        // The optimized shape: enum dispatch, batched loop, shared inputs.
        let mut machine = Machine::for_scheme_indexed(kind, &map, &index, &config);
        let batched_start = Instant::now();
        let batched_stats = machine.try_run_resolved(&resolved).expect("mapped trace");
        let batched_s = batched_start.elapsed().as_secs_f64();

        assert_eq!(batched_stats, scalar_stats, "{kind}: batched loop must be bit-identical");
        rows.push(Row { label: kind.label(), scalar_s, batched_s });
    }

    let accesses = config.accesses as f64;
    let total_scalar: f64 = rows.iter().map(|r| r.scalar_s).sum();
    let total_batched: f64 = rows.iter().map(|r| r.batched_s).sum();
    let mut text = format!(
        "{:<10} {:>12} {:>12} {:>9}  {:>14}\n",
        "scheme", "scalar (s)", "batched (s)", "speedup", "batched acc/s"
    );
    let mut schemes_json = Vec::new();
    for row in &rows {
        let speedup = row.scalar_s / row.batched_s.max(1e-9);
        let aps = accesses / row.batched_s.max(1e-9);
        text.push_str(&format!(
            "{:<10} {:>12.3} {:>12.3} {:>8.2}x  {:>12.1} M\n",
            row.label,
            row.scalar_s,
            row.batched_s,
            speedup,
            aps / 1e6
        ));
        schemes_json.push(serde_json::json!({
            "scheme": row.label,
            "scalar_seconds": row.scalar_s,
            "batched_seconds": row.batched_s,
            "speedup": speedup,
            "accesses_per_sec": serde_json::json!({
                "scalar": accesses / row.scalar_s.max(1e-9),
                "batched": aps,
            }),
        }));
    }
    let agg_speedup = total_scalar / total_batched.max(1e-9);
    let agg_scalar_aps = accesses * rows.len() as f64 / total_scalar.max(1e-9);
    let agg_batched_aps = accesses * rows.len() as f64 / total_batched.max(1e-9);
    text.push_str(&format!(
        "\ntrace resolution (once per cell): {resolve_s:.3} s\n\
         aggregate: {total_scalar:.2} s scalar vs {total_batched:.2} s batched \
         ({agg_speedup:.2}x, {:.1} M accesses/s)\n\
         bit-identical to scalar reference: yes\n",
        agg_batched_aps / 1e6
    ));
    let json = serde_json::json!({
        "workload": workload.to_string(),
        "scenario": scenario.to_string(),
        "accesses": config.accesses,
        "resolve_seconds": resolve_s,
        "schemes": schemes_json,
        "aggregate_speedup": agg_speedup,
        "accesses_per_sec": serde_json::json!({
            "scalar": agg_scalar_aps,
            "batched": agg_batched_aps,
        }),
        "bit_identical": true,
    });
    emit("BENCH_hotloop", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
