//! Criterion: the OS-model substrate behind Figure 1 and Table 4 —
//! scenario generation, histogram construction and CDF extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hytlb_mem::{BuddyAllocator, ContiguityHistogram, FragmentationLevel, Fragmenter, Scenario};

/// Table 4 substrate: generating each mapping scenario.
fn scenario_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_scenario_generate");
    group.sample_size(10);
    for scenario in Scenario::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.label()),
            &scenario,
            |b, &scenario| {
                b.iter(|| scenario.generate(1 << 15, 3).mapped_pages());
            },
        );
    }
    group.finish();
}

/// Figure 1 substrate: fragmentation pressure + CDF extraction.
fn fig1_pipeline(c: &mut Criterion) {
    c.bench_function("fig1_pressure_and_cdf", |b| {
        b.iter(|| {
            let mut buddy = BuddyAllocator::new(1 << 16);
            let mut frag = Fragmenter::new(5);
            frag.shatter(&mut buddy, FragmentationLevel::Moderate);
            let map = Scenario::DemandPaging.generate_with_pressure(
                1 << 14,
                5,
                FragmentationLevel::Moderate,
            );
            ContiguityHistogram::from_map(&map).page_weighted_cdf().len()
        });
    });
}

/// Buddy allocator hot path.
fn buddy_alloc_free(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_order0", |b| {
        let mut buddy = BuddyAllocator::new(1 << 16);
        b.iter(|| {
            let f = buddy.allocate(0).expect("space");
            buddy.free(f, 0).expect("valid");
        });
    });
}

criterion_group!(benches, scenario_generation, fig1_pipeline, buddy_alloc_free);
criterion_main!(benches);
