//! Criterion: the parallel matrix driver against the serial reference on
//! a reduced Figure 9 slice, plus the memoization layer in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::run_suite_serial;
use hytlb_sim::matrix::{run_matrix_with, MatrixCache};
use hytlb_sim::{PaperConfig, SchemeKind};
use hytlb_trace::WorkloadKind;

fn bench_config() -> PaperConfig {
    PaperConfig { accesses: 30_000, footprint_shift: 5, ..PaperConfig::default() }
}

const SCENARIOS: [Scenario; 3] =
    [Scenario::DemandPaging, Scenario::MediumContiguity, Scenario::MaxContiguity];
const WORKLOADS: [WorkloadKind; 3] =
    [WorkloadKind::Canneal, WorkloadKind::Gups, WorkloadKind::Omnetpp];

/// Serial reference vs the worker pool at 1, 2 and 4 threads.
fn matrix_driver(c: &mut Criterion) {
    let kinds = SchemeKind::paper_set();
    let cells = (SCENARIOS.len() * WORKLOADS.len() * kinds.len()) as u64;
    let mut group = c.benchmark_group("matrix_driver");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cells));
    group.bench_function("serial_reference", |b| {
        let config = bench_config();
        b.iter(|| {
            SCENARIOS
                .iter()
                .map(|&s| run_suite_serial(s, &WORKLOADS, &kinds, &config))
                .collect::<Vec<_>>()
        });
    });
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &threads| {
            let config = PaperConfig { threads: Some(threads), ..bench_config() };
            b.iter(|| {
                run_matrix_with(&MatrixCache::new(), &SCENARIOS, &WORKLOADS, &kinds, &config)
            });
        });
    }
    group.finish();
}

/// Cost of a cache hit vs regenerating the mapping and trace.
fn matrix_cache(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("matrix_cache");
    group.sample_size(10);
    group.bench_function("mapping_and_trace_miss", |b| {
        b.iter(|| {
            let cache = MatrixCache::new();
            let m = cache.mapping(WorkloadKind::Canneal, Scenario::MediumContiguity, &config);
            let t = cache.trace(WorkloadKind::Canneal, &config);
            (m.map.mapped_pages(), t.len())
        });
    });
    group.bench_function("mapping_and_trace_hit", |b| {
        let cache = MatrixCache::new();
        let _ = cache.mapping(WorkloadKind::Canneal, Scenario::MediumContiguity, &config);
        let _ = cache.trace(WorkloadKind::Canneal, &config);
        b.iter(|| {
            let m = cache.mapping(WorkloadKind::Canneal, Scenario::MediumContiguity, &config);
            let t = cache.trace(WorkloadKind::Canneal, &config);
            (m.map.mapped_pages(), t.len())
        });
    });
    group.finish();
}

criterion_group!(benches, matrix_driver, matrix_cache);
criterion_main!(benches);
