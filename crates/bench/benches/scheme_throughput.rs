//! Criterion: end-to-end translation throughput of every scheme — the
//! simulator-performance counterpart of Figures 7–9 (each group name cites
//! the figure whose experiment it exercises at reduced scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hytlb_mem::Scenario;
use hytlb_sim::{Machine, PaperConfig, SchemeKind};
use hytlb_trace::WorkloadKind;

fn bench_config() -> PaperConfig {
    PaperConfig { accesses: 50_000, footprint_shift: 5, ..PaperConfig::default() }
}

/// Figures 7/8: every scheme on the demand and medium mappings.
fn scheme_throughput(c: &mut Criterion) {
    let config = bench_config();
    for scenario in [Scenario::DemandPaging, Scenario::MediumContiguity] {
        let mut group = c.benchmark_group(format!("fig7_8_translate_{scenario}"));
        let footprint = config.footprint_for(WorkloadKind::Canneal);
        let map = std::sync::Arc::new(scenario.generate(footprint, config.seed));
        let trace: Vec<u64> = WorkloadKind::Canneal
            .generator(footprint, config.seed)
            .take(config.accesses as usize)
            .collect();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.sample_size(10);
        for kind in SchemeKind::paper_set() {
            group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
                b.iter(|| {
                    let mut m = Machine::for_scheme(kind, &map, &config);
                    m.run(trace.iter().copied()).tlb_misses()
                });
            });
        }
        group.finish();
    }
}

/// Figure 9: the all-scenario sweep at miniature scale (one workload).
fn scenario_sweep(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("fig9_scenario_sweep");
    group.sample_size(10);
    for scenario in Scenario::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scenario.label()),
            &scenario,
            |b, &scenario| {
                let footprint = config.footprint_for(WorkloadKind::Milc);
                let map = std::sync::Arc::new(scenario.generate(footprint, config.seed));
                let trace: Vec<u64> = WorkloadKind::Milc
                    .generator(footprint, config.seed)
                    .take(config.accesses as usize)
                    .collect();
                b.iter(|| {
                    let mut m = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config);
                    m.run(trace.iter().copied()).tlb_misses()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, scheme_throughput, scenario_sweep);
criterion_main!(benches);
