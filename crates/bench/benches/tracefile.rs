//! Trace-file subsystem benchmark: compression ratio and streaming
//! throughput of the `HYTLBTR2` format against the legacy v1 format and
//! against regenerating traces from scratch.
//!
//! For each workload this measures (min of 3 runs each):
//!
//! * **regenerate** — running the trace generator, the baseline that
//!   disk-backed replay competes with;
//! * **v1 write** — the legacy raw-u64 format;
//! * **v2 encode** — the compressed block format;
//! * **v2 decode** — streaming replay, asserted bit-identical to the
//!   generated trace.
//!
//! Compression is reported against the v1 file. Note the entropy floor:
//! every generator draws page *offsets* uniformly at random (12
//! incompressible bits/access), and gups also draws its *pages*
//! uniformly over the whole footprint, so gups caps out near 2.3x no
//! matter the codec — the bench reports it honestly rather than
//! cherry-picking. Locality-rich workloads (mcf, graph500, milc,
//! omnetpp) clear 3x.
//!
//! Results go to `results/BENCH_tracefile.{txt,json}`.
//!
//! ```sh
//! cargo bench -p hytlb-bench --bench tracefile
//! cargo bench -p hytlb-bench --bench tracefile -- --quick
//! ```

use hytlb_bench::emit;
use hytlb_sim::PaperConfig;
use hytlb_trace::WorkloadKind;
use hytlb_tracefile::{TraceMeta, TraceReader, TraceWriter};
use std::time::Instant;

struct Row {
    label: &'static str,
    accesses: u64,
    regen_s: f64,
    v1_write_s: f64,
    v1_bytes: u64,
    v2_encode_s: f64,
    v2_decode_s: f64,
    v2_bytes: u64,
}

impl Row {
    fn ratio_vs_v1(&self) -> f64 {
        self.v1_bytes as f64 / self.v2_bytes as f64
    }
}

/// Smallest elapsed seconds over three runs of `f`.
fn min_of_3<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best_s = f64::INFINITY;
    let mut value = None;
    for _ in 0..3 {
        let start = Instant::now();
        let out = f();
        best_s = best_s.min(start.elapsed().as_secs_f64());
        value = Some(out);
    }
    (value.expect("three runs"), best_s)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        PaperConfig { accesses: 150_000, footprint_shift: 4, ..PaperConfig::default() }
    } else {
        PaperConfig { accesses: 1_000_000, footprint_shift: 2, ..PaperConfig::default() }
    };
    let workloads = [
        WorkloadKind::Gups,
        WorkloadKind::Mcf,
        WorkloadKind::Graph500,
        WorkloadKind::Milc,
        WorkloadKind::Omnetpp,
    ];

    println!("== BENCH: trace-file encode/decode ({} accesses per workload) ==\n", config.accesses);

    let mut rows = Vec::new();
    for workload in workloads {
        let footprint = config.footprint_for(workload);
        let take = config.accesses as usize;

        let (trace, regen_s) = min_of_3(|| {
            workload.generator(footprint, config.seed).take(take).collect::<Vec<u64>>()
        });

        let (v1, v1_write_s) = min_of_3(|| {
            let mut out = Vec::new();
            hytlb_trace::write_trace(&mut out, workload.label(), footprint, config.seed, &trace)
                .expect("vec write");
            out
        });

        let meta = TraceMeta::new(workload.label(), footprint, config.seed);
        let (v2, v2_encode_s) = min_of_3(|| {
            let mut out = Vec::new();
            let mut writer = TraceWriter::new(&mut out, &meta).expect("vec write");
            writer.extend(trace.iter().copied()).expect("vec write");
            writer.finish().expect("vec write");
            out
        });

        // Block-at-a-time streaming replay — the same path `TraceStore`
        // replay takes, and the fair comparison against regeneration.
        let (decoded, v2_decode_s) = min_of_3(|| {
            let mut reader = TraceReader::new(&v2[..]).expect("own file parses");
            let mut out = Vec::with_capacity(take);
            while let Some(block) = reader.next_block().expect("own file decodes") {
                out.extend_from_slice(&block.addresses);
            }
            out
        });
        assert_eq!(decoded, trace, "{workload}: decode must be bit-identical");

        rows.push(Row {
            label: workload.label(),
            accesses: trace.len() as u64,
            regen_s,
            v1_write_s,
            v1_bytes: v1.len() as u64,
            v2_encode_s,
            v2_decode_s,
            v2_bytes: v2.len() as u64,
        });
    }

    let mut text = format!(
        "{:<10} {:>9} {:>9} {:>8} {:>11} {:>11} {:>11} {:>12}\n",
        "workload", "v1 MiB", "v2 MiB", "ratio", "regen Ma/s", "enc Ma/s", "dec Ma/s", "dec/regen"
    );
    let mut workloads_json = Vec::new();
    let mut ge_3x = 0usize;
    let mut decode_beats_regen = 0usize;
    for row in &rows {
        let accesses = row.accesses as f64;
        let regen_aps = accesses / row.regen_s.max(1e-9);
        let encode_aps = accesses / row.v2_encode_s.max(1e-9);
        let decode_aps = accesses / row.v2_decode_s.max(1e-9);
        let ratio = row.ratio_vs_v1();
        if ratio >= 3.0 {
            ge_3x += 1;
        }
        if decode_aps >= regen_aps {
            decode_beats_regen += 1;
        }
        text.push_str(&format!(
            "{:<10} {:>9.2} {:>9.2} {:>7.2}x {:>11.1} {:>11.1} {:>11.1} {:>11.2}x\n",
            row.label,
            row.v1_bytes as f64 / (1 << 20) as f64,
            row.v2_bytes as f64 / (1 << 20) as f64,
            ratio,
            regen_aps / 1e6,
            encode_aps / 1e6,
            decode_aps / 1e6,
            decode_aps / regen_aps.max(1e-9),
        ));
        workloads_json.push(serde_json::json!({
            "workload": row.label,
            "accesses": row.accesses,
            "v1_bytes": row.v1_bytes,
            "v2_bytes": row.v2_bytes,
            "compression_ratio_vs_v1": ratio,
            "compression_ratio_vs_raw": (row.accesses * 8) as f64 / row.v2_bytes as f64,
            "regenerate_accesses_per_sec": regen_aps,
            "encode_accesses_per_sec": encode_aps,
            "decode_accesses_per_sec": decode_aps,
            "encode_mib_per_sec": row.v1_bytes as f64 / (1 << 20) as f64 / row.v2_encode_s.max(1e-9),
            "decode_mib_per_sec": row.v1_bytes as f64 / (1 << 20) as f64 / row.v2_decode_s.max(1e-9),
            "v1_write_seconds": row.v1_write_s,
            "decode_vs_regenerate": decode_aps / regen_aps.max(1e-9),
        }));
    }
    text.push_str(&format!(
        "\n{} of {} workloads at >=3x vs v1; decode outpaces regeneration on {} of {}\n\
         (gups pages are uniform random over the footprint — its ~2.3x is the entropy floor,\n\
         not a codec shortfall; throughput columns count trace accesses, MiB/s is of v1 bytes)\n\
         decode bit-identical to generator output: yes\n",
        ge_3x,
        rows.len(),
        decode_beats_regen,
        rows.len(),
    ));
    let json = serde_json::json!({
        "accesses_per_workload": config.accesses,
        "quick": quick,
        "workloads": workloads_json,
        "summary": serde_json::json!({
            "workloads_ge_3x_vs_v1": ge_3x,
            "decode_beats_regenerate": decode_beats_regen,
            "workload_count": rows.len(),
            "bit_identical": true,
        }),
    });
    emit("BENCH_tracefile", &text, &serde_json::to_string_pretty(&json).expect("serializable"));

    assert!(ge_3x >= 3, "expected >=3 workloads at >=3x compression vs v1, got {ge_3x}");
    assert!(
        decode_beats_regen >= 3,
        "expected decode to outpace regeneration on >=3 workloads, got {decode_beats_regen}"
    );
}
