//! Ablation studies for the design choices called out in DESIGN.md §4:
//!
//! 1. Figure 6 anchor indexing vs. naive low-VPN-bit indexing.
//! 2. Table 2 fill policy (prefer-anchor) vs. always-regular.
//! 3. Algorithm 1 inverse-coverage cost weights vs. flat entry counting.
//! 4. Multi-region anchors (§4.2) vs. a single process-wide distance, on a
//!    deliberately bimodal mapping.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_core::{AnchorConfig, AnchorScheme, CostModel, DistanceMode, FillPolicy};
use hytlb_mem::{AddressSpaceMap, ContiguityHistogram, Scenario};
use hytlb_schemes::AnchorIndexing;
use hytlb_sim::experiment::{mapping_for, trace_for};
use hytlb_sim::report::render_table;
use hytlb_sim::{Machine, PaperConfig, RunStats};
use hytlb_trace::WorkloadKind;
use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};
use std::sync::Arc;

fn run_anchor(
    map: &Arc<AddressSpaceMap>,
    cfg: AnchorConfig,
    trace: &[u64],
    config: &PaperConfig,
) -> RunStats {
    let scheme = AnchorScheme::new(Arc::clone(map), cfg);
    Machine::from_scheme(Box::new(scheme), map, config).run(trace.iter().copied())
}

fn main() {
    let config = config_from_args();
    banner("Ablations: indexing / fill policy / cost model / regions", &config);
    let mut text = String::new();
    let mut json = Vec::new();

    // 1. Anchor indexing, at a fixed distance of 32 on medium contiguity
    // — the L2 working set is then ~1000 anchors, which Fig. 6 indexing
    // spreads over all 128 sets while naive low-bit indexing crams into
    // the sets whose low index bits are zero.
    {
        let map = mapping_for(WorkloadKind::Canneal, Scenario::MediumContiguity, &config);
        let trace = trace_for(WorkloadKind::Canneal, &config);
        let mut rows = Vec::new();
        for (label, indexing) in [
            ("Fig6 [d, d+N)", AnchorIndexing::Fig6),
            ("naive low bits", AnchorIndexing::NaiveLowBits),
        ] {
            let cfg = AnchorConfig { indexing, ..AnchorConfig::static_distance(32) };
            let run = run_anchor(&map, cfg, &trace, &config);
            json.push(serde_json::json!({"ablation": "indexing", "variant": label, "walks": run.tlb_misses()}));
            rows.push((
                label.to_owned(),
                vec![run.tlb_misses().to_string(), format!("{:.3}", run.translation_cpi())],
            ));
        }
        text.push_str(&render_table(
            "1. anchor indexing (canneal, medium contig, d=32)",
            &["walks".to_owned(), "CPI".to_owned()],
            &rows,
        ));
        text.push_str("Fig6 indexing must show far fewer walks: naive indexing piles anchors\ninto the low sets and thrashes them.\n\n");
    }

    // 2. Fill policy, on medium contiguity.
    {
        let map = mapping_for(WorkloadKind::Canneal, Scenario::MediumContiguity, &config);
        let trace = trace_for(WorkloadKind::Canneal, &config);
        let mut rows = Vec::new();
        for (label, fill) in [
            ("prefer anchor (paper)", FillPolicy::PreferAnchor),
            ("always regular", FillPolicy::AlwaysRegular),
        ] {
            let cfg = AnchorConfig { fill, ..AnchorConfig::dynamic() };
            let run = run_anchor(&map, cfg, &trace, &config);
            json.push(serde_json::json!({"ablation": "fill", "variant": label, "walks": run.tlb_misses()}));
            rows.push((
                label.to_owned(),
                vec![run.tlb_misses().to_string(), run.stats.coalesced_hits.to_string()],
            ));
        }
        text.push_str(&render_table(
            "2. fill policy (canneal, medium contig)",
            &["walks".to_owned(), "anchor hits".to_owned()],
            &rows,
        ));
        text.push_str("Filling only the anchor on covered misses (Table 2 row 4) converts the\nL2 into anchor entries with large reach; always-regular degrades to\nnear-baseline behaviour.\n\n");
    }

    // 3. Cost model: which distances get picked, and the miss consequence.
    // canneal's demand mapping is the discriminating case — bimodal, with
    // 80% of memory in huge chunks but thousands of tiny chunks.
    {
        let map = mapping_for(WorkloadKind::Canneal, Scenario::DemandPaging, &config);
        let trace = trace_for(WorkloadKind::Canneal, &config);
        let hist = ContiguityHistogram::from_map(&map);
        let mut rows = Vec::new();
        for (label, cost_model) in [
            ("capacity-aware (default)", CostModel::CapacityAware),
            ("Algorithm 1 literal", CostModel::InverseCoverage),
            ("flat entry count", CostModel::FlatCount),
        ] {
            let selector = hytlb_core::DistanceSelector::new(
                (1..=16).map(|s| 1u64 << s).collect(),
                cost_model,
                0.1,
            );
            let d = selector.select(&hist);
            let cfg = AnchorConfig { cost_model, ..AnchorConfig::dynamic() };
            let run = run_anchor(&map, cfg, &trace, &config);
            json.push(serde_json::json!({"ablation": "cost_model", "variant": label, "distance": d, "walks": run.tlb_misses()}));
            rows.push((
                label.to_owned(),
                vec![hytlb_sim::report::format_distance(d), run.tlb_misses().to_string()],
            ));
        }
        text.push_str(&render_table(
            "3. selector cost model (canneal, demand)",
            &["distance".to_owned(), "walks".to_owned()],
            &rows,
        ));
        text.push_str("On bimodal real mappings the literal Algorithm 1 weights select a tiny\ndistance and forfeit the huge chunks; the capacity-aware default follows\nthe paper's stated aim and its Table 6 selections.\n\n");
    }

    // 4. Multi-region vs single distance on a bimodal mapping: a
    // fine-grained arena plus a huge contiguous heap.
    {
        let mut map = AddressSpaceMap::new();
        let mut vpn = 1u64 << 20;
        let mut pfn = 1u64 << 20;
        let arena_pages = 1u64 << 14;
        let mut placed = 0u64;
        while placed < arena_pages {
            let len = 2 + (placed % 7); // 2..8-page chunks
            map.map_range(
                VirtPageNum::new(vpn),
                PhysFrameNum::new(pfn),
                len,
                Permissions::READ_WRITE,
            );
            vpn += len;
            pfn += len + 3;
            placed += len;
        }
        let heap_base = 1u64 << 24;
        let heap_pages = 1u64 << 16;
        map.map_range(
            VirtPageNum::new(heap_base),
            PhysFrameNum::new(1 << 25),
            heap_pages,
            Permissions::READ_WRITE,
        );
        let map = Arc::new(map);
        let footprint = map.mapped_pages();
        let trace: Vec<u64> = WorkloadKind::Canneal
            .generator(footprint, config.seed)
            .take(config.accesses as usize)
            .collect();
        let mut rows = Vec::new();
        for (label, mode) in [
            ("single distance", DistanceMode::Dynamic),
            ("regions (<=8)", DistanceMode::MultiRegion(8)),
        ] {
            let cfg = AnchorConfig { mode, ..AnchorConfig::dynamic() };
            let run = run_anchor(&map, cfg, &trace, &config);
            json.push(serde_json::json!({"ablation": "regions", "variant": label, "walks": run.tlb_misses()}));
            rows.push((
                label.to_owned(),
                vec![run.tlb_misses().to_string(), run.stats.coalesced_hits.to_string()],
            ));
        }
        text.push_str(&render_table(
            "4. multi-region anchors (bimodal mapping)",
            &["walks".to_owned(), "anchor hits".to_owned()],
            &rows,
        ));
        text.push_str("Per-region distances serve both the fine-grained arena and the huge\nheap; a single compromise distance wastes one of them (paper §4.2).\n");
    }

    emit("ablations", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
