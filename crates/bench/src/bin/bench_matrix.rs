//! Wall-clock benchmark of the parallel matrix driver against the serial
//! reference, with a bit-identity check over every cell.
//!
//! Runs the Figure 9 evaluation matrix (all scenarios × all workloads ×
//! the six paper schemes) twice — once through
//! [`run_suite_serial`](hytlb_sim::experiment::run_suite_serial) and once
//! through [`run_matrix`](hytlb_sim::run_matrix) — and emits
//! `results/BENCH_matrix.json` with both timings, the speedup, and the
//! cache's exactly-once build counters.
//!
//! ```sh
//! cargo run --release --bin bench_matrix -- --quick
//! HYTLB_THREADS=4 cargo run --release --bin bench_matrix
//! ```

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::{run_suite_serial, SuiteResult};
use hytlb_sim::matrix::{run_matrix_with, worker_count, MatrixCache};
use hytlb_sim::SchemeKind;
use hytlb_trace::WorkloadKind;
use std::time::Instant;

fn main() {
    let config = config_from_args();
    banner("BENCH: parallel matrix driver vs serial reference", &config);

    let scenarios = Scenario::all();
    let workloads = WorkloadKind::all();
    let kinds = SchemeKind::paper_set();
    let cells = scenarios.len() * workloads.len() * kinds.len();
    let threads = worker_count(&config);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    eprintln!("running {cells} cells serially ...");
    let serial_start = Instant::now();
    let serial: Vec<SuiteResult> =
        scenarios.iter().map(|&s| run_suite_serial(s, &workloads, &kinds, &config)).collect();
    let serial_s = serial_start.elapsed().as_secs_f64();

    eprintln!("running {cells} cells on {threads} worker threads ...");
    let cache = MatrixCache::new();
    let parallel_start = Instant::now();
    let parallel = run_matrix_with(&cache, &scenarios, &workloads, &kinds, &config);
    let parallel_s = parallel_start.elapsed().as_secs_f64();

    assert_eq!(parallel, serial, "parallel matrix must be bit-identical to the serial reference");
    let cache_stats = cache.stats();
    assert_eq!(
        cache_stats.mapping_builds,
        scenarios.len() * workloads.len(),
        "one mapping per (workload, scenario)"
    );
    assert_eq!(cache_stats.trace_builds, workloads.len(), "one trace per workload");

    let speedup = serial_s / parallel_s.max(1e-9);
    let text = format!(
        "cells: {cells} ({} scenarios x {} workloads x {} schemes)\n\
         worker threads: {threads} (of {cores} available cores)\n\
         serial:   {serial_s:.2} s\n\
         parallel: {parallel_s:.2} s\n\
         speedup:  {speedup:.2}x\n\
         bit-identical to serial: yes\n\
         mappings generated: {} (exactly one per workload x scenario)\n\
         traces generated:   {} (exactly one per workload)\n",
        scenarios.len(),
        workloads.len(),
        kinds.len(),
        cache_stats.mapping_builds,
        cache_stats.trace_builds,
    );
    let json = serde_json::json!({
        "cells": cells,
        "scenarios": scenarios.len(),
        "workloads": workloads.len(),
        "schemes": kinds.len(),
        "threads": threads,
        "available_cores": cores,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "bit_identical": true,
        "mapping_builds": cache_stats.mapping_builds,
        "trace_builds": cache_stats.trace_builds,
    });
    emit("BENCH_matrix", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
