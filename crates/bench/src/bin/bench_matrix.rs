//! Wall-clock benchmark of the batched parallel matrix driver against the
//! serial paths, with a bit-identity check over every cell.
//!
//! Runs the Figure 9 evaluation matrix (all scenarios × all workloads ×
//! the six paper schemes) three times:
//!
//! 1. **boxed scalar** — the pre-optimization serial shape: every machine
//!    holds a `Box<dyn TranslationScheme>` behind the scalar per-access
//!    loop and rebuilds its own placement index (this is what
//!    `run_suite_serial` compiled to before the hot-loop overhaul, kept
//!    here as the speedup baseline);
//! 2. **serial reference** — today's
//!    [`run_suite_serial`](hytlb_sim::experiment::run_suite_serial):
//!    enum-dispatched schemes, shared per-row index, still the scalar loop;
//! 3. **parallel batched** — [`run_matrix`](hytlb_sim::run_matrix): memoized
//!    inputs, pre-resolved traces and the chunked `access_batch` loop.
//!
//! All three must agree cell-for-cell; `results/BENCH_matrix.json` records
//! the timings, throughputs, the speedup of (3) over (1), and the cache's
//! exactly-once build counters.
//!
//! ```sh
//! cargo run --release --bin bench_matrix -- --quick
//! HYTLB_THREADS=4 cargo run --release --bin bench_matrix
//! ```

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::{mapping_for, run_suite_serial, trace_for, SuiteResult, WorkloadRow};
use hytlb_sim::matrix::{run_matrix_with, worker_count, MatrixCache};
use hytlb_sim::{Machine, PaperConfig, SchemeKind};
use hytlb_trace::WorkloadKind;
use std::time::Instant;

/// The pre-optimization serial driver, preserved verbatim in shape: boxed
/// schemes (one virtual call per access), a fresh placement index per
/// machine, and the scalar logical-trace loop.
fn run_suite_boxed_scalar(
    scenario: Scenario,
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> SuiteResult {
    let rows = workloads
        .iter()
        .map(|&workload| {
            let map = mapping_for(workload, scenario, config);
            let trace = trace_for(workload, config);
            let runs = kinds
                .iter()
                .map(|&kind| {
                    Machine::from_scheme(kind.build(&map, config), &map, config)
                        .run(trace.iter().copied())
                })
                .collect();
            WorkloadRow { workload, runs }
        })
        .collect();
    SuiteResult { scenario, schemes: kinds.iter().map(|k| k.label()).collect(), rows }
}

fn main() {
    let config = config_from_args();
    banner("BENCH: batched matrix driver vs serial paths", &config);

    let scenarios = Scenario::all();
    let workloads = WorkloadKind::all();
    let kinds = SchemeKind::paper_set();
    let cells = scenarios.len() * workloads.len() * kinds.len();
    let threads = worker_count(&config);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Every path is deterministic, so repeat runs are pure re-timings;
    // the minimum over interleaved rounds discards scheduler and
    // frequency noise (which on shared single-core machines dwarfs the
    // effect being measured) without changing any result.
    const ROUNDS: usize = 3;
    let mut boxed_s = f64::INFINITY;
    let mut serial_s = f64::INFINITY;
    let mut parallel_s = f64::INFINITY;
    let mut boxed = Vec::new();
    let mut serial = Vec::new();
    let mut parallel = Vec::new();
    let mut cache = MatrixCache::new();
    for round in 1..=ROUNDS {
        // A fresh cache per round, so every parallel timing pays the
        // exactly-once generation cost just like the serial paths do.
        cache = MatrixCache::new();
        eprintln!("round {round}/{ROUNDS}: {cells} cells through the boxed scalar loop ...");
        let start = Instant::now();
        boxed = scenarios
            .iter()
            .map(|&s| run_suite_boxed_scalar(s, &workloads, &kinds, &config))
            .collect();
        boxed_s = boxed_s.min(start.elapsed().as_secs_f64());

        eprintln!("round {round}/{ROUNDS}: {cells} cells through the serial reference ...");
        let start = Instant::now();
        serial =
            scenarios.iter().map(|&s| run_suite_serial(s, &workloads, &kinds, &config)).collect();
        serial_s = serial_s.min(start.elapsed().as_secs_f64());

        eprintln!("round {round}/{ROUNDS}: {cells} cells on {threads} worker threads ...");
        let start = Instant::now();
        parallel = run_matrix_with(&cache, &scenarios, &workloads, &kinds, &config);
        parallel_s = parallel_s.min(start.elapsed().as_secs_f64());
    }

    assert_eq!(serial, boxed, "serial reference must match the boxed scalar loop");
    assert_eq!(parallel, serial, "parallel matrix must be bit-identical to the serial reference");
    let cache_stats = cache.stats();
    assert_eq!(
        cache_stats.mapping_builds,
        scenarios.len() * workloads.len(),
        "one mapping per (workload, scenario)"
    );
    assert_eq!(cache_stats.trace_builds, workloads.len(), "one trace per workload");
    assert_eq!(
        cache_stats.resolved_builds,
        scenarios.len() * workloads.len(),
        "one resolved trace per (workload, scenario)"
    );

    let speedup = boxed_s / parallel_s.max(1e-9);
    let total_accesses = (cells as u64) * config.accesses;
    let boxed_aps = total_accesses as f64 / boxed_s.max(1e-9);
    let serial_aps = total_accesses as f64 / serial_s.max(1e-9);
    let parallel_aps = total_accesses as f64 / parallel_s.max(1e-9);
    let text = format!(
        "cells: {cells} ({} scenarios x {} workloads x {} schemes)\n\
         worker threads: {threads} (of {cores} available cores)\n\
         boxed scalar (pre-optimization): {boxed_s:.2} s ({:.1} M accesses/s)\n\
         serial reference:                {serial_s:.2} s ({:.1} M accesses/s)\n\
         parallel batched:                {parallel_s:.2} s ({:.1} M accesses/s)\n\
         speedup over pre-optimization:   {speedup:.2}x\n\
         bit-identical across all three paths: yes\n\
         mappings generated: {} (exactly one per workload x scenario)\n\
         traces generated:   {} (exactly one per workload)\n\
         resolved traces:    {} (exactly one per workload x scenario)\n",
        scenarios.len(),
        workloads.len(),
        kinds.len(),
        boxed_aps / 1e6,
        serial_aps / 1e6,
        parallel_aps / 1e6,
        cache_stats.mapping_builds,
        cache_stats.trace_builds,
        cache_stats.resolved_builds,
    );
    let json = serde_json::json!({
        "cells": cells,
        "scenarios": scenarios.len(),
        "workloads": workloads.len(),
        "schemes": kinds.len(),
        "threads": threads,
        "available_cores": cores,
        "serial_seconds": boxed_s,
        "serial_reference_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "accesses_per_sec": serde_json::json!({
            "serial": boxed_aps,
            "serial_reference": serial_aps,
            "parallel": parallel_aps,
        }),
        "bit_identical": true,
        "mapping_builds": cache_stats.mapping_builds,
        "trace_builds": cache_stats.trace_builds,
        "resolved_builds": cache_stats.resolved_builds,
    });
    emit("BENCH_matrix", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
