//! Compares two archived suite-result JSON files (as written by the
//! figure binaries into `results/`), printing per-cell TLB-miss deltas —
//! the regression-checking tool for simulator changes.
//!
//! ```sh
//! cargo run --release -p hytlb-bench --bin compare_results -- \
//!     results/fig08_medium.json /tmp/before/fig08_medium.json
//! ```

use hytlb_sim::experiment::SuiteResult;
use hytlb_sim::report::render_table;
use std::fs;
use std::process::exit;

/// The figure JSONs are either one suite or a list of suites.
fn load(path: &str) -> Vec<SuiteResult> {
    let data = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(2);
    });
    serde_json::from_str::<Vec<SuiteResult>>(&data)
        .or_else(|_| serde_json::from_str::<SuiteResult>(&data).map(|s| vec![s]))
        .unwrap_or_else(|e| {
            eprintln!("{path} is not a suite-result JSON: {e}");
            exit(2);
        })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(a_path), Some(b_path)) = (args.next(), args.next()) else {
        eprintln!("usage: compare_results <new.json> <old.json>");
        exit(2);
    };
    let new = load(&a_path);
    let old = load(&b_path);
    if new.len() != old.len() {
        eprintln!("suite counts differ: {} vs {}", new.len(), old.len());
        exit(1);
    }
    let mut regressions = 0u32;
    for (n, o) in new.iter().zip(&old) {
        if n.scenario != o.scenario || n.schemes != o.schemes {
            eprintln!("suite shapes differ for {}", n.scenario);
            exit(1);
        }
        let mut rows = Vec::new();
        for (nr, or) in n.rows.iter().zip(&o.rows) {
            let cells: Vec<String> = nr
                .runs
                .iter()
                .zip(&or.runs)
                .map(|(a, b)| {
                    let delta = a.tlb_misses() as i64 - b.tlb_misses() as i64;
                    if b.tlb_misses() > 0 && delta as f64 > 0.05 * b.tlb_misses() as f64 {
                        regressions += 1;
                    }
                    format!("{delta:+}")
                })
                .collect();
            rows.push((nr.workload.label().to_owned(), cells));
        }
        println!(
            "{}",
            render_table(&format!("walk delta [{}]", n.scenario.label()), &n.schemes, &rows)
        );
    }
    if regressions > 0 {
        println!("{regressions} cell(s) regressed by more than 5% — exit 1");
        exit(1);
    }
    println!("no cell regressed by more than 5%");
}
