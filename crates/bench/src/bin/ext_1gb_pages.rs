//! Extension experiment: how far do fixed page sizes scale? (§2.1)
//!
//! The paper argues that fixed page sizes have limited coverage
//! scalability even with 1 GB pages, because the OS must hand out 1 GB
//! *aligned, fully contiguous* units — which fragmented memory never
//! provides. This experiment compares THP, THP-1G, RMM and the anchor TLB
//! on the scenario spectrum: at max contiguity the giant pages shine
//! (16 entries cover the footprint); a single 2 MB notch of fragmentation
//! (high contiguity) already locks them out, while anchors keep scaling.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::{mapping_for, trace_for};
use hytlb_sim::report::render_table;
use hytlb_sim::{Machine, SchemeKind};
use hytlb_trace::WorkloadKind;

fn main() {
    let mut config = config_from_args();
    // Fixed-size coverage limits only bind beyond the L2's 2 MB reach
    // (1024 entries x 2 MB = 2 GB), so this experiment runs gups at its
    // full 8 GB footprint by default; --quick still shrinks it.
    config.footprint_shift = config.footprint_shift.saturating_sub(2);
    banner("Extension: 1 GB pages and the limits of fixed sizes (§2.1)", &config);

    let workload = WorkloadKind::Gups; // the giant-footprint stress case
    let kinds = [
        SchemeKind::Thp,
        SchemeKind::Thp1G,
        SchemeKind::Rmm,
        SchemeKind::AnchorDynamic,
    ];
    let cols: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for scenario in [Scenario::MaxContiguity, Scenario::HighContiguity, Scenario::MediumContiguity] {
        let map = mapping_for(workload, scenario, &config);
        let trace = trace_for(workload, &config);
        let base = Machine::for_scheme(SchemeKind::Baseline, &map, &config).run(trace.iter().copied());
        let cells: Vec<String> = kinds
            .iter()
            .map(|&kind| {
                let run = Machine::for_scheme(kind, &map, &config).run(trace.iter().copied());
                json.push(serde_json::json!({
                    "scenario": scenario.label(),
                    "scheme": run.scheme,
                    "relative_misses_pct": run.relative_misses_pct(&base),
                }));
                format!("{:.1}", run.relative_misses_pct(&base))
            })
            .collect();
        rows.push((scenario.label().to_owned(), cells));
    }
    let text = format!(
        "{}\nRelative misses (%) for gups. 1 GB pages only engage when the mapping\n\
         offers 1 GB-aligned contiguous units (max); at high contiguity (chunks\n\
         up to 256 MB) THP-1G degenerates to THP while anchors keep scaling —\n\
         §2.1's point that fixed sizes' \"scalability of coverage will be\n\
         eventually limited\".\n",
        render_table("scenario", &cols, &rows)
    );
    emit(
        "ext_1gb_pages",
        &text,
        &serde_json::to_string_pretty(&json).expect("serializable"),
    );
}
