//! Extension experiment: how far do fixed page sizes scale? (§2.1)
//!
//! The paper argues that fixed page sizes have limited coverage
//! scalability even with 1 GB pages, because the OS must hand out 1 GB
//! *aligned, fully contiguous* units — which fragmented memory never
//! provides. This experiment compares THP, THP-1G, RMM and the anchor TLB
//! on the scenario spectrum: at max contiguity the giant pages shine
//! (16 entries cover the footprint); a single 2 MB notch of fragmentation
//! (high contiguity) already locks them out, while anchors keep scaling.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::report::render_table;
use hytlb_sim::{run_matrix, SchemeKind};
use hytlb_trace::WorkloadKind;

fn main() {
    let mut config = config_from_args();
    // Fixed-size coverage limits only bind beyond the L2's 2 MB reach
    // (1024 entries x 2 MB = 2 GB), so this experiment runs gups at its
    // full 8 GB footprint by default; --quick still shrinks it.
    config.footprint_shift = config.footprint_shift.saturating_sub(2);
    banner("Extension: 1 GB pages and the limits of fixed sizes (§2.1)", &config);

    let workload = WorkloadKind::Gups; // the giant-footprint stress case
                                       // Column 0 (Base) is the reference the others are reported against.
    let kinds = [
        SchemeKind::Baseline,
        SchemeKind::Thp,
        SchemeKind::Thp1G,
        SchemeKind::Rmm,
        SchemeKind::AnchorDynamic,
    ];
    let cols: Vec<String> = kinds[1..].iter().map(|k| k.label()).collect();
    let scenarios = [Scenario::MaxContiguity, Scenario::HighContiguity, Scenario::MediumContiguity];
    let suites = run_matrix(&scenarios, &[workload], &kinds, &config);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for suite in &suites {
        let row = &suite.rows[0];
        let base = &row.runs[0];
        let cells: Vec<String> = row.runs[1..]
            .iter()
            .map(|run| {
                json.push(serde_json::json!({
                    "scenario": suite.scenario.label(),
                    "scheme": &run.scheme,
                    "relative_misses_pct": run.relative_misses_pct(base),
                }));
                format!("{:.1}", run.relative_misses_pct(base))
            })
            .collect();
        rows.push((suite.scenario.label().to_owned(), cells));
    }
    let text = format!(
        "{}\nRelative misses (%) for gups. 1 GB pages only engage when the mapping\n\
         offers 1 GB-aligned contiguous units (max); at high contiguity (chunks\n\
         up to 256 MB) THP-1G degenerates to THP while anchors keep scaling —\n\
         §2.1's point that fixed sizes' \"scalability of coverage will be\n\
         eventually limited\".\n",
        render_table("scenario", &cols, &rows)
    );
    emit("ext_1gb_pages", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
