//! Extension experiment: TLB refill behaviour under context-switch
//! flushes.
//!
//! §3.3 of the paper argues the full-TLB invalidation on an anchor-distance
//! change is tolerable because "the native Linux kernel for x86 flushes the
//! TLB on context switches" anyway. This experiment quantifies that
//! context: with the TLB flushed every Q accesses, schemes with wide
//! entries re-cover their working set in far fewer walks, so coalescing's
//! advantage *grows* as switches become more frequent.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::{mapping_for, trace_for};
use hytlb_sim::report::render_table;
use hytlb_sim::{Machine, SchemeKind};
use hytlb_trace::WorkloadKind;

fn main() {
    let config = config_from_args();
    banner("Extension: context-switch flush sensitivity", &config);

    let workload = WorkloadKind::Canneal;
    let scenario = Scenario::MediumContiguity;
    let map = mapping_for(workload, scenario, &config);
    let trace = trace_for(workload, &config);
    let periods = [u64::MAX, 1_000_000, 100_000, 10_000];
    let kinds = [SchemeKind::Baseline, SchemeKind::Cluster2Mb, SchemeKind::AnchorDynamic];

    let cols: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for period in periods {
        let label =
            if period == u64::MAX { "no switches".to_owned() } else { format!("every {period}") };
        let cells: Vec<String> = kinds
            .iter()
            .map(|&k| {
                let run = Machine::for_scheme(k, &map, &config)
                    .run_with_flush_period(trace.iter().copied(), period);
                json.push(serde_json::json!({
                    "scheme": run.scheme,
                    "flush_period": period,
                    "walks": run.tlb_misses(),
                    "cpi": run.translation_cpi(),
                }));
                run.tlb_misses().to_string()
            })
            .collect();
        rows.push((label, cells));
    }
    let text = format!(
        "{}\nWalks for canneal / medium contiguity. The baseline pays ~one walk per\n\
         working-set page after every flush; Dynamic re-covers the same reach\n\
         with ~1/32nd the fills, so its advantage widens with switch frequency\n\
         — the §3.3 argument that full-TLB shootdowns on distance changes are\n\
         tolerable.\n",
        render_table("flush period", &cols, &rows)
    );
    emit("ext_context_switch", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
