//! Extension experiment: the HW-only coalescing design space of §2.1.
//!
//! The paper motivates hybrid coalescing by the limits of pure-hardware
//! designs: CoLT-SA and the cluster TLB coalesce only 4–8 pages, and
//! CoLT's fully-associative mode trades unbounded runs for a handful of
//! entries. This experiment lines all three up against the anchor TLB on
//! the scenario spectrum.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_core::{AnchorConfig, AnchorScheme};
use hytlb_mem::Scenario;
use hytlb_schemes::{ColtScheme, LatencyModel, TranslationScheme};
use hytlb_sim::experiment::{mapping_for, trace_for};
use hytlb_sim::report::render_table;
use hytlb_sim::{Machine, SchemeKind};
use hytlb_trace::WorkloadKind;
use std::sync::Arc;

fn main() {
    let config = config_from_args();
    banner("Extension: HW-only coalescing design space (§2.1)", &config);

    let workload = WorkloadKind::Canneal;
    let cols = vec![
        "Cluster".to_owned(),
        "CoLT-SA".to_owned(),
        "CoLT-FA(32)".to_owned(),
        "Dynamic".to_owned(),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for scenario in [Scenario::LowContiguity, Scenario::MediumContiguity, Scenario::HighContiguity]
    {
        let map = mapping_for(workload, scenario, &config);
        let trace = trace_for(workload, &config);
        let base =
            Machine::for_scheme(SchemeKind::Baseline, &map, &config).run(trace.iter().copied());
        let latency = LatencyModel::default();
        let arc = Arc::new(map.clone());
        let schemes: Vec<Box<dyn TranslationScheme>> = vec![
            SchemeKind::Cluster.build(&arc, &config),
            Box::new(ColtScheme::new(Arc::clone(&arc), latency)),
            Box::new(ColtScheme::with_fully_associative(Arc::clone(&arc), latency, 32)),
            Box::new(AnchorScheme::new(Arc::clone(&arc), AnchorConfig::dynamic())),
        ];
        let cells: Vec<String> = schemes
            .into_iter()
            .map(|scheme| {
                let run = Machine::from_scheme(scheme, &map, &config).run(trace.iter().copied());
                json.push(serde_json::json!({
                    "scenario": scenario.label(),
                    "scheme": run.scheme,
                    "relative_misses_pct": run.relative_misses_pct(&base),
                }));
                format!("{:.1}", run.relative_misses_pct(&base))
            })
            .collect();
        rows.push((scenario.label().to_owned(), cells));
    }
    let text = format!(
        "{}\nRelative misses (%) for canneal. The HW designs plateau: cluster and\n\
         CoLT-SA cap coverage at 8 pages, CoLT-FA covers long runs but only 32\n\
         of them. The anchor TLB scales its per-entry coverage with the mapping\n\
         — the §2.1 scalability/flexibility argument, quantified.\n",
        render_table("scenario", &cols, &rows)
    );
    emit("ext_hw_coalescing", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
