//! Extension experiment: the §2.2 NUMA tension, quantified.
//!
//! On a multi-node machine the OS must choose between contiguity
//! (node-local giant allocations) and balance (fine-grained interleaving).
//! This experiment allocates the same footprint under both policies,
//! reports the contiguity each produces, and shows which translation
//! scheme copes: THP collapses under interleaving while the anchor TLB
//! adapts its distance to the interleave granularity.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::{ContiguityHistogram, FragmentationLevel, NumaPolicy, NumaTopology};
use hytlb_sim::report::render_table;
use hytlb_sim::{Machine, SchemeKind};
use hytlb_trace::WorkloadKind;

fn main() {
    let config = config_from_args();
    banner("Extension: NUMA placement vs translation coverage (§2.2)", &config);

    let footprint = config.footprint_for(WorkloadKind::Canneal);
    let policies = [
        ("local (1 node)", NumaPolicy::LocalOnly { node: 0 }),
        ("interleave 4K pages", NumaPolicy::Interleave { granularity_pages: 1 }),
        ("interleave 64KB", NumaPolicy::Interleave { granularity_pages: 16 }),
        ("interleave 2MB", NumaPolicy::Interleave { granularity_pages: 512 }),
    ];
    let kinds = [SchemeKind::Baseline, SchemeKind::Thp, SchemeKind::AnchorDynamic];
    let cols = vec![
        "mean chunk".to_owned(),
        "Base walks".to_owned(),
        "THP walks".to_owned(),
        "Dynamic walks".to_owned(),
        "anchor d".to_owned(),
    ];
    let trace: Vec<u64> = WorkloadKind::Canneal
        .generator(footprint, config.seed)
        .take(config.accesses as usize)
        .collect();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, policy) in policies {
        let mut numa = NumaTopology::new(4, footprint * 2);
        numa.shatter_all(FragmentationLevel::Light, config.seed);
        let map = std::sync::Arc::new(numa.allocate_map(footprint, policy).expect("capacity"));
        let hist = ContiguityHistogram::from_map(&map);
        let mut cells = vec![format!("{:.0}", hist.mean_contiguity())];
        let mut distance = None;
        for &kind in &kinds {
            let run = Machine::for_scheme(kind, &map, &config).run(trace.iter().copied());
            distance = distance.or(run.anchor_distance);
            json.push(serde_json::json!({
                "policy": label,
                "scheme": run.scheme,
                "walks": run.tlb_misses(),
                "mean_chunk": hist.mean_contiguity(),
            }));
            cells.push(run.tlb_misses().to_string());
        }
        cells.push(run_distance_label(
            Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config)
                .run(trace.iter().copied())
                .anchor_distance,
        ));
        let _ = distance;
        rows.push((label.to_owned(), cells));
    }
    let text = format!(
        "{}\ncanneal footprint, 4 NUMA nodes, light pressure. Local placement keeps\n\
         giant chunks (every scheme is happy); page-granular interleaving kills\n\
         THP entirely while the anchor TLB tracks the interleave granularity\n\
         with its distance — the §2.2 case for allocation-flexible coalescing.\n",
        render_table("NUMA policy", &cols, &rows)
    );
    emit("ext_numa", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}

fn run_distance_label(d: Option<u64>) -> String {
    d.map_or_else(|| "-".to_owned(), hytlb_sim::report::format_distance)
}
