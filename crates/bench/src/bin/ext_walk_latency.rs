//! Extension experiment: validating the fixed 50-cycle walk latency.
//!
//! The paper charges every page walk 50 cycles (Table 3). This experiment
//! replays the same walk streams through the explicit MMU-cache walker
//! (`CachedWalker`) and reports the measured average walk cost per
//! workload/scenario — showing where the constant is a good average and
//! where (sparse, giant footprints) it underestimates.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_pagetable::{CachedWalker, PageTable};
use hytlb_sim::experiment::{mapping_for, trace_for};
use hytlb_sim::report::render_table;
use hytlb_trace::WorkloadKind;
use hytlb_types::PAGE_SIZE_U64;

fn main() {
    let config = config_from_args();
    banner("Extension: MMU-cache walk latency vs the fixed 50-cycle model", &config);

    let cols =
        vec!["avg cycles".to_owned(), "mem accesses/walk".to_owned(), "pwc hit rate".to_owned()];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (workload, scenario) in [
        (WorkloadKind::Omnetpp, Scenario::DemandPaging),
        (WorkloadKind::Canneal, Scenario::MediumContiguity),
        (WorkloadKind::Gups, Scenario::MediumContiguity),
        (WorkloadKind::Milc, Scenario::HighContiguity),
    ] {
        let map = mapping_for(workload, scenario, &config);
        let table = PageTable::from_map(&map, false);
        let index = map.page_index();
        let mut walker = CachedWalker::default();
        let mut cycles = 0u64;
        let mut accesses = 0u64;
        let mut hits = 0u64;
        let mut walks = 0u64;
        for logical in trace_for(workload, &config).into_iter().take(200_000) {
            let vpn = index.nth_page(logical / PAGE_SIZE_U64);
            let r = walker.walk(&table, vpn);
            cycles += r.cycles.as_u64();
            accesses += u64::from(r.memory_accesses);
            hits += u64::from(r.cache_hits);
            walks += 1;
        }
        let avg = cycles as f64 / walks as f64;
        json.push(serde_json::json!({
            "workload": workload.label(),
            "scenario": scenario.label(),
            "avg_cycles": avg,
            "mem_accesses_per_walk": accesses as f64 / walks as f64,
        }));
        rows.push((
            format!("{workload}/{scenario}"),
            vec![
                format!("{avg:.1}"),
                format!("{:.2}", accesses as f64 / walks as f64),
                format!("{:.0}%", hits as f64 / (hits + accesses) as f64 * 100.0),
            ],
        ));
    }
    let text = format!(
        "{}\nEvery translation of the trace is walked through the 3-level MMU cache\n\
         model (memory access 20 cyc, cached level 2 cyc). Locality-rich walks\n\
         average ~25-30 cycles; sparse giant footprints (gups) approach the\n\
         cold 80-cycle bound — bracketing the paper's fixed 50-cycle charge.\n",
        render_table("walk stream", &cols, &rows)
    );
    emit("ext_walk_latency", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
