//! Figure 1: cumulative distributions of contiguous-chunk sizes under
//! varying co-runner interference.
//!
//! The paper captures pagemaps of `canneal` (4-socket) and `raytrace`
//! (2-socket) while background PARSEC jobs pressure the allocator. Here the
//! OS model reproduces the setup: demand paging with THP under each
//! fragmentation level plays the role of one captured execution. The series
//! are the CDF values at chunk sizes 2^0 .. 2^10 pages — the x-axis of the
//! paper's figure.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::{ContiguityHistogram, FragmentationLevel, Scenario};
use hytlb_sim::report::render_table;

fn main() {
    let config = config_from_args();
    banner("Figure 1: contiguity CDFs under fragmentation pressure", &config);

    // canneal's ~1 GB working set and raytrace's ~1.3 GB, scaled.
    let subjects =
        [("canneal_4socket", 1u64 << 18), ("raytrace_2socket", (1u64 << 18) + (1 << 16))];
    let sizes: Vec<u64> = (0..=10).map(|i| 1u64 << i).collect();
    let cols: Vec<String> = sizes.iter().map(|s| format!("<=2^{}", s.ilog2())).collect();

    let mut text = String::new();
    let mut json_rows = Vec::new();
    for (label, footprint) in subjects {
        let footprint = (footprint >> config.footprint_shift).max(1 << 13);
        let mut rows = Vec::new();
        for (i, level) in FragmentationLevel::all().into_iter().enumerate() {
            let map = Scenario::DemandPaging.generate_with_pressure(
                footprint,
                config.seed + i as u64,
                level,
            );
            let hist = ContiguityHistogram::from_map(&map);
            let cells: Vec<String> =
                sizes.iter().map(|&s| format!("{:.2}", hist.fraction_in_chunks_up_to(s))).collect();
            json_rows.push(serde_json::json!({
                "subject": label,
                "pressure": format!("{level:?}"),
                "cdf": sizes.iter().map(|&s| hist.fraction_in_chunks_up_to(s)).collect::<Vec<_>>(),
                "mean_contiguity": hist.mean_contiguity(),
            }));
            rows.push((format!("{level:?}"), cells));
        }
        text.push_str(&render_table(&format!("{label} CDF"), &cols, &rows));
        text.push('\n');
    }
    text.push_str(
        "Reading: each row is one 'execution' under a different co-runner load.\n\
         As in the paper, contiguity varies widely run-to-run: unpressured runs\n\
         keep most memory in >=2^9-page chunks, heavy pressure pushes the CDF\n\
         toward small chunks.\n",
    );
    emit(
        "fig01_contiguity_cdf",
        &text,
        &serde_json::to_string_pretty(&json_rows).expect("serializable"),
    );
}
