//! Figure 2: relative TLB misses of prior techniques under three mapping
//! scenarios (the motivation experiment).
//!
//! Base, cluster and RMM run the full workload suite under small-, medium-
//! and large-chunk mappings. The paper's shape: cluster helps at small
//! chunks but plateaus; RMM is ineffective at small chunks and nearly
//! eliminates misses at large ones.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::run_suite;
use hytlb_sim::report::render_table;
use hytlb_sim::SchemeKind;
use hytlb_trace::WorkloadKind;

fn main() {
    let config = config_from_args();
    banner("Figure 2: motivation — prior schemes vs. mapping contiguity", &config);

    let kinds = [SchemeKind::Baseline, SchemeKind::Cluster, SchemeKind::Rmm];
    let scenarios = [
        ("Small contig.", Scenario::LowContiguity),
        ("Medium contig.", Scenario::MediumContiguity),
        ("Large contig.", Scenario::HighContiguity),
    ];
    let cols: Vec<String> = kinds.iter().map(|k| k.label()).collect();
    let mut rows = Vec::new();
    let mut suites = Vec::new();
    for (label, scenario) in scenarios {
        let suite = run_suite(scenario, &WorkloadKind::all(), &kinds, &config);
        let means = suite.mean_relative_misses();
        rows.push((label.to_owned(), means.iter().map(|m| format!("{m:.1}")).collect()));
        suites.push(suite);
    }
    let text = format!(
        "{}\nShape check (paper Fig. 2): cluster < base everywhere and roughly flat;\n\
         RMM ~ base at small contiguity, near zero at large contiguity.\n",
        render_table("mean rel. misses %", &cols, &rows)
    );
    emit("fig02_motivation", &text, &serde_json::to_string_pretty(&suites).expect("serializable"));
}
