//! Figure 7: relative TLB misses per benchmark under the demand-paging
//! mapping (THP enabled), across all seven schemes.

use hytlb_bench::{banner, config_from_args, emit, per_benchmark_suite};
use hytlb_mem::Scenario;
use hytlb_sim::report::{relative_miss_table, to_json};

fn main() {
    let config = config_from_args();
    banner("Figure 7: relative TLB misses, demand paging", &config);
    let suite = per_benchmark_suite(Scenario::DemandPaging, &config);
    let text = format!(
        "{}\nShape check (paper Fig. 7): THP cuts ~60% of misses for most apps but\n\
         not omnetpp/xalancbmk; Cluster-2MB beats plain Cluster; Dynamic matches\n\
         or beats the best prior scheme per app.\n",
        relative_miss_table(&suite)
    );
    emit("fig07_demand", &text, &to_json(&suite));
}
