//! Figure 8: relative TLB misses per benchmark under the medium-contiguity
//! synthetic mapping (chunks of 1–512 pages, Table 4).

use hytlb_bench::{banner, config_from_args, emit, per_benchmark_suite};
use hytlb_mem::Scenario;
use hytlb_sim::report::{relative_miss_table, to_json};

fn main() {
    let config = config_from_args();
    banner("Figure 8: relative TLB misses, medium contiguity", &config);
    let suite = per_benchmark_suite(Scenario::MediumContiguity, &config);
    let text = format!(
        "{}\nShape check (paper Fig. 8): THP and RMM are nearly ineffective (few 2MB+\n\
         chunks exist); Cluster helps but is capacity-limited; Dynamic exploits\n\
         the sub-2MB contiguity and wins broadly; gups is barely helped by anyone.\n",
        relative_miss_table(&suite)
    );
    emit("fig08_medium", &text, &to_json(&suite));
}
