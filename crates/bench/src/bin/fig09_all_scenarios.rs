//! Figure 9: mean relative TLB misses of every scheme under all six
//! mapping scenarios.

use hytlb_bench::{banner, config_from_args, emit, per_benchmark_suites};
use hytlb_mem::Scenario;
use hytlb_sim::report::{render_table, suite_bars, to_json};

fn main() {
    let config = config_from_args();
    banner("Figure 9: mean relative TLB misses, all mapping scenarios", &config);

    // One matrix call: all six scenarios share the worker pool, and each
    // workload's trace is generated once for the whole figure.
    eprintln!("running all {} scenarios ...", Scenario::all().len());
    let suites = per_benchmark_suites(&Scenario::all(), &config);
    let cols: Vec<String> = suites[0].schemes.clone();
    let rows: Vec<(String, Vec<String>)> = suites
        .iter()
        .map(|suite| {
            let means = suite.mean_relative_misses();
            (suite.scenario.label().to_owned(), means.iter().map(|m| format!("{m:.1}")).collect())
        })
        .collect();
    let mut text = render_table("mean rel. misses %", &cols, &rows);
    text.push('\n');
    for suite in &suites {
        text.push_str(&suite_bars(suite));
        text.push('\n');
    }
    text.push_str(
        "Shape check (paper Fig. 9): Cluster-2MB is the best prior scheme on\n\
         demand/eager; only coalescing schemes help on low/medium; RMM nearly\n\
         eliminates misses on high/max and Dynamic matches it; Dynamic achieves\n\
         the best (lowest) mean in every scenario among practical schemes.\n",
    );
    emit("fig09_all_scenarios", &text, &to_json(&suites));
}
