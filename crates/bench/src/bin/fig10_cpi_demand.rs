//! Figure 10: translation-CPI breakdown (L2 hit / coalesced hit / page
//! walk) per benchmark and scheme under demand paging.

use hytlb_bench::{banner, config_from_args, emit, per_benchmark_suite};
use hytlb_mem::Scenario;
use hytlb_sim::report::{cpi_table, to_json};

fn main() {
    let config = config_from_args();
    banner("Figure 10: translation CPI breakdown, demand paging", &config);
    let suite = per_benchmark_suite(Scenario::DemandPaging, &config);
    let text = format!(
        "{}\nShape check (paper Fig. 10): CPI tracks the miss reductions of Fig. 7;\n\
         the walk component dominates Base for graph500/gups/tigr and Dynamic\n\
         removes most of it.\n",
        cpi_table(&suite)
    );
    emit("fig10_cpi_demand", &text, &to_json(&suite));
}
