//! Figure 11: translation-CPI breakdown (L2 hit / coalesced hit / page
//! walk) per benchmark and scheme under the medium-contiguity mapping.

use hytlb_bench::{banner, config_from_args, emit, per_benchmark_suite};
use hytlb_mem::Scenario;
use hytlb_sim::report::{cpi_table, to_json};

fn main() {
    let config = config_from_args();
    banner("Figure 11: translation CPI breakdown, medium contiguity", &config);
    let suite = per_benchmark_suite(Scenario::MediumContiguity, &config);
    let text = format!(
        "{}\nShape check (paper Fig. 11): THP/RMM columns stay close to Base; the\n\
         coalesced-hit component carries Cluster and Dynamic; graph500's CPI\n\
         drops by several cycles per instruction under Dynamic.\n",
        cpi_table(&suite)
    );
    emit("fig11_cpi_medium", &text, &to_json(&suite));
}
