//! Table 5: L2 TLB hit/miss breakdown of the anchor (Dynamic) scheme —
//! regular hit rate, anchor hit rate and L2 miss rate — for the demand and
//! medium-contiguity mappings.

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_sim::experiment::run_suite;
use hytlb_sim::report::{l2_breakdown_table, to_json};
use hytlb_sim::SchemeKind;
use hytlb_trace::WorkloadKind;

fn main() {
    let config = config_from_args();
    banner("Table 5: L2 TLB access breakdown (Dynamic)", &config);

    let mut text = String::new();
    let mut suites = Vec::new();
    for scenario in [Scenario::DemandPaging, Scenario::MediumContiguity] {
        let suite =
            run_suite(scenario, &WorkloadKind::all(), &[SchemeKind::AnchorDynamic], &config);
        text.push_str(&l2_breakdown_table(&suite, 0));
        text.push('\n');
        suites.push(suite);
    }
    text.push_str(
        "Shape check (paper Table 5): under demand paging regular (2MB) hits\n\
         dominate; under medium contiguity anchor hits take over; gups/graph500\n\
         keep high L2 miss rates at medium contiguity.\n",
    );
    emit("table5_l2_breakdown", &text, &to_json(&suites));
}
