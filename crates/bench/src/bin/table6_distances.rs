//! Table 6: anchor distances selected by the dynamic selection algorithm,
//! per workload and mapping scenario, plus the §4.1 stability check.
//!
//! Selection is a pure function of the mapping's contiguity histogram
//! (Algorithm 1), so the table is computed directly from the OS state; a
//! follow-up simulation of several epochs verifies the decision is stable
//! (the paper: "the distance selection algorithm did not make any changes
//! after making the initial selection decision").

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_core::DistanceSelector;
use hytlb_mem::{ContiguityHistogram, Scenario};
use hytlb_sim::experiment::{mapping_for, trace_for};
use hytlb_sim::report::{format_distance, render_table};
use hytlb_sim::{Machine, SchemeKind};
use hytlb_trace::WorkloadKind;

fn main() {
    let config = config_from_args();
    banner("Table 6: selected anchor distances + stability", &config);

    let selector = DistanceSelector::paper_default();
    let cols: Vec<String> = Scenario::all().iter().map(|s| s.label().to_owned()).collect();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for workload in WorkloadKind::all() {
        let mut cells = Vec::new();
        for scenario in Scenario::all() {
            let map = mapping_for(workload, scenario, &config);
            let d = selector.select(&ContiguityHistogram::from_map(&map));
            json.push(serde_json::json!({
                "workload": workload.label(),
                "scenario": scenario.label(),
                "distance": d,
            }));
            cells.push(format_distance(d));
        }
        rows.push((workload.label().to_owned(), cells));
    }
    let mut text = render_table("anchor distance", &cols, &rows);

    // Stability check: run a few workloads through many epochs and confirm
    // the dynamic scheme never changes its mind on a stable mapping.
    text.push_str("\nStability over epochs (distance changes observed):\n");
    for workload in [WorkloadKind::Gups, WorkloadKind::Omnetpp, WorkloadKind::Mcf] {
        let scenario = Scenario::DemandPaging;
        let map = mapping_for(workload, scenario, &config);
        let mut machine = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config);
        let trace = trace_for(workload, &config);
        let stats = machine.run(trace);
        let d = stats.anchor_distance.expect("anchor scheme");
        text.push_str(&format!(
            "  {:<12} demand: distance {} held across {} epochs\n",
            workload.label(),
            format_distance(d),
            config.accesses / config.epoch_accesses().max(1),
        ));
    }
    text.push_str(
        "\nShape check (paper Table 6): 4 everywhere on low contiguity; 16-32 on\n\
         medium; large (>=256) on high/max; demand/eager pick large distances for\n\
         big-chunk apps (gups, graph500, mcf) and small ones for omnetpp/xalancbmk.\n",
    );
    emit("table6_distances", &text, &serde_json::to_string_pretty(&json).expect("serializable"));
}
