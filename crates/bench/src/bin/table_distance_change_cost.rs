//! §3.3 distance-change cost: sweeping the anchored page table of a 30 GB
//! process at distances 8 / 64 / 512.
//!
//! The paper measured 452 ms / 71.7 ms / 1.7 ms on real hardware. This
//! binary reports (a) the calibrated cost model's estimate and (b) the
//! actual wall-clock time of our software sweep, for the same 30 GB
//! footprint (scaled down under --quick).

use hytlb_bench::{banner, config_from_args, emit};
use hytlb_mem::Scenario;
use hytlb_pagetable::{AnchoredPageTable, PageTable};
use hytlb_sim::report::render_table;
use std::time::Instant;

fn main() {
    let config = config_from_args();
    banner("Distance-change cost (paper §3.3)", &config);

    // 30 GB = 7,864,320 pages, exactly the paper's measurement; only
    // --quick shrinks it (the shift is 2 at default scale and 0 under
    // --paper, both of which should measure the true 30 GB sweep).
    let shift = config.footprint_shift.saturating_sub(2);
    let footprint = (30u64 * 1024 * 1024 * 1024 / 4096) >> shift;
    let map = Scenario::MaxContiguity.generate(footprint, config.seed);
    let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), 8);

    let paper_ms = [("8", 452.0), ("64", 71.7), ("512", 1.7)];
    let cols = vec![
        "anchors".to_owned(),
        "model est.".to_owned(),
        "sim wall".to_owned(),
        "paper".to_owned(),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (label, paper) in paper_ms {
        let d: u64 = label.parse().expect("static labels");
        let start = Instant::now();
        let cost = apt.reanchor(&map, d);
        let wall = start.elapsed();
        let est = cost.estimated_time();
        json.push(serde_json::json!({
            "distance": d,
            "slots_visited": cost.slots_visited,
            "model_ms": est.as_secs_f64() * 1e3,
            "sim_wall_ms": wall.as_secs_f64() * 1e3,
            "paper_ms": paper,
            "footprint_pages": footprint,
        }));
        rows.push((
            format!("d={label}"),
            vec![
                cost.slots_visited.to_string(),
                format!("{:.1} ms", est.as_secs_f64() * 1e3),
                format!("{:.1} ms", wall.as_secs_f64() * 1e3),
                format!("{paper:.1} ms"),
            ],
        ));
    }
    let text = format!(
        "{}\nThe model is calibrated to the paper's d=8 point (460 ns/anchor); the\n\
         d=512 paper measurement is faster than linear scaling predicts (likely\n\
         cache effects on real hardware) — recorded as a divergence in\n\
         EXPERIMENTS.md. 'sim wall' is this Rust sweep, not the modelled kernel.\n",
        render_table("sweep cost (30 GB)", &cols, &rows)
    );
    emit(
        "table_distance_change_cost",
        &text,
        &serde_json::to_string_pretty(&json).expect("serializable"),
    );
}
