//! Shared plumbing for the figure/table regenerator binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--quick`   — tiny footprints and traces (seconds; shapes still hold)
//! * `--paper`   — full scale (the default is a middle ground)
//! * `--seed N`  — override the master seed
//! * `--accesses N` — override the trace length
//!
//! Output goes to stdout and, as both text and JSON, into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hytlb_sim::PaperConfig;
use std::fs;
use std::path::PathBuf;

/// Parses the common CLI flags into a [`PaperConfig`].
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
#[must_use]
pub fn config_from_args() -> PaperConfig {
    let mut config =
        PaperConfig { accesses: 1_000_000, footprint_shift: 2, ..PaperConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                config.accesses = 200_000;
                config.footprint_shift = 4;
            }
            "--paper" => {
                config.accesses = 2_000_000;
                config.footprint_shift = 0;
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--seed needs an integer"));
            }
            "--accesses" => {
                config.accesses = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--accesses needs an integer"));
            }
            other => panic!("unknown flag {other}; flags: --quick --paper --seed N --accesses N"),
        }
    }
    config
}

/// Prints a result and archives it under `results/<name>.txt` and
/// `results/<name>.json` (best-effort; failures to write are reported but
/// not fatal, so experiments still print on read-only checkouts).
pub fn emit(name: &str, text: &str, json: &str) {
    println!("{text}");
    // `cargo bench` runs with the package directory as CWD while `cargo
    // run` binaries inherit the invocation directory; anchor on the
    // workspace root so both land in the same `results/`.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("note: cannot create results/: {e}");
        return;
    }
    for (ext, body) in [("txt", text), ("json", json)] {
        let path = dir.join(format!("{name}.{ext}"));
        if let Err(e) = fs::write(&path, body) {
            eprintln!("note: cannot write {}: {e}", path.display());
        }
    }
}

/// Prints the experiment banner with the active configuration.
pub fn banner(experiment: &str, config: &PaperConfig) {
    println!(
        "== {experiment} ==\n   accesses/run: {}, footprint shift: {}, seed: {}\n",
        config.accesses, config.footprint_shift, config.seed
    );
}

use hytlb_mem::Scenario;
use hytlb_sim::experiment::SuiteResult;
use hytlb_sim::matrix::{run_matrix_with_static_ideal, MatrixCache};
use hytlb_sim::SchemeKind;
use hytlb_trace::WorkloadKind;

/// The static-ideal candidate sweep used by the figure binaries: one good
/// candidate per contiguity regime (exhaustive sweeps are available through
/// `hytlb_sim::experiment::static_ideal` with a custom candidate list).
#[must_use]
pub fn figure_static_sweep() -> Vec<u64> {
    vec![4, 32, 512, 4096, 65_536]
}

/// Runs the per-benchmark figure experiment (Figures 7/8/10/11): the six
/// paper schemes plus a `Static Ideal` column, for every workload under one
/// scenario. Returns a suite whose last column is `Static Ideal`.
#[must_use]
pub fn per_benchmark_suite(scenario: Scenario, config: &PaperConfig) -> SuiteResult {
    per_benchmark_suites(&[scenario], config).pop().expect("one scenario in, one suite out")
}

/// [`per_benchmark_suite`] over several scenarios at once (Figure 9): the
/// whole scenario × workload × scheme × sweep matrix runs on one worker
/// pool, and each workload's mapping and trace are generated exactly once
/// per scenario — not once per scheme or figure.
#[must_use]
pub fn per_benchmark_suites(scenarios: &[Scenario], config: &PaperConfig) -> Vec<SuiteResult> {
    run_matrix_with_static_ideal(
        &MatrixCache::new(),
        scenarios,
        &WorkloadKind::all(),
        &SchemeKind::paper_set(),
        &figure_static_sweep(),
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_mid_scale() {
        // config_from_args reads argv; here we just validate the base.
        let c = PaperConfig { accesses: 1_000_000, footprint_shift: 2, ..PaperConfig::default() };
        assert!(c.accesses >= 200_000);
        assert!(c.footprint_for(hytlb_trace::WorkloadKind::Gups) > 4096);
    }
}
