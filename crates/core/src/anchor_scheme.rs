//! The anchor TLB — hardware lookup flow of Figures 5–6 and Table 2.
//!
//! On an L1 miss the shared L2 array is probed for a regular entry (4 KB,
//! then 2 MB). On a regular miss the *anchor* entry for the VPN is probed:
//! `AVPN = VPN & !(N−1)`, indexed with bits `[d, d+set_bits)` of the VPN so
//! anchors spread over all sets (Figure 6). An anchor hit whose contiguity
//! covers the VPN completes the translation as `APPN + (VPN − AVPN)` for
//! one extra cycle (8 vs 7). Otherwise the page walk runs; the regular
//! translation returns to the core on the critical path, and the walker's
//! off-critical-path anchor fetch decides what to fill (Table 2):
//!
//! | regular | anchor | contiguity | fill |
//! |---------|--------|------------|------|
//! | hit     | —      | —          | done |
//! | miss    | hit    | yes        | done (anchor translation) |
//! | miss    | hit    | no         | walk; fill **regular** entry |
//! | miss    | miss   | yes        | walk; fill **only the anchor** entry |
//! | miss    | miss   | no         | walk; fill **only the regular** entry |

use crate::distance::{CostModel, DistanceSelector};
use crate::os::OsKernel;
use hytlb_mem::{AddressSpaceMap, ChunkCursor};
use hytlb_pagetable::PageWalker;
use hytlb_schemes::{
    AccessResult, AnchorIndexing, LatencyModel, SchemeStats, SharedL2, TranslationPath,
    TranslationScheme,
};
use hytlb_tlb::L1Tlb;
use hytlb_types::{Cycles, PageSize, PhysFrameNum, VirtAddr, VirtPageNum, HUGE_PAGE_PAGES};
use std::sync::Arc;

/// How the per-process anchor distance is managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DistanceMode {
    /// The paper's `Dynamic`: Algorithm 1 selects at boot and re-checks
    /// every epoch.
    Dynamic,
    /// A fixed distance (used by the `Static Ideal` exhaustive sweeps).
    Static(u64),
    /// The §4.2 extension: per-region distances, at most this many regions.
    MultiRegion(usize),
}

/// What the walker fills after a double miss when the anchor covers the
/// page (Table 2 row 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum FillPolicy {
    /// The paper's policy: fill only the anchor entry, so one entry serves
    /// the whole contiguous block and regular entries don't pollute the L2.
    #[default]
    PreferAnchor,
    /// Ablation: always fill the regular entry, never anchors-on-miss.
    AlwaysRegular,
}

/// Configuration of the anchor scheme.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnchorConfig {
    /// Distance management policy.
    pub mode: DistanceMode,
    /// Set-index derivation for anchor entries.
    pub indexing: AnchorIndexing,
    /// Fill policy on double misses.
    pub fill: FillPolicy,
    /// Timing model.
    pub latency: LatencyModel,
    /// Cost model for the distance selector.
    pub cost_model: CostModel,
}

impl AnchorConfig {
    /// The paper's `Dynamic` configuration.
    #[must_use]
    pub fn dynamic() -> Self {
        AnchorConfig {
            mode: DistanceMode::Dynamic,
            indexing: AnchorIndexing::Fig6,
            fill: FillPolicy::PreferAnchor,
            latency: LatencyModel::default(),
            cost_model: CostModel::default(),
        }
    }

    /// A fixed-distance configuration (one point of a `Static Ideal`
    /// sweep).
    #[must_use]
    pub fn static_distance(distance: u64) -> Self {
        AnchorConfig { mode: DistanceMode::Static(distance), ..Self::dynamic() }
    }

    /// The multi-region extension with the given region budget.
    #[must_use]
    pub fn multi_region(max_regions: usize) -> Self {
        AnchorConfig { mode: DistanceMode::MultiRegion(max_regions), ..Self::dynamic() }
    }
}

impl Default for AnchorConfig {
    fn default() -> Self {
        Self::dynamic()
    }
}

/// The hybrid-coalescing MMU.
#[derive(Debug)]
pub struct AnchorScheme {
    l1: L1Tlb,
    l2: SharedL2,
    os: OsKernel,
    walker: PageWalker,
    config: AnchorConfig,
    stats: SchemeStats,
    name: String,
    shootdowns: u64,
    /// Last-chunk cache for the walker's huge-page-shape probe; the OS
    /// never remaps pages after construction (epoch checks only re-anchor),
    /// so the cursor can never go stale.
    walk_cursor: ChunkCursor,
}

impl AnchorScheme {
    /// Builds the scheme over a mapping.
    ///
    /// # Panics
    ///
    /// Panics if a static distance in the config is invalid.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, config: AnchorConfig) -> Self {
        let selector =
            DistanceSelector::new((1..=16).map(|s| 1u64 << s).collect(), config.cost_model, 0.10);
        let (os, name) = match config.mode {
            DistanceMode::Dynamic => (OsKernel::new(map, selector), "Dynamic".to_owned()),
            DistanceMode::Static(d) => {
                (OsKernel::with_static_distance(map, d), format!("Anchor-d{d}"))
            }
            DistanceMode::MultiRegion(n) => {
                (OsKernel::with_regions(map, selector, n), format!("Anchor-region{n}"))
            }
        };
        AnchorScheme {
            l1: L1Tlb::paper_default(),
            l2: SharedL2::paper_default(),
            os,
            walker: PageWalker::default(),
            config,
            stats: SchemeStats::default(),
            name,
            shootdowns: 0,
            walk_cursor: ChunkCursor::default(),
        }
    }

    /// The anchor distance currently in effect process-wide (or the default
    /// distance for multi-region kernels).
    #[must_use]
    pub fn distance(&self) -> u64 {
        self.os.distance()
    }

    /// The OS model (histogram, epochs, region table, ...).
    #[must_use]
    pub fn os(&self) -> &OsKernel {
        &self.os
    }

    /// TLB shootdowns triggered by distance changes.
    #[must_use]
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    fn fill_regular(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum) -> PageSize {
        // The walker knows from the PD entry whether the region is
        // huge-page shaped; the anchor scheme's L2 stores 4 KB, 2 MB and
        // anchor entries side by side (Table 3).
        if let Some(head) = self.os.map().huge_page_at_with(vpn, &mut self.walk_cursor) {
            let head_pfn = PhysFrameNum::new(pfn.as_u64() - (vpn - head));
            if head_pfn.is_aligned(HUGE_PAGE_PAGES) {
                self.l2.insert_2m(head, head_pfn);
                return PageSize::Huge2M;
            }
        }
        self.l2.insert_4k(vpn, pfn);
        PageSize::Base4K
    }
}

impl TranslationScheme for AnchorScheme {
    fn name(&self) -> &str {
        &self.name
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let latency = self.config.latency;
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.l2.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.l2.lookup_2m(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Huge2M);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: latency.l2_hit,
                pfn: Some(pfn),
            }
        } else {
            let d = self.os.distance_for(vpn);
            let d_log = d.trailing_zeros();
            let anchor_hit = self.l2.lookup_anchor(vpn, d_log, self.config.indexing);
            if let Some(hit) = anchor_hit.filter(|h| h.covers(vpn)) {
                // Table 2 row 2: anchor hit, contiguity match.
                let pfn = hit.translate(vpn);
                self.l1.insert(vpn, pfn, PageSize::Base4K);
                AccessResult {
                    path: TranslationPath::CoalescedHit,
                    cycles: latency.coalesced_hit,
                    pfn: Some(pfn),
                }
            } else {
                // Rows 3–5: page walk. The regular translation goes to the
                // core first; the anchor PTE fetch is off the critical path.
                let walk = self.walker.walk(self.os.table(), vpn);
                match walk.leaf {
                    Some(leaf) => {
                        let pfn = leaf.pfn_for(vpn);
                        if anchor_hit.is_some() {
                            // Row 3: the anchor was present but did not
                            // cover the page — only the page's own entry
                            // can translate it.
                            self.fill_regular(vpn, pfn);
                        } else {
                            let probe = self.os.anchor_probe(vpn);
                            match probe.filter(|p| p.covers(vpn)) {
                                Some(p) if self.config.fill == FillPolicy::PreferAnchor => {
                                    // Row 4: fill only the anchor entry.
                                    self.l2.insert_anchor(
                                        p.avpn,
                                        p.pfn,
                                        p.contiguity,
                                        d_log,
                                        self.config.indexing,
                                    );
                                }
                                _ => {
                                    // Row 5 (or the ablation policy).
                                    self.fill_regular(vpn, pfn);
                                }
                            }
                        }
                        self.l1.insert(vpn, pfn, PageSize::Base4K);
                        AccessResult {
                            path: TranslationPath::Walk,
                            cycles: walk.cycles,
                            pfn: Some(pfn),
                        }
                    }
                    None => AccessResult {
                        path: TranslationPath::Fault,
                        cycles: walk.cycles,
                        pfn: None,
                    },
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), hytlb_schemes::BatchFault> {
        hytlb_schemes::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn on_epoch(&mut self) {
        if self.config.mode != DistanceMode::Dynamic {
            return;
        }
        let outcome = self.os.check_epoch();
        if outcome.requires_shootdown() {
            self.flush();
            self.shootdowns += 1;
        }
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    fn anchor_distance(&self) -> Option<u64> {
        Some(self.os.distance())
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.l2.geometry());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;
    use hytlb_schemes::BaselineScheme;

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    fn touch_all(s: &mut dyn TranslationScheme, map: &AddressSpaceMap, rounds: usize) {
        for _ in 0..rounds {
            for (vpn, pfn) in map.iter_pages() {
                assert_eq!(s.access(va(vpn)).pfn, Some(pfn), "at {vpn}");
            }
        }
    }

    #[test]
    fn table2_row2_anchor_hit_contiguity_match() {
        // One 8-page chunk, distance 8: the first walk fills the anchor;
        // every other page of the chunk is then an anchor hit at 8 cycles.
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(0),
            PhysFrameNum::new(96),
            8,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::static_distance(8));
        assert_eq!(s.access(va(VirtPageNum::new(3))).path, TranslationPath::Walk);
        let r = s.access(va(VirtPageNum::new(6)));
        assert_eq!(r.path, TranslationPath::CoalescedHit);
        assert_eq!(r.cycles, Cycles::new(8));
        assert_eq!(r.pfn, Some(PhysFrameNum::new(102)));
    }

    #[test]
    fn table2_row3_anchor_hit_contiguity_miss_fills_regular() {
        // Chunk covers pages 0..4 of an 8-page anchor block; pages 4..8 are
        // mapped elsewhere (discontiguous).
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(0),
            PhysFrameNum::new(96),
            4,
            hytlb_types::Permissions::READ_WRITE,
        );
        m.map_range(
            VirtPageNum::new(4),
            PhysFrameNum::new(200),
            4,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::static_distance(8));
        s.access(va(VirtPageNum::new(0))); // walk; fills anchor (contiguity 4)
        assert_eq!(s.access(va(VirtPageNum::new(2))).path, TranslationPath::CoalescedHit);
        // Page 5: anchor 0 is present but contiguity(4) does not cover it →
        // walk, regular fill.
        let r = s.access(va(VirtPageNum::new(5)));
        assert_eq!(r.path, TranslationPath::Walk);
        assert_eq!(r.pfn, Some(PhysFrameNum::new(201)));
        // Re-access: regular L2 hit at 7 cycles (not coalesced).
        s.l1.flush(); // bypass L1 so the L2 path is visible
        let r2 = s.access(va(VirtPageNum::new(5)));
        assert_eq!(r2.path, TranslationPath::L2RegularHit);
        assert_eq!(r2.cycles, Cycles::new(7));
    }

    #[test]
    fn table2_row4_double_miss_fills_only_anchor() {
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(0),
            PhysFrameNum::new(96),
            8,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::static_distance(8));
        s.access(va(VirtPageNum::new(3)));
        // The regular 4K entry must NOT be in the L2: flush L1, re-access,
        // and observe an anchor (coalesced) hit rather than a regular hit.
        s.l1.flush();
        let r = s.access(va(VirtPageNum::new(3)));
        assert_eq!(r.path, TranslationPath::CoalescedHit);
    }

    #[test]
    fn table2_row5_double_miss_no_coverage_fills_regular() {
        // Anchor page exists but the accessed page is beyond contiguity:
        // pages 0..2 contiguous, page 2..8 unmapped... use a singleton far
        // from its anchor: anchor 0 unmapped entirely.
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(5),
            PhysFrameNum::new(300),
            1,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::static_distance(8));
        let r = s.access(va(VirtPageNum::new(5)));
        assert_eq!(r.path, TranslationPath::Walk);
        s.l1.flush();
        let r2 = s.access(va(VirtPageNum::new(5)));
        assert_eq!(r2.path, TranslationPath::L2RegularHit);
    }

    #[test]
    fn ablation_always_regular_never_fills_anchors() {
        let map = Arc::new(Scenario::MediumContiguity.generate(2048, 7));
        let cfg = AnchorConfig { fill: FillPolicy::AlwaysRegular, ..AnchorConfig::dynamic() };
        let mut s = AnchorScheme::new(Arc::clone(&map), cfg);
        touch_all(&mut s, &map, 2);
        assert_eq!(s.stats().coalesced_hits, 0);
    }

    #[test]
    fn dynamic_beats_baseline_on_medium_contiguity() {
        let map = Arc::new(Scenario::MediumContiguity.generate(8192, 8));
        let mut anchor = AnchorScheme::new(Arc::clone(&map), AnchorConfig::dynamic());
        let mut base = BaselineScheme::new(Arc::clone(&map), LatencyModel::default());
        touch_all(&mut anchor, &map, 2);
        touch_all(&mut base, &map, 2);
        assert!(
            (anchor.stats().walks as f64) < 0.6 * base.stats().walks as f64,
            "anchor {} vs base {}",
            anchor.stats().walks,
            base.stats().walks
        );
    }

    #[test]
    fn translations_match_map_across_modes() {
        let map = Arc::new(Scenario::DemandPaging.generate(4096, 9));
        for cfg in [
            AnchorConfig::dynamic(),
            AnchorConfig::static_distance(64),
            AnchorConfig::multi_region(4),
        ] {
            let mut s = AnchorScheme::new(Arc::clone(&map), cfg);
            touch_all(&mut s, &map, 2);
        }
    }

    #[test]
    fn permission_boundary_breaks_anchor_coverage() {
        // §3.3 "Permission and Page Sharing": physically contiguous pages
        // with different permissions must not be translated through one
        // anchor. The map keeps them as separate chunks, so the anchor's
        // contiguity stops at the boundary and the RO page is served by
        // its own entry.
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(0),
            PhysFrameNum::new(96),
            4,
            hytlb_types::Permissions::READ_WRITE,
        );
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(100), 4, hytlb_types::Permissions::READ);
        let map = Arc::new(m);
        assert_eq!(map.chunk_count(), 2, "permissions split the chunks");
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::static_distance(8));
        s.access(va(VirtPageNum::new(0))); // anchor fill, contiguity 4
                                           // Page 5 is beyond the anchor's contiguity: anchor hit but
                                           // contiguity miss -> page walk (Table 2 row 3), correct frame.
        let r = s.access(va(VirtPageNum::new(5)));
        assert_eq!(r.path, TranslationPath::Walk);
        assert_eq!(r.pfn, Some(PhysFrameNum::new(101)));
        // The RW side is still anchor-covered.
        assert_eq!(s.access(va(VirtPageNum::new(2))).path, TranslationPath::CoalescedHit);
    }

    #[test]
    fn anchor_distance_register_is_per_process() {
        // Two "processes" (schemes) over different mappings select
        // different distances independently — the per-process anchor
        // distance register of §3.1.
        let fine = Arc::new(Scenario::LowContiguity.generate(2048, 3));
        let huge = Arc::new(Scenario::MaxContiguity.generate(16_384, 3));
        let a = AnchorScheme::new(Arc::clone(&fine), AnchorConfig::dynamic());
        let b = AnchorScheme::new(Arc::clone(&huge), AnchorConfig::dynamic());
        assert!(a.distance() < b.distance(), "{} vs {}", a.distance(), b.distance());
    }

    #[test]
    fn epoch_on_stable_map_is_quiet() {
        let map = Arc::new(Scenario::LowContiguity.generate(1024, 10));
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::dynamic());
        touch_all(&mut s, &map, 1);
        for _ in 0..5 {
            s.on_epoch();
        }
        assert_eq!(s.shootdowns(), 0);
        assert_eq!(s.os().distance_changes(), 0);
    }

    #[test]
    fn static_mode_ignores_epochs() {
        let map = Arc::new(Scenario::LowContiguity.generate(512, 11));
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::static_distance(4096));
        s.on_epoch();
        assert_eq!(s.distance(), 4096);
    }

    #[test]
    fn max_contiguity_with_dynamic_anchor_nearly_eliminates_walks() {
        let map = Arc::new(Scenario::MaxContiguity.generate(32_768, 12));
        let mut s = AnchorScheme::new(Arc::clone(&map), AnchorConfig::dynamic());
        touch_all(&mut s, &map, 2);
        let st = s.stats();
        // A few cold walks per anchor region; everything else coalesced.
        assert!(
            (st.walks as f64) < 0.01 * st.accesses as f64,
            "walks {} of {}",
            st.walks,
            st.accesses
        );
    }

    #[test]
    fn huge_shaped_regions_can_fill_2mb_entries() {
        // Force regular fills (ablation policy) on a huge-page-shaped
        // mapping: the walker installs 2 MB entries, and a far page of the
        // same huge page hits them.
        let map = Arc::new(Scenario::MaxContiguity.generate(4096, 13));
        let cfg =
            AnchorConfig { fill: FillPolicy::AlwaysRegular, ..AnchorConfig::static_distance(2) };
        let mut s = AnchorScheme::new(Arc::clone(&map), cfg);
        let head = map.chunks().next().unwrap().vpn;
        assert_eq!(s.access(va(head)).path, TranslationPath::Walk);
        s.l1.flush(); // bypass L1 so the L2 2MB entry is observable
        let r = s.access(va(head + 300));
        assert_eq!(r.path, TranslationPath::L2RegularHit);
        assert_eq!(r.cycles, Cycles::new(7));
    }
}
