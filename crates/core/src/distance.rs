//! Dynamic anchor-distance selection — Algorithm 1 of the paper.
//!
//! For every candidate distance `d` the OS estimates the *capacity cost* of
//! covering the process's footprint with TLB entries: each chunk of
//! contiguity `c` needs `⌊c/d⌋` anchor entries, the remainder is covered by
//! `⌊(c mod d)/512⌋` 2 MB entries and `(c mod d) mod 512` 4 KB entries.
//! Each entry type is then weighed by the inverse of its coverage ("weigh
//! down costs of entries with larger coverage"), and the distance with the
//! minimum total cost wins. Access frequency is deliberately *not* used —
//! the paper's selector works from the static mapping snapshot alone.

use hytlb_mem::ContiguityHistogram;
use hytlb_types::HUGE_PAGE_PAGES;

/// The L2 TLB entry budget assumed by [`CostModel::CapacityAware`] —
/// the paper's 1024-entry shared L2 (Table 3).
pub const L2_ENTRY_BUDGET: u64 = 1024;

/// How the capacity cost of a candidate distance is computed.
///
/// Algorithm 1's prose says the weight of each entry type is "the inverse
/// of the coverage of each type", and the pseudocode adds
/// `anchors/anch_dist + large_pgs/512 + pages`. Implemented literally
/// ([`CostModel::InverseCoverage`]), that weighting makes anchor entries
/// nearly free and the leftover 4 KB pages dominate, selecting d = 8 for
/// the medium-contiguity mapping — while the paper's own Table 6 reports
/// 16–32 there. Plain entry counting ([`CostModel::FlatCount`]) fixes the
/// synthetic regimes but still mis-selects on the *bimodal* histograms
/// real demand paging produces (thousands of tiny chunks outvote the few
/// huge chunks holding 80 % of memory, costing 3–4× the achievable miss
/// rate).
///
/// The default, [`CostModel::CapacityAware`], therefore implements the
/// paper's *stated aim* — "minimize the number of TLB entries … required
/// to provide coverage for the active pages" — directly: given the
/// 1024-entry L2 budget, it counts the pages left uncovered when the
/// highest-coverage entries are cached first (which is also how LRU
/// behaves, since wide entries are re-touched most), with total entry
/// count as the tie-break. This reproduces every regime of the paper's
/// Table 6 and tracks the measured static-ideal sweep; the exhaustive
/// comparison is in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum CostModel {
    /// Algorithm 1's pseudocode taken literally: entry counts weighted by
    /// inverse coverage (an anchor entry of distance `d` weighs `1/d`, a
    /// 2 MB entry `1/512`, a 4 KB entry `1`).
    InverseCoverage,
    /// Plain entry counting — minimizes TLB entries needed to cover the
    /// footprint, ignoring the TLB's capacity.
    FlatCount,
    /// Pages left uncovered by the [`L2_ENTRY_BUDGET`] highest-coverage
    /// entries, tie-broken by total entry count.
    #[default]
    CapacityAware,
}

/// The distance-selection policy: candidate set, cost model and the
/// hysteresis that keeps the distance stable across epochs (§4.1,
/// "Distance Stability").
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DistanceSelector {
    candidates: Vec<u64>,
    cost_model: CostModel,
    /// Minimum relative cost improvement required to change an already
    /// selected distance. 0.0 re-selects greedily every epoch.
    hysteresis: f64,
}

impl Default for DistanceSelector {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl DistanceSelector {
    /// The paper's configuration: candidates `[2, 4, 8, …, 2^16]`, the
    /// Table 6-reproducing cost model, 10 % hysteresis.
    #[must_use]
    pub fn paper_default() -> Self {
        DistanceSelector {
            candidates: (1..=16).map(|s| 1u64 << s).collect(),
            cost_model: CostModel::default(),
            hysteresis: 0.10,
        }
    }

    /// Builds a selector with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty, contains a non-power-of-two, or
    /// `hysteresis` is negative/NaN.
    #[must_use]
    pub fn new(candidates: Vec<u64>, cost_model: CostModel, hysteresis: f64) -> Self {
        assert!(!candidates.is_empty(), "need at least one candidate distance");
        assert!(
            candidates.iter().all(|d| d.is_power_of_two()),
            "anchor distances are powers of two"
        );
        assert!(hysteresis >= 0.0, "hysteresis must be non-negative");
        DistanceSelector { candidates, cost_model, hysteresis }
    }

    /// Candidate distances considered.
    #[must_use]
    pub fn candidates(&self) -> &[u64] {
        &self.candidates
    }

    /// The capacity cost of covering `histogram` with anchor distance
    /// `distance` (Algorithm 1's inner loop).
    #[must_use]
    pub fn cost(&self, distance: u64, histogram: &ContiguityHistogram) -> f64 {
        let mut total = 0.0;
        let mut anchors_total = 0u64;
        let mut large_total = 0u64;
        let mut pages_total = 0u64;
        for (cont, freq) in histogram.iter() {
            let anchors = cont / distance;
            let remainder = cont % distance;
            let large_pgs = remainder / HUGE_PAGE_PAGES;
            let pages = remainder % HUGE_PAGE_PAGES;
            match self.cost_model {
                CostModel::InverseCoverage => {
                    let freq = freq as f64;
                    total += freq * anchors as f64 / distance as f64;
                    total += freq * large_pgs as f64 / HUGE_PAGE_PAGES as f64;
                    total += freq * pages as f64;
                }
                CostModel::FlatCount => {
                    total += freq as f64 * (anchors + large_pgs + pages) as f64;
                }
                CostModel::CapacityAware => {
                    anchors_total += anchors * freq;
                    large_total += large_pgs * freq;
                    pages_total += pages * freq;
                }
            }
        }
        if self.cost_model == CostModel::CapacityAware {
            // Two penalties, summed:
            //  * `uncovered` — pages beyond the reach of the 1024-entry
            //    budget when the widest entries are cached first (LRU
            //    keeps them resident: a d-page anchor is re-touched d
            //    times as often as a 4 KB entry). Dominates when the TLB
            //    *can* cover a meaningful share of the footprint.
            //  * `entries` — the total entry count, which tracks the cold
            //    / streaming miss cost (one fill per entry touched) and
            //    decides between candidates when the footprint dwarfs the
            //    budget and `uncovered` is flat.
            // The sum tracks the measured static-ideal sweep across all
            // six scenarios (see EXPERIMENTS.md); ties break toward the
            // smaller distance in `select`.
            let mut kinds =
                [(distance, anchors_total), (HUGE_PAGE_PAGES, large_total), (1, pages_total)];
            kinds.sort_unstable_by_key(|&(coverage, _)| core::cmp::Reverse(coverage));
            let mut budget = L2_ENTRY_BUDGET;
            let mut covered = 0u64;
            for (coverage, count) in kinds {
                let take = count.min(budget);
                covered += take * coverage;
                budget -= take;
            }
            let uncovered = histogram.total_pages().saturating_sub(covered);
            let entries = anchors_total + large_total + pages_total;
            total = (uncovered + entries) as f64;
        }
        total
    }

    /// Picks the candidate with minimum cost; ties break toward the
    /// *smaller* distance (cheaper to re-anchor away from later).
    /// An empty histogram selects the smallest candidate.
    #[must_use]
    pub fn select(&self, histogram: &ContiguityHistogram) -> u64 {
        self.candidates
            .iter()
            .copied()
            .map(|d| (d, self.cost(d, histogram)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are finite").then(a.0.cmp(&b.0)))
            .map(|(d, _)| d)
            .expect("candidates nonempty")
    }

    /// Epoch re-check with hysteresis: returns `Some(new_distance)` only if
    /// switching from `current` saves more than the hysteresis fraction of
    /// the current cost (or `current` is not a candidate at all).
    #[must_use]
    pub fn should_change(&self, histogram: &ContiguityHistogram, current: u64) -> Option<u64> {
        let best = self.select(histogram);
        if best == current {
            return None;
        }
        let cur_cost = self.cost(current, histogram);
        let best_cost = self.cost(best, histogram);
        if cur_cost <= 0.0 {
            return None;
        }
        ((cur_cost - best_cost) / cur_cost > self.hysteresis).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(u64, u64)]) -> ContiguityHistogram {
        pairs.iter().copied().collect()
    }

    #[test]
    fn candidates_match_paper() {
        let s = DistanceSelector::paper_default();
        assert_eq!(s.candidates().first(), Some(&2));
        assert_eq!(s.candidates().last(), Some(&65_536));
        assert_eq!(s.candidates().len(), 16);
    }

    #[test]
    fn uniform_small_chunks_pick_matching_distance() {
        // All chunks are exactly 4 pages: d = 4 is optimal (one anchor per
        // chunk at weight 1/4; d = 2 needs two anchors at weight 1/2 each;
        // d = 8 covers nothing and leaves 4 raw pages).
        let s = DistanceSelector::paper_default();
        assert_eq!(s.select(&hist(&[(4, 100)])), 4);
    }

    #[test]
    fn chunks_of_64kb_pick_16_pages() {
        // The paper's own example (§3.1): 64 KB chunks → distance 16.
        let s = DistanceSelector::paper_default();
        assert_eq!(s.select(&hist(&[(16, 1000)])), 16);
    }

    #[test]
    fn huge_chunks_pick_large_distances() {
        // A footprint dominated by 2^14-page chunks wants d = 2^14.
        let s = DistanceSelector::paper_default();
        assert_eq!(s.select(&hist(&[(1 << 14, 64)])), 1 << 14);
    }

    #[test]
    fn mixed_histogram_balances_types() {
        // Mostly 4-page chunks plus a little slack: small distance wins
        // because large distances strand the small chunks as raw pages.
        let s = DistanceSelector::paper_default();
        let h = hist(&[(4, 10_000), (512, 2)]);
        assert_eq!(s.select(&h), 4);
    }

    #[test]
    fn tie_breaks_toward_smaller_distance() {
        // 512-page chunks: d = 512 (one anchor, weight 1/512) ties with
        // every larger d (one 2 MB entry, weight 1/512). Smaller wins.
        let s = DistanceSelector::paper_default();
        assert_eq!(s.select(&hist(&[(512, 100)])), 512);
    }

    #[test]
    fn empty_histogram_selects_smallest() {
        let s = DistanceSelector::paper_default();
        assert_eq!(s.select(&ContiguityHistogram::new()), 2);
    }

    #[test]
    fn cost_is_zero_for_perfectly_covered_footprint_at_flat_model() {
        let s = DistanceSelector::new(vec![4], CostModel::FlatCount, 0.0);
        // 4-page chunks at d = 4: one anchor each, flat cost = count.
        assert_eq!(s.cost(4, &hist(&[(4, 10)])), 10.0);
    }

    #[test]
    fn inverse_coverage_beats_flat_on_scalability() {
        // Under the paper's weights a 2^14 distance is strictly better for
        // 2^14 chunks than d = 512; flat counting sees 1 entry vs 32 and
        // agrees here, but disagrees on weighting magnitude.
        let inv = DistanceSelector::new(vec![512, 1 << 14], CostModel::InverseCoverage, 0.0);
        let h = hist(&[(1 << 14, 8)]);
        assert_eq!(inv.select(&h), 1 << 14);
        assert!(inv.cost(1 << 14, &h) < inv.cost(512, &h));
    }

    #[test]
    fn hysteresis_suppresses_marginal_changes() {
        let s = DistanceSelector::new(vec![2, 4], CostModel::InverseCoverage, 0.5);
        // d = 4 is optimal for 4-page chunks but the improvement over the
        // current d = 2 must exceed 50% of the current cost.
        let h = hist(&[(4, 100)]);
        // cost(2) = 100 * 2/2 = 100; cost(4) = 100 * 1/4 = 25 → 75% saving.
        assert_eq!(s.should_change(&h, 2), Some(4));
        let tight = DistanceSelector::new(vec![2, 4], CostModel::InverseCoverage, 0.9);
        assert_eq!(tight.should_change(&h, 2), None);
    }

    #[test]
    fn no_change_when_already_optimal() {
        let s = DistanceSelector::paper_default();
        let h = hist(&[(16, 100)]);
        assert_eq!(s.should_change(&h, 16), None);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn non_power_of_two_candidate_panics() {
        let _ = DistanceSelector::new(vec![3], CostModel::InverseCoverage, 0.0);
    }

    #[test]
    fn selection_reflects_scenario_contiguity_ordering() {
        use hytlb_mem::Scenario;
        let s = DistanceSelector::paper_default();
        let d_of = |sc: Scenario| {
            // Large footprint (1 GB) so every scenario expresses its full
            // chunk-size range.
            let m = sc.generate(1 << 18, 11);
            s.select(&ContiguityHistogram::from_map(&m))
        };
        let low = d_of(Scenario::LowContiguity);
        let med = d_of(Scenario::MediumContiguity);
        let high = d_of(Scenario::HighContiguity);
        let max = d_of(Scenario::MaxContiguity);
        assert!(low <= med && med <= high && high <= max, "{low} {med} {high} {max}");
        // Table 6: low-contiguity mappings select a distance of 4.
        assert!(low <= 8, "low selected {low}");
        assert!(max >= 1 << 12, "max selected {max}");
    }
}
