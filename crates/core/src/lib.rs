//! Hybrid TLB coalescing — the paper's contribution.
//!
//! This crate assembles the anchor-based translation architecture on top of
//! the substrates (`hytlb-mem`, `hytlb-pagetable`, `hytlb-tlb`,
//! `hytlb-schemes`):
//!
//! * [`DistanceSelector`] — the dynamic anchor-distance selection heuristic
//!   of §4 (Algorithm 1): from the OS contiguity histogram it estimates,
//!   for every candidate distance, how many TLB entries (anchor + 2 MB +
//!   4 KB) covering the footprint would cost, weighted by inverse coverage,
//!   and picks the cheapest.
//! * [`OsKernel`] — the operating-system model: owns the mapping, the
//!   anchored page table and the per-process anchor distance; performs the
//!   periodic epoch check (§3.3/§4.1) with hysteresis, and pays the
//!   re-anchoring sweep plus full TLB shootdown when the distance changes.
//! * [`AnchorScheme`] — the hardware lookup flow of Figure 5 / Table 2
//!   implementing [`TranslationScheme`](hytlb_schemes::TranslationScheme):
//!   L1 → regular L2 (4 KB, 2 MB) → anchor probe (Figure 6 indexing, extra
//!   contiguity comparator) → page walk with anchor-aware fill.
//! * [`RegionTable`] — the §4.2 multi-region extension (the paper's future
//!   work): partitions the address space into up to `N` regions with
//!   per-region anchor distances.
//!
//! # Examples
//!
//! ```
//! use hytlb_core::{AnchorConfig, AnchorScheme};
//! use hytlb_mem::Scenario;
//! use hytlb_schemes::TranslationScheme;
//! use std::sync::Arc;
//!
//! let map = Arc::new(Scenario::MediumContiguity.generate(2048, 1));
//! let mut anchor = AnchorScheme::new(Arc::clone(&map), AnchorConfig::dynamic());
//! for (vpn, pfn) in map.iter_pages() {
//!     assert_eq!(anchor.access(vpn.base_addr()).pfn, Some(pfn));
//! }
//! assert!(anchor.stats().coalesced_hits > 0); // anchors served hits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anchor_scheme;
mod distance;
mod os;
mod region;

pub use anchor_scheme::{AnchorConfig, AnchorScheme, DistanceMode, FillPolicy};
pub use distance::{CostModel, DistanceSelector, L2_ENTRY_BUDGET};
pub use os::{EpochOutcome, OsKernel};
pub use region::{Region, RegionTable};
