//! The operating-system model behind hybrid coalescing.
//!
//! The OS owns the authoritative mapping and the anchored page table. Its
//! responsibilities (paper §3.3):
//!
//! * keep anchor contiguity fields in sync with the mapping;
//! * periodically (every epoch ≈ 1 B instructions) rebuild the contiguity
//!   histogram, re-run the distance selector, and — if the improvement
//!   clears the hysteresis — pay for a full table sweep plus TLB shootdown.

use crate::distance::DistanceSelector;
use crate::region::RegionTable;
use hytlb_mem::{AddressSpaceMap, ContiguityHistogram};
use hytlb_pagetable::{AnchorProbe, AnchoredPageTable, PageTable, ReanchorCost};
use hytlb_types::VirtPageNum;
use std::sync::Arc;

/// What an epoch check did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EpochOutcome {
    /// `Some((old, new))` when the anchor distance changed; the TLBs must
    /// then be flushed by the caller (hardware shootdown).
    pub distance_change: Option<(u64, u64)>,
    /// Cost of the re-anchoring sweep, when one happened.
    pub sweep_cost: Option<ReanchorCost>,
}

impl EpochOutcome {
    /// `true` when the TLBs must be invalidated.
    #[must_use]
    pub fn requires_shootdown(&self) -> bool {
        self.distance_change.is_some()
    }
}

/// The per-process OS state for hybrid coalescing.
#[derive(Debug)]
pub struct OsKernel {
    map: Arc<AddressSpaceMap>,
    apt: AnchoredPageTable,
    selector: DistanceSelector,
    histogram: ContiguityHistogram,
    regions: Option<RegionTable>,
    epochs: u64,
    distance_changes: u64,
}

impl OsKernel {
    /// Boots the kernel model for a process: builds the 4 KB page table,
    /// runs the selector once on the initial histogram (the paper sets the
    /// distance "once sufficient amount of memory is allocated") and
    /// anchors the table.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, selector: DistanceSelector) -> Self {
        let histogram = ContiguityHistogram::from_map(&map);
        let initial = selector.select(&histogram);
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), initial);
        apt.reanchor(&map, initial);
        OsKernel { map, apt, selector, histogram, regions: None, epochs: 0, distance_changes: 0 }
    }

    /// Boots the kernel with a *fixed* anchor distance (the paper's
    /// `static ideal` sweeps use this).
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not a power of two in `[2, 65536]`.
    #[must_use]
    pub fn with_static_distance(map: Arc<AddressSpaceMap>, distance: u64) -> Self {
        let histogram = ContiguityHistogram::from_map(&map);
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), distance);
        apt.reanchor(&map, distance);
        OsKernel {
            map,
            apt,
            selector: DistanceSelector::paper_default(),
            histogram,
            regions: None,
            epochs: 0,
            distance_changes: 0,
        }
    }

    /// Boots the kernel with per-region distances (§4.2 extension): the
    /// address space is partitioned into at most `max_regions` regions by
    /// contiguity similarity and each gets its own selected distance.
    #[must_use]
    pub fn with_regions(
        map: Arc<AddressSpaceMap>,
        selector: DistanceSelector,
        max_regions: usize,
    ) -> Self {
        let histogram = ContiguityHistogram::from_map(&map);
        let regions = RegionTable::partition(&map, &selector, max_regions);
        let default = selector.select(&histogram);
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), default);
        for r in regions.regions() {
            apt.reanchor_range(&map, r.start, r.end, r.distance);
        }
        OsKernel {
            map,
            apt,
            selector,
            histogram,
            regions: Some(regions),
            epochs: 0,
            distance_changes: 0,
        }
    }

    /// The process's mapping.
    #[must_use]
    pub fn map(&self) -> &AddressSpaceMap {
        &self.map
    }

    /// The anchored page table.
    #[must_use]
    pub fn anchored_table(&self) -> &AnchoredPageTable {
        &self.apt
    }

    /// The current anchor distance (the value loaded into the per-process
    /// anchor-distance register on context switch). For multi-region
    /// kernels this is the distance of the region containing `vpn`.
    #[must_use]
    pub fn distance_for(&self, vpn: VirtPageNum) -> u64 {
        match &self.regions {
            Some(rt) => rt.distance_for(vpn).unwrap_or_else(|| self.apt.distance()),
            None => self.apt.distance(),
        }
    }

    /// The process-wide anchor distance (single-region kernels).
    #[must_use]
    pub fn distance(&self) -> u64 {
        self.apt.distance()
    }

    /// The region table, if the kernel runs the multi-region extension.
    #[must_use]
    pub fn regions(&self) -> Option<&RegionTable> {
        self.regions.as_ref()
    }

    /// Current contiguity histogram.
    #[must_use]
    pub fn histogram(&self) -> &ContiguityHistogram {
        &self.histogram
    }

    /// Epochs elapsed.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Number of distance changes actually performed.
    #[must_use]
    pub fn distance_changes(&self) -> u64 {
        self.distance_changes
    }

    /// Probes the anchor entry for `vpn` in the page table (the walker's
    /// off-critical-path anchor fetch, Figure 5c step 7).
    #[must_use]
    pub fn anchor_probe(&self, vpn: VirtPageNum) -> Option<AnchorProbe> {
        match &self.regions {
            Some(rt) => {
                let d = rt.distance_for(vpn)?;
                self.apt.anchor_probe_at(vpn, d)
            }
            None => self.apt.anchor_probe(vpn),
        }
    }

    /// Walks the page table for a regular translation.
    #[must_use]
    pub fn table(&self) -> &PageTable {
        self.apt.table()
    }

    /// `Some(head_vpn)` when `vpn` lies in a huge-page-shaped region — the
    /// OS-side knowledge the walker uses to fill a 2 MB TLB entry.
    #[must_use]
    pub fn huge_page_at(&self, vpn: VirtPageNum) -> Option<VirtPageNum> {
        self.map.huge_page_at(vpn)
    }

    /// The periodic epoch check (§4.1): rebuild the histogram, re-select,
    /// and re-anchor when the change clears the hysteresis. Multi-region
    /// kernels keep their boot-time partition (the paper leaves online
    /// repartitioning as future work).
    pub fn check_epoch(&mut self) -> EpochOutcome {
        self.epochs += 1;
        self.histogram = ContiguityHistogram::from_map(&self.map);
        if self.regions.is_some() {
            return EpochOutcome::default();
        }
        let current = self.apt.distance();
        match self.selector.should_change(&self.histogram, current) {
            Some(new) => {
                let cost = self.apt.reanchor(&self.map, new);
                self.distance_changes += 1;
                EpochOutcome { distance_change: Some((current, new)), sweep_cost: Some(cost) }
            }
            None => EpochOutcome::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;

    #[test]
    fn boot_selects_and_anchors() {
        let map = Arc::new(Scenario::LowContiguity.generate(2048, 1));
        let os = OsKernel::new(Arc::clone(&map), DistanceSelector::paper_default());
        assert!(os.distance() <= 8, "low contiguity picks a small distance");
        // Some anchor must be probeable.
        let first = map.chunks().next().unwrap().vpn;
        let covered =
            map.iter_pages().take(64).any(|(v, _)| os.anchor_probe(v).is_some_and(|p| p.covers(v)));
        assert!(covered, "no anchor covers any early page (first chunk at {first})");
    }

    #[test]
    fn static_distance_is_respected() {
        let map = Arc::new(Scenario::MediumContiguity.generate(1024, 2));
        let os = OsKernel::with_static_distance(Arc::clone(&map), 64);
        assert_eq!(os.distance(), 64);
        assert_eq!(os.distance_for(VirtPageNum::new(0)), 64);
    }

    #[test]
    fn stable_mapping_never_changes_distance() {
        let map = Arc::new(Scenario::MediumContiguity.generate(4096, 3));
        let mut os = OsKernel::new(Arc::clone(&map), DistanceSelector::paper_default());
        let d0 = os.distance();
        for _ in 0..12 {
            let out = os.check_epoch();
            assert!(!out.requires_shootdown());
        }
        assert_eq!(os.distance(), d0);
        assert_eq!(os.distance_changes(), 0);
        assert_eq!(os.epochs(), 12);
    }

    #[test]
    fn epoch_outcome_reports_sweep_cost_on_change() {
        // Boot with a deliberately bad static distance, then let the
        // dynamic path fix it: simulate by constructing with a selector
        // whose candidates exclude the boot value... simplest: boot static,
        // then swap in a kernel rebuilt dynamically and compare.
        let map = Arc::new(Scenario::HighContiguity.generate(65_536, 4));
        let mut os = OsKernel::new(Arc::clone(&map), DistanceSelector::paper_default());
        // Force a mismatch by re-anchoring to 2 behind the selector's back.
        let d = os.distance();
        os.apt.reanchor(&map.clone(), 2);
        let out = os.check_epoch();
        assert!(out.requires_shootdown());
        let (_, new) = out.distance_change.unwrap();
        assert_eq!(new, d);
        assert!(out.sweep_cost.unwrap().anchors_written > 0);
        assert_eq!(os.distance_changes(), 1);
    }

    #[test]
    fn anchor_probe_translations_match_map() {
        let map = Arc::new(Scenario::MediumContiguity.generate(2048, 5));
        let os = OsKernel::new(Arc::clone(&map), DistanceSelector::paper_default());
        for (vpn, pfn) in map.iter_pages() {
            if let Some(p) = os.anchor_probe(vpn) {
                if p.covers(vpn) {
                    assert_eq!(p.translate(vpn), pfn);
                }
            }
        }
    }

    #[test]
    fn multi_region_kernel_partitions() {
        // A mapping with a fine-grained half and a huge-chunk half.
        let mut m = AddressSpaceMap::new();
        let mut vpn = 0u64;
        let mut pfn = 1u64 << 20;
        for _ in 0..256 {
            m.map_range(
                VirtPageNum::new(vpn),
                hytlb_types::PhysFrameNum::new(pfn),
                4,
                hytlb_types::Permissions::READ_WRITE,
            );
            vpn += 4;
            pfn += 6;
        }
        let huge_base = 1u64 << 30 >> 12 << 12; // far, aligned
        m.map_range(
            VirtPageNum::new(huge_base),
            hytlb_types::PhysFrameNum::new(1 << 24),
            1 << 14,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let os = OsKernel::with_regions(Arc::clone(&map), DistanceSelector::paper_default(), 4);
        let rt = os.regions().unwrap();
        assert!(rt.regions().len() >= 2);
        let d_small = os.distance_for(VirtPageNum::new(0));
        let d_big = os.distance_for(VirtPageNum::new(huge_base));
        assert!(d_small < d_big, "{d_small} vs {d_big}");
        // Probes in both regions translate correctly.
        for (v, p) in map.iter_pages().step_by(97) {
            if let Some(probe) = os.anchor_probe(v) {
                if probe.covers(v) {
                    assert_eq!(probe.translate(v), p);
                }
            }
        }
    }
}
