//! Multi-region anchor distances — the paper's §4.2 extension.
//!
//! A single process-wide anchor distance is a compromise when different
//! semantic regions (code, heap, mmap arenas, stack) exhibit different
//! contiguity. The extension partitions the virtual address space into a
//! small number of regions — the hardware holds the region table in a
//! range-TLB-like structure, so the count is limited — each with its own
//! anchor distance selected from that region's contiguity histogram.

use crate::distance::DistanceSelector;
use hytlb_mem::{AddressSpaceMap, ContiguityHistogram};
use hytlb_types::VirtPageNum;

/// One region: `[start, end)` with its own anchor distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First VPN of the region.
    pub start: VirtPageNum,
    /// One-past-the-end VPN.
    pub end: VirtPageNum,
    /// Anchor distance used inside the region.
    pub distance: u64,
}

impl Region {
    /// `true` if `vpn` falls inside the region.
    #[must_use]
    pub fn contains(&self, vpn: VirtPageNum) -> bool {
        vpn >= self.start && vpn < self.end
    }
}

/// A small, HW-resident table of regions (searched in parallel on lookup,
/// like RMM's range TLB, hence the capacity limit).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionTable {
    regions: Vec<Region>,
}

impl RegionTable {
    /// Partitions the mapped address space into at most `max_regions`
    /// regions of similar contiguity and selects a distance per region.
    ///
    /// Strategy: group virtually-adjacent chunks whose sizes fall in the
    /// same log₂ bucket, then greedily merge the pair of adjacent groups
    /// with the closest mean-contiguity (in log space) until the region
    /// budget is met. Each final region's distance comes from running the
    /// selector on that region's own histogram.
    ///
    /// # Panics
    ///
    /// Panics if `max_regions` is zero.
    #[must_use]
    pub fn partition(
        map: &AddressSpaceMap,
        selector: &DistanceSelector,
        max_regions: usize,
    ) -> Self {
        assert!(max_regions >= 1, "need at least one region");
        // Seed groups: runs of adjacent chunks sharing a size bucket.
        #[derive(Debug)]
        struct Group {
            start: VirtPageNum,
            end: VirtPageNum,
            hist: ContiguityHistogram,
        }
        let mut groups: Vec<Group> = Vec::new();
        for chunk in map.chunks() {
            let bucket = chunk.len.ilog2();
            match groups.last_mut() {
                Some(g)
                    if g.hist.max_contiguity().max(1).ilog2() == bucket
                        || g.hist.mean_contiguity().max(1.0).log2().round() as u32 == bucket =>
                {
                    g.end = chunk.end_vpn();
                    g.hist.record(chunk.len, 1);
                }
                _ => {
                    let mut hist = ContiguityHistogram::new();
                    hist.record(chunk.len, 1);
                    groups.push(Group { start: chunk.vpn, end: chunk.end_vpn(), hist });
                }
            }
        }
        // Greedy merge until within budget.
        while groups.len() > max_regions {
            let (idx, _) = groups
                .windows(2)
                .enumerate()
                .map(|(i, w)| {
                    let a = w[0].hist.mean_contiguity().max(1.0).log2();
                    let b = w[1].hist.mean_contiguity().max(1.0).log2();
                    (i, (a - b).abs())
                })
                .min_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                .expect("len > max_regions >= 1");
            let right = groups.remove(idx + 1);
            let left = &mut groups[idx];
            left.end = right.end;
            left.hist.merge(&right.hist);
        }
        let regions = groups
            .into_iter()
            .map(|g| Region { start: g.start, end: g.end, distance: selector.select(&g.hist) })
            .collect();
        RegionTable { regions }
    }

    /// The regions, in ascending virtual order.
    #[must_use]
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Distance of the region containing `vpn`, if any region does — the
    /// parallel region-table search of §4.2.
    #[must_use]
    pub fn distance_for(&self, vpn: VirtPageNum) -> Option<u64> {
        self.regions.iter().find(|r| r.contains(vpn)).map(|r| r.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_types::{Permissions, PhysFrameNum};

    fn bimodal_map() -> AddressSpaceMap {
        let mut m = AddressSpaceMap::new();
        // Fine-grained area: 128 chunks of 4 pages.
        let mut vpn = 0u64;
        let mut pfn = 1u64 << 20;
        for _ in 0..128 {
            m.map_range(VirtPageNum::new(vpn), PhysFrameNum::new(pfn), 4, Permissions::READ_WRITE);
            vpn += 4;
            pfn += 5;
        }
        // Huge area: one 16 K-page chunk far away.
        m.map_range(
            VirtPageNum::new(1 << 20),
            PhysFrameNum::new(1 << 22),
            1 << 14,
            Permissions::READ_WRITE,
        );
        m
    }

    #[test]
    fn partition_separates_contiguity_modes() {
        let map = bimodal_map();
        let rt = RegionTable::partition(&map, &DistanceSelector::paper_default(), 4);
        assert!(rt.regions().len() >= 2);
        let d_fine = rt.distance_for(VirtPageNum::new(0)).unwrap();
        let d_huge = rt.distance_for(VirtPageNum::new(1 << 20)).unwrap();
        assert!(d_fine <= 8);
        assert!(d_huge >= 1 << 10);
    }

    #[test]
    fn budget_of_one_collapses_to_single_region() {
        let map = bimodal_map();
        let rt = RegionTable::partition(&map, &DistanceSelector::paper_default(), 1);
        assert_eq!(rt.regions().len(), 1);
        let only = rt.regions()[0];
        assert!(only.contains(VirtPageNum::new(0)));
        assert!(only.contains(VirtPageNum::new(1 << 20)));
    }

    #[test]
    fn unmapped_vpn_has_no_region_distance_outside_span() {
        let map = bimodal_map();
        let rt = RegionTable::partition(&map, &DistanceSelector::paper_default(), 4);
        assert_eq!(rt.distance_for(VirtPageNum::new(u64::MAX)), None);
    }

    #[test]
    fn regions_are_ordered_and_disjoint() {
        let map = bimodal_map();
        let rt = RegionTable::partition(&map, &DistanceSelector::paper_default(), 3);
        let rs = rt.regions();
        for w in rs.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn empty_map_gives_empty_table() {
        let map = AddressSpaceMap::new();
        let rt = RegionTable::partition(&map, &DistanceSelector::paper_default(), 4);
        assert!(rt.regions().is_empty());
        assert_eq!(rt.distance_for(VirtPageNum::new(0)), None);
    }
}
