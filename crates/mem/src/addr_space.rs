//! A process's virtual→physical mapping, stored as maximally-merged chunks.
//!
//! A *chunk* is a run of virtual pages mapped to physically contiguous
//! frames with uniform permissions — exactly the unit of contiguity every
//! coalescing scheme in the paper exploits. Keeping the map in merged-chunk
//! form makes the contiguity histogram (paper §4.1) a trivial scan and keeps
//! translation `O(log chunks)`.

use hytlb_types::{
    Permissions, PhysFrameNum, VirtAddr, VirtPageNum, GIANT_PAGE_PAGES, HUGE_PAGE_PAGES,
    PAGE_SIZE_U64,
};
use std::collections::BTreeMap;

/// Mappings at or below this many pages get a flat logical-index→VPN table
/// in their [`PageIndex`] (8 bytes/page, so ≤512 KB per index), replacing
/// the per-access binary search with a single array load.
const FLAT_TABLE_LIMIT: u64 = 1 << 16;

/// One maximal run of contiguously-mapped pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MapChunk {
    /// First virtual page of the run.
    pub vpn: VirtPageNum,
    /// Frame backing `vpn`; page `vpn + i` is backed by `pfn + i`.
    pub pfn: PhysFrameNum,
    /// Length of the run in 4 KB pages.
    pub len: u64,
    /// Permissions shared by every page of the run.
    pub perms: Permissions,
}

impl MapChunk {
    /// `true` if `vpn` lies inside this chunk.
    #[must_use]
    pub fn contains(&self, vpn: VirtPageNum) -> bool {
        vpn >= self.vpn && (vpn - self.vpn) < self.len
    }

    /// Frame backing `vpn`, or `None` if outside the chunk.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        self.contains(vpn).then(|| self.pfn + (vpn - self.vpn))
    }

    /// One-past-the-end virtual page.
    #[must_use]
    pub fn end_vpn(&self) -> VirtPageNum {
        self.vpn + self.len
    }
}

/// A virtual address space's page mapping.
///
/// Invariants: chunks are disjoint in virtual space, sorted by `vpn`, and
/// maximally merged (no two adjacent chunks are contiguous in both address
/// spaces with equal permissions).
///
/// # Examples
///
/// ```
/// use hytlb_mem::AddressSpaceMap;
/// use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut map = AddressSpaceMap::new();
/// map.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, Permissions::READ_WRITE);
/// map.map_range(VirtPageNum::new(4), PhysFrameNum::new(104), 4, Permissions::READ_WRITE);
/// // The two ranges merge into one 8-page chunk.
/// assert_eq!(map.chunks().count(), 1);
/// assert_eq!(map.translate(VirtPageNum::new(5)), Some(PhysFrameNum::new(105)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AddressSpaceMap {
    /// Keyed by starting VPN.
    chunks: BTreeMap<u64, MapChunk>,
    mapped_pages: u64,
}

impl AddressSpaceMap {
    /// Creates an empty address space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped 4 KB pages.
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.mapped_pages * hytlb_types::PAGE_SIZE_U64
    }

    /// Iterates over the maximal chunks in ascending virtual order.
    pub fn chunks(&self) -> impl Iterator<Item = &MapChunk> {
        self.chunks.values()
    }

    /// Number of maximal chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Maps `len` pages at `vpn` to frames starting at `pfn`, merging with
    /// adjacent chunks when virtually *and* physically contiguous with equal
    /// permissions.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or if any page of the range is already mapped —
    /// the OS models in this workspace never double-map, so a double map is
    /// a bug, not a recoverable condition.
    pub fn map_range(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum, len: u64, perms: Permissions) {
        assert!(len > 0, "cannot map an empty range");
        assert!(!self.overlaps(vpn, len), "double map at {vpn} (+{len} pages)");
        let mut chunk = MapChunk { vpn, pfn, len, perms };
        // Merge with predecessor.
        if let Some((&pk, &prev)) = self.chunks.range(..vpn.as_u64()).next_back() {
            if prev.end_vpn() == chunk.vpn
                && prev.pfn + prev.len == chunk.pfn
                && prev.perms == chunk.perms
            {
                self.chunks.remove(&pk);
                chunk = MapChunk { vpn: prev.vpn, pfn: prev.pfn, len: prev.len + chunk.len, perms };
            }
        }
        // Merge with successor.
        if let Some((&nk, &next)) = self.chunks.range(chunk.end_vpn().as_u64()..).next() {
            if chunk.end_vpn() == next.vpn
                && chunk.pfn + chunk.len == next.pfn
                && chunk.perms == next.perms
            {
                self.chunks.remove(&nk);
                chunk.len += next.len;
            }
        }
        self.chunks.insert(chunk.vpn.as_u64(), chunk);
        self.mapped_pages += len;
    }

    /// Unmaps `len` pages starting at `vpn`, splitting chunks as needed.
    /// Pages in the range that are not mapped are ignored.
    pub fn unmap_range(&mut self, vpn: VirtPageNum, len: u64) {
        let end = vpn + len;
        // Collect affected chunk keys first to keep the borrow checker happy.
        let keys: Vec<u64> = self
            .chunks
            .range(..end.as_u64())
            .rev()
            .take_while(|(_, c)| c.end_vpn() > vpn)
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let c = self.chunks.remove(&k).expect("key just collected");
            self.mapped_pages -= c.len;
            // Left remainder.
            if c.vpn < vpn {
                let keep = vpn - c.vpn;
                self.chunks.insert(
                    c.vpn.as_u64(),
                    MapChunk { vpn: c.vpn, pfn: c.pfn, len: keep, perms: c.perms },
                );
                self.mapped_pages += keep;
            }
            // Right remainder.
            if c.end_vpn() > end {
                let keep = c.end_vpn() - end;
                let off = end - c.vpn;
                self.chunks.insert(
                    end.as_u64(),
                    MapChunk { vpn: end, pfn: c.pfn + off, len: keep, perms: c.perms },
                );
                self.mapped_pages += keep;
            }
        }
    }

    /// `true` if any page in `[vpn, vpn+len)` is mapped.
    #[must_use]
    pub fn overlaps(&self, vpn: VirtPageNum, len: u64) -> bool {
        let end = vpn + len;
        self.chunks.range(..end.as_u64()).next_back().is_some_and(|(_, c)| c.end_vpn() > vpn)
    }

    /// The chunk containing `vpn`, if mapped.
    #[must_use]
    pub fn chunk_containing(&self, vpn: VirtPageNum) -> Option<&MapChunk> {
        self.chunks.range(..=vpn.as_u64()).next_back().map(|(_, c)| c).filter(|c| c.contains(vpn))
    }

    /// [`AddressSpaceMap::chunk_containing`] with a last-chunk cache over the
    /// `BTreeMap`: the tree search is skipped whenever `vpn` falls inside the
    /// chunk the cursor resolved last. Walk paths show strong chunk locality
    /// (a chunk covers up to thousands of pages), so most lookups hit.
    ///
    /// The cursor must only ever be reused against the same, unmodified map
    /// that filled it; mutating the map invalidates any outstanding cursor.
    #[must_use]
    pub fn chunk_containing_with(
        &self,
        vpn: VirtPageNum,
        cursor: &mut ChunkCursor,
    ) -> Option<MapChunk> {
        if let Some(c) = cursor.last {
            if c.contains(vpn) {
                return Some(c);
            }
        }
        let found = self.chunk_containing(vpn).copied();
        if let Some(c) = found {
            cursor.last = Some(c);
        }
        found
    }

    /// [`AddressSpaceMap::huge_page_at`] through a [`ChunkCursor`], for walk
    /// paths that probe huge-page candidacy on every TLB refill.
    #[must_use]
    pub fn huge_page_at_with(
        &self,
        vpn: VirtPageNum,
        cursor: &mut ChunkCursor,
    ) -> Option<VirtPageNum> {
        let head = vpn.align_down(HUGE_PAGE_PAGES);
        let c = self.chunk_containing_with(head, cursor)?;
        if c.end_vpn() < head + HUGE_PAGE_PAGES {
            return None;
        }
        let head_pfn = c.translate(head).expect("head inside chunk");
        head_pfn.is_aligned(HUGE_PAGE_PAGES).then_some(head)
    }

    /// Translates a virtual page to its backing frame.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        self.chunk_containing(vpn).and_then(|c| c.translate(vpn))
    }

    /// Permissions of the page at `vpn`, if mapped.
    #[must_use]
    pub fn permissions(&self, vpn: VirtPageNum) -> Option<Permissions> {
        self.chunk_containing(vpn).map(|c| c.perms)
    }

    /// Number of pages mapped contiguously (in both address spaces) starting
    /// at `vpn` — i.e. the remaining length of `vpn`'s chunk. This is what
    /// an anchor PTE at `vpn` would record as its contiguity.
    #[must_use]
    pub fn contiguity_at(&self, vpn: VirtPageNum) -> u64 {
        self.chunk_containing(vpn).map_or(0, |c| c.len - (vpn - c.vpn))
    }

    /// If `vpn` lies inside a mapping usable as an x86-64 2 MB page —
    /// a 2 MB-aligned virtual region fully backed by a 2 MB-aligned
    /// physically-contiguous run — returns the first VPN of that huge page.
    #[must_use]
    pub fn huge_page_at(&self, vpn: VirtPageNum) -> Option<VirtPageNum> {
        let head = vpn.align_down(HUGE_PAGE_PAGES);
        let c = self.chunk_containing(head)?;
        // The whole 2 MB region must fall inside this single maximal chunk.
        if c.end_vpn() < head + HUGE_PAGE_PAGES {
            return None;
        }
        let head_pfn = c.translate(head).expect("head inside chunk");
        head_pfn.is_aligned(HUGE_PAGE_PAGES).then_some(head)
    }

    /// Like [`AddressSpaceMap::huge_page_at`] for x86-64 1 GB giant pages:
    /// the 1 GB-aligned virtual region around `vpn` must be fully backed by
    /// one 1 GB-aligned physically-contiguous run.
    #[must_use]
    pub fn giant_page_at(&self, vpn: VirtPageNum) -> Option<VirtPageNum> {
        let head = vpn.align_down(GIANT_PAGE_PAGES);
        let c = self.chunk_containing(head)?;
        if c.end_vpn() < head + GIANT_PAGE_PAGES {
            return None;
        }
        let head_pfn = c.translate(head).expect("head inside chunk");
        head_pfn.is_aligned(GIANT_PAGE_PAGES).then_some(head)
    }

    /// Iterates over every mapped `(vpn, pfn)` pair. Intended for tests and
    /// page-table construction; cost is `O(mapped_pages)`.
    pub fn iter_pages(&self) -> impl Iterator<Item = (VirtPageNum, PhysFrameNum)> + '_ {
        self.chunks.values().flat_map(|c| (0..c.len).map(move |i| (c.vpn + i, c.pfn + i)))
    }

    /// Builds an index for O(log chunks) lookup of the *i-th mapped page*.
    /// Workload traces address pages by logical index `[0, mapped_pages)`;
    /// the indexer places them onto whatever virtual layout the scenario
    /// produced (including layouts with holes).
    #[must_use]
    pub fn page_index(&self) -> PageIndex {
        let mut cumulative = Vec::with_capacity(self.chunks.len());
        let mut acc = 0u64;
        for c in self.chunks.values() {
            cumulative.push((acc, c.vpn));
            acc += c.len;
        }
        let flat = (acc <= FLAT_TABLE_LIMIT).then(|| {
            let pages = usize::try_from(acc).expect("flat table bounded by FLAT_TABLE_LIMIT");
            let mut table = Vec::with_capacity(pages);
            for c in self.chunks.values() {
                table.extend((0..c.len).map(|i| c.vpn + i));
            }
            table
        });
        PageIndex { cumulative, flat, total: acc }
    }
}

/// Memento for [`AddressSpaceMap::chunk_containing_with`]: caches the last
/// chunk a lookup resolved so runs of lookups inside one chunk skip the
/// `BTreeMap` search entirely. `Default` starts empty (first lookup always
/// searches). Only meaningful against the map that filled it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkCursor {
    last: Option<MapChunk>,
}

/// Maps logical page indices to virtual page numbers of a specific
/// [`AddressSpaceMap`]. See [`AddressSpaceMap::page_index`].
#[derive(Debug, Clone)]
pub struct PageIndex {
    /// `(first_logical_index, chunk_start_vpn)` per chunk, ascending.
    cumulative: Vec<(u64, VirtPageNum)>,
    /// Direct logical-index→VPN table, present only for mappings of at most
    /// [`FLAT_TABLE_LIMIT`] pages.
    flat: Option<Vec<VirtPageNum>>,
    total: u64,
}

/// MRU-chunk memento for [`PageIndex::nth_page_with`]: remembers the
/// cumulative-table slot of the last lookup so consecutive accesses inside
/// one chunk skip the binary search. `Default` starts at slot 0. Only
/// meaningful against the index that filled it.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageCursor {
    pos: usize,
}

impl PageIndex {
    /// Number of mapped pages (valid indices are `0..len()`).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` for an empty mapping.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The VPN of the `i`-th mapped page.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn nth_page(&self, i: u64) -> VirtPageNum {
        assert!(i < self.total, "page index {i} out of {}", self.total);
        let pos = self.cumulative.partition_point(|&(first, _)| first <= i) - 1;
        let (first, vpn) = self.cumulative[pos];
        vpn + (i - first)
    }

    /// [`PageIndex::nth_page`] with an MRU-chunk cursor: when `i` lands in
    /// the same chunk as the previous lookup the binary search is skipped.
    /// Agrees with `nth_page` on every input (the cursor only changes which
    /// slot is *tried first*, never the result).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn nth_page_with(&self, i: u64, cursor: &mut PageCursor) -> VirtPageNum {
        assert!(i < self.total, "page index {i} out of {}", self.total);
        let pos = if self.slot_covers(cursor.pos, i) {
            cursor.pos
        } else {
            let found = self.cumulative.partition_point(|&(first, _)| first <= i) - 1;
            cursor.pos = found;
            found
        };
        let (first, vpn) = self.cumulative[pos];
        vpn + (i - first)
    }

    /// `true` if cumulative slot `pos` exists and covers logical index `i`.
    fn slot_covers(&self, pos: usize, i: u64) -> bool {
        match self.cumulative.get(pos) {
            Some(&(first, _)) => {
                first <= i
                    && self.cumulative.get(pos + 1).map_or(i < self.total, |&(next, _)| i < next)
            }
            None => false,
        }
    }

    /// `true` when this index carries the flat logical-index→VPN table
    /// (small mappings only; see [`PageIndex::resolve`]).
    #[must_use]
    pub fn has_flat_table(&self) -> bool {
        self.flat.is_some()
    }

    /// Resolves a trace of *logical* byte addresses (the representation
    /// workload generators emit) into virtual addresses of this mapping, in
    /// one pass. Element-for-element identical to the scalar placement math
    /// in the simulation engine (`page = logical / 4096`, VPN via
    /// `nth_page`, byte offset preserved), but uses the flat table when
    /// present and the MRU-chunk cursor otherwise.
    ///
    /// # Panics
    ///
    /// Panics if any logical address addresses a page `>= len()`, exactly
    /// like [`PageIndex::nth_page`].
    #[must_use]
    pub fn resolve(&self, logical: &[u64]) -> Vec<VirtAddr> {
        let mut out = Vec::with_capacity(logical.len());
        if let Some(flat) = &self.flat {
            for &addr in logical {
                let page = addr / PAGE_SIZE_U64;
                let offset = addr % PAGE_SIZE_U64;
                assert!(page < self.total, "page index {page} out of {}", self.total);
                let idx = usize::try_from(page).expect("flat table bounded by FLAT_TABLE_LIMIT");
                out.push(VirtAddr::new(flat[idx].base_addr().as_u64() + offset));
            }
        } else {
            let mut cursor = PageCursor::default();
            for &addr in logical {
                let page = addr / PAGE_SIZE_U64;
                let offset = addr % PAGE_SIZE_U64;
                let vpn = self.nth_page_with(page, &mut cursor);
                out.push(VirtAddr::new(vpn.base_addr().as_u64() + offset));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> Permissions {
        Permissions::READ_WRITE
    }

    #[test]
    fn empty_map_translates_nothing() {
        let m = AddressSpaceMap::new();
        assert_eq!(m.translate(VirtPageNum::new(0)), None);
        assert_eq!(m.mapped_pages(), 0);
        assert_eq!(m.contiguity_at(VirtPageNum::new(5)), 0);
    }

    #[test]
    fn basic_map_and_translate() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(50), 5, rw());
        assert_eq!(m.translate(VirtPageNum::new(12)), Some(PhysFrameNum::new(52)));
        assert_eq!(m.translate(VirtPageNum::new(9)), None);
        assert_eq!(m.translate(VirtPageNum::new(15)), None);
        assert_eq!(m.mapped_pages(), 5);
        assert_eq!(m.permissions(VirtPageNum::new(10)), Some(rw()));
    }

    #[test]
    fn adjacent_contiguous_ranges_merge() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(8), PhysFrameNum::new(108), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(104), 4, rw());
        assert_eq!(m.chunk_count(), 1);
        assert_eq!(m.contiguity_at(VirtPageNum::new(0)), 12);
        assert_eq!(m.contiguity_at(VirtPageNum::new(11)), 1);
    }

    #[test]
    fn physically_discontiguous_ranges_do_not_merge() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(200), 4, rw());
        assert_eq!(m.chunk_count(), 2);
        assert_eq!(m.contiguity_at(VirtPageNum::new(2)), 2);
    }

    #[test]
    fn permission_boundaries_break_merging() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(104), 4, Permissions::READ);
        assert_eq!(m.chunk_count(), 2);
    }

    #[test]
    #[should_panic(expected = "double map")]
    fn double_map_panics() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 4, rw());
        m.map_range(VirtPageNum::new(3), PhysFrameNum::new(10), 1, rw());
    }

    #[test]
    fn unmap_middle_splits_chunk() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 10, rw());
        m.unmap_range(VirtPageNum::new(4), 2);
        assert_eq!(m.chunk_count(), 2);
        assert_eq!(m.mapped_pages(), 8);
        assert_eq!(m.translate(VirtPageNum::new(4)), None);
        assert_eq!(m.translate(VirtPageNum::new(6)), Some(PhysFrameNum::new(106)));
        assert_eq!(m.contiguity_at(VirtPageNum::new(0)), 4);
        assert_eq!(m.contiguity_at(VirtPageNum::new(6)), 4);
    }

    #[test]
    fn unmap_spanning_multiple_chunks() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(200), 4, rw());
        m.map_range(VirtPageNum::new(8), PhysFrameNum::new(300), 4, rw());
        m.unmap_range(VirtPageNum::new(2), 8);
        assert_eq!(m.mapped_pages(), 4);
        assert_eq!(m.translate(VirtPageNum::new(1)), Some(PhysFrameNum::new(101)));
        assert_eq!(m.translate(VirtPageNum::new(5)), None);
        assert_eq!(m.translate(VirtPageNum::new(10)), Some(PhysFrameNum::new(302)));
    }

    #[test]
    fn unmap_unmapped_range_is_noop() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 2, rw());
        m.unmap_range(VirtPageNum::new(0), 5);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn huge_page_detection_requires_alignment_in_both_spaces() {
        let mut m = AddressSpaceMap::new();
        // VA region [512, 1024) backed by PA [1024, 1536): both 2MB-aligned.
        m.map_range(VirtPageNum::new(512), PhysFrameNum::new(1024), 512, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(700)), Some(VirtPageNum::new(512)));
        // VA [2048, 2560) backed by misaligned PA.
        m.map_range(VirtPageNum::new(2048), PhysFrameNum::new(4097), 512, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(2100)), None);
        // Aligned but short run.
        m.map_range(VirtPageNum::new(4096), PhysFrameNum::new(8192), 511, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(4100)), None);
    }

    #[test]
    fn huge_page_inside_larger_chunk() {
        let mut m = AddressSpaceMap::new();
        // 4 MB chunk aligned in both spaces: both 2 MB halves are huge pages.
        m.map_range(VirtPageNum::new(1024), PhysFrameNum::new(2048), 1024, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(1024)), Some(VirtPageNum::new(1024)));
        assert_eq!(m.huge_page_at(VirtPageNum::new(1600)), Some(VirtPageNum::new(1536)));
    }

    #[test]
    fn page_index_covers_holes() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 3, rw());
        m.map_range(VirtPageNum::new(100), PhysFrameNum::new(50), 2, rw());
        let idx = m.page_index();
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert_eq!(idx.nth_page(0), VirtPageNum::new(10));
        assert_eq!(idx.nth_page(2), VirtPageNum::new(12));
        assert_eq!(idx.nth_page(3), VirtPageNum::new(100));
        assert_eq!(idx.nth_page(4), VirtPageNum::new(101));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn page_index_rejects_out_of_range() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 1, rw());
        let _ = m.page_index().nth_page(1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn page_index_rejects_far_out_of_range() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 8, rw());
        let _ = m.page_index().nth_page(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn empty_page_index_rejects_zero() {
        let _ = AddressSpaceMap::new().page_index().nth_page(0);
    }

    #[test]
    fn page_index_chunk_seam_boundaries() {
        // Chunks of different lengths, including a single-page one: the
        // exact first/last logical index of each chunk is where the
        // partition-point lookup changes cells.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 4, rw()); // logical 0..=3
        m.map_range(VirtPageNum::new(20), PhysFrameNum::new(100), 1, rw()); // logical 4
        m.map_range(VirtPageNum::new(30), PhysFrameNum::new(200), 3, rw()); // logical 5..=7
        let idx = m.page_index();
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.nth_page(0), VirtPageNum::new(10)); // first page of first chunk
        assert_eq!(idx.nth_page(3), VirtPageNum::new(13)); // last page before a seam
        assert_eq!(idx.nth_page(4), VirtPageNum::new(20)); // the single-page chunk
        assert_eq!(idx.nth_page(5), VirtPageNum::new(30)); // first page after a seam
        assert_eq!(idx.nth_page(7), VirtPageNum::new(32)); // last valid index
    }

    #[test]
    fn page_index_matches_iter_pages_exhaustively() {
        // Seams produced by merging and unmapping, not just fresh ranges.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 6, rw());
        m.map_range(VirtPageNum::new(6), PhysFrameNum::new(106), 6, rw()); // merges
        m.unmap_range(VirtPageNum::new(4), 3); // splits the merged chunk
        m.map_range(VirtPageNum::new(40), PhysFrameNum::new(500), 2, rw());
        let idx = m.page_index();
        assert_eq!(idx.len(), m.mapped_pages());
        for (i, (vpn, _)) in m.iter_pages().enumerate() {
            assert_eq!(idx.nth_page(i as u64), vpn, "logical index {i}");
        }
    }

    #[test]
    fn cursor_lookup_matches_plain_nth_page() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 4, rw());
        m.map_range(VirtPageNum::new(20), PhysFrameNum::new(100), 1, rw());
        m.map_range(VirtPageNum::new(30), PhysFrameNum::new(200), 3, rw());
        let idx = m.page_index();
        let mut cursor = PageCursor::default();
        // Forward, backward, and seam-hopping patterns all agree.
        for &i in &[0u64, 1, 2, 3, 4, 5, 6, 7, 7, 0, 4, 3, 5, 2, 6, 1] {
            assert_eq!(idx.nth_page_with(i, &mut cursor), idx.nth_page(i), "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn cursor_lookup_rejects_out_of_range() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 2, rw());
        let idx = m.page_index();
        let _ = idx.nth_page_with(2, &mut PageCursor::default());
    }

    #[test]
    fn resolve_matches_scalar_placement_math() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 4, rw());
        m.map_range(VirtPageNum::new(100), PhysFrameNum::new(50), 4, rw());
        let idx = m.page_index();
        assert!(idx.has_flat_table());
        let logical: Vec<u64> =
            vec![0, 4095, 4096, 3 * 4096 + 17, 7 * 4096 + 4095, 5 * 4096, 4096 + 1];
        let vas = idx.resolve(&logical);
        for (&l, &va) in logical.iter().zip(&vas) {
            let vpn = idx.nth_page(l / PAGE_SIZE_U64);
            let expect = VirtAddr::new(vpn.base_addr().as_u64() + l % PAGE_SIZE_U64);
            assert_eq!(va, expect, "logical {l:#x}");
        }
    }

    #[test]
    fn resolve_agrees_with_and_without_flat_table() {
        // Build a mapping just above the flat-table limit, then compare the
        // cursor path against the same layout's nth_page answers.
        let mut m = AddressSpaceMap::new();
        let mut vpn = 0u64;
        let mut pfn = 0u64;
        let mut remaining = FLAT_TABLE_LIMIT + 7;
        let mut len = 3u64;
        while remaining > 0 {
            let take = len.min(remaining);
            m.map_range(VirtPageNum::new(vpn), PhysFrameNum::new(pfn), take, rw());
            vpn += take + 1; // leave a hole so chunks never merge
            pfn += take + 7;
            remaining -= take;
            len = (len * 5 + 1) % 900 + 1;
        }
        let idx = m.page_index();
        assert!(!idx.has_flat_table());
        let logical: Vec<u64> =
            (0..idx.len()).step_by(97).map(|p| p * PAGE_SIZE_U64 + p % PAGE_SIZE_U64).collect();
        let vas = idx.resolve(&logical);
        for (&l, &va) in logical.iter().zip(&vas) {
            let vpn = idx.nth_page(l / PAGE_SIZE_U64);
            let expect = VirtAddr::new(vpn.base_addr().as_u64() + l % PAGE_SIZE_U64);
            assert_eq!(va, expect, "logical {l:#x}");
        }
    }

    #[test]
    fn chunk_cursor_matches_plain_lookup() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(8), PhysFrameNum::new(200), 4, rw());
        let mut cursor = ChunkCursor::default();
        for v in 0..16u64 {
            let vpn = VirtPageNum::new(v);
            assert_eq!(
                m.chunk_containing_with(vpn, &mut cursor),
                m.chunk_containing(vpn).copied(),
                "vpn {v}"
            );
        }
        // Revisit earlier pages with a now-stale-positioned cursor.
        for v in [2u64, 9, 1, 15, 0, 8] {
            let vpn = VirtPageNum::new(v);
            assert_eq!(
                m.chunk_containing_with(vpn, &mut cursor),
                m.chunk_containing(vpn).copied(),
                "vpn {v}"
            );
        }
    }

    #[test]
    fn huge_page_cursor_matches_plain_lookup() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(512), PhysFrameNum::new(1024), 512, rw());
        m.map_range(VirtPageNum::new(2048), PhysFrameNum::new(4097), 512, rw());
        m.map_range(VirtPageNum::new(4096), PhysFrameNum::new(8192), 511, rw());
        let mut cursor = ChunkCursor::default();
        for v in [700u64, 513, 1023, 2100, 2048, 4100, 512, 600] {
            let vpn = VirtPageNum::new(v);
            assert_eq!(m.huge_page_at_with(vpn, &mut cursor), m.huge_page_at(vpn), "vpn {v}");
        }
    }

    #[test]
    fn iter_pages_matches_translate() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(3), PhysFrameNum::new(77), 3, rw());
        m.map_range(VirtPageNum::new(9), PhysFrameNum::new(11), 2, rw());
        let pages: Vec<_> = m.iter_pages().collect();
        assert_eq!(pages.len(), 5);
        for (v, p) in pages {
            assert_eq!(m.translate(v), Some(p));
        }
    }
}
