//! A process's virtual→physical mapping, stored as maximally-merged chunks.
//!
//! A *chunk* is a run of virtual pages mapped to physically contiguous
//! frames with uniform permissions — exactly the unit of contiguity every
//! coalescing scheme in the paper exploits. Keeping the map in merged-chunk
//! form makes the contiguity histogram (paper §4.1) a trivial scan and keeps
//! translation `O(log chunks)`.

use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum, GIANT_PAGE_PAGES, HUGE_PAGE_PAGES};
use std::collections::BTreeMap;

/// One maximal run of contiguously-mapped pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MapChunk {
    /// First virtual page of the run.
    pub vpn: VirtPageNum,
    /// Frame backing `vpn`; page `vpn + i` is backed by `pfn + i`.
    pub pfn: PhysFrameNum,
    /// Length of the run in 4 KB pages.
    pub len: u64,
    /// Permissions shared by every page of the run.
    pub perms: Permissions,
}

impl MapChunk {
    /// `true` if `vpn` lies inside this chunk.
    #[must_use]
    pub fn contains(&self, vpn: VirtPageNum) -> bool {
        vpn >= self.vpn && (vpn - self.vpn) < self.len
    }

    /// Frame backing `vpn`, or `None` if outside the chunk.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        self.contains(vpn).then(|| self.pfn + (vpn - self.vpn))
    }

    /// One-past-the-end virtual page.
    #[must_use]
    pub fn end_vpn(&self) -> VirtPageNum {
        self.vpn + self.len
    }
}

/// A virtual address space's page mapping.
///
/// Invariants: chunks are disjoint in virtual space, sorted by `vpn`, and
/// maximally merged (no two adjacent chunks are contiguous in both address
/// spaces with equal permissions).
///
/// # Examples
///
/// ```
/// use hytlb_mem::AddressSpaceMap;
/// use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut map = AddressSpaceMap::new();
/// map.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, Permissions::READ_WRITE);
/// map.map_range(VirtPageNum::new(4), PhysFrameNum::new(104), 4, Permissions::READ_WRITE);
/// // The two ranges merge into one 8-page chunk.
/// assert_eq!(map.chunks().count(), 1);
/// assert_eq!(map.translate(VirtPageNum::new(5)), Some(PhysFrameNum::new(105)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AddressSpaceMap {
    /// Keyed by starting VPN.
    chunks: BTreeMap<u64, MapChunk>,
    mapped_pages: u64,
}

impl AddressSpaceMap {
    /// Creates an empty address space.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of mapped 4 KB pages.
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> u64 {
        self.mapped_pages * hytlb_types::PAGE_SIZE_U64
    }

    /// Iterates over the maximal chunks in ascending virtual order.
    pub fn chunks(&self) -> impl Iterator<Item = &MapChunk> {
        self.chunks.values()
    }

    /// Number of maximal chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Maps `len` pages at `vpn` to frames starting at `pfn`, merging with
    /// adjacent chunks when virtually *and* physically contiguous with equal
    /// permissions.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or if any page of the range is already mapped —
    /// the OS models in this workspace never double-map, so a double map is
    /// a bug, not a recoverable condition.
    pub fn map_range(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum, len: u64, perms: Permissions) {
        assert!(len > 0, "cannot map an empty range");
        assert!(!self.overlaps(vpn, len), "double map at {vpn} (+{len} pages)");
        let mut chunk = MapChunk { vpn, pfn, len, perms };
        // Merge with predecessor.
        if let Some((&pk, &prev)) = self.chunks.range(..vpn.as_u64()).next_back() {
            if prev.end_vpn() == chunk.vpn
                && prev.pfn + prev.len == chunk.pfn
                && prev.perms == chunk.perms
            {
                self.chunks.remove(&pk);
                chunk = MapChunk { vpn: prev.vpn, pfn: prev.pfn, len: prev.len + chunk.len, perms };
            }
        }
        // Merge with successor.
        if let Some((&nk, &next)) = self.chunks.range(chunk.end_vpn().as_u64()..).next() {
            if chunk.end_vpn() == next.vpn
                && chunk.pfn + chunk.len == next.pfn
                && chunk.perms == next.perms
            {
                self.chunks.remove(&nk);
                chunk.len += next.len;
            }
        }
        self.chunks.insert(chunk.vpn.as_u64(), chunk);
        self.mapped_pages += len;
    }

    /// Unmaps `len` pages starting at `vpn`, splitting chunks as needed.
    /// Pages in the range that are not mapped are ignored.
    pub fn unmap_range(&mut self, vpn: VirtPageNum, len: u64) {
        let end = vpn + len;
        // Collect affected chunk keys first to keep the borrow checker happy.
        let keys: Vec<u64> = self
            .chunks
            .range(..end.as_u64())
            .rev()
            .take_while(|(_, c)| c.end_vpn() > vpn)
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let c = self.chunks.remove(&k).expect("key just collected");
            self.mapped_pages -= c.len;
            // Left remainder.
            if c.vpn < vpn {
                let keep = vpn - c.vpn;
                self.chunks.insert(
                    c.vpn.as_u64(),
                    MapChunk { vpn: c.vpn, pfn: c.pfn, len: keep, perms: c.perms },
                );
                self.mapped_pages += keep;
            }
            // Right remainder.
            if c.end_vpn() > end {
                let keep = c.end_vpn() - end;
                let off = end - c.vpn;
                self.chunks.insert(
                    end.as_u64(),
                    MapChunk { vpn: end, pfn: c.pfn + off, len: keep, perms: c.perms },
                );
                self.mapped_pages += keep;
            }
        }
    }

    /// `true` if any page in `[vpn, vpn+len)` is mapped.
    #[must_use]
    pub fn overlaps(&self, vpn: VirtPageNum, len: u64) -> bool {
        let end = vpn + len;
        self.chunks.range(..end.as_u64()).next_back().is_some_and(|(_, c)| c.end_vpn() > vpn)
    }

    /// The chunk containing `vpn`, if mapped.
    #[must_use]
    pub fn chunk_containing(&self, vpn: VirtPageNum) -> Option<&MapChunk> {
        self.chunks.range(..=vpn.as_u64()).next_back().map(|(_, c)| c).filter(|c| c.contains(vpn))
    }

    /// Translates a virtual page to its backing frame.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        self.chunk_containing(vpn).and_then(|c| c.translate(vpn))
    }

    /// Permissions of the page at `vpn`, if mapped.
    #[must_use]
    pub fn permissions(&self, vpn: VirtPageNum) -> Option<Permissions> {
        self.chunk_containing(vpn).map(|c| c.perms)
    }

    /// Number of pages mapped contiguously (in both address spaces) starting
    /// at `vpn` — i.e. the remaining length of `vpn`'s chunk. This is what
    /// an anchor PTE at `vpn` would record as its contiguity.
    #[must_use]
    pub fn contiguity_at(&self, vpn: VirtPageNum) -> u64 {
        self.chunk_containing(vpn).map_or(0, |c| c.len - (vpn - c.vpn))
    }

    /// If `vpn` lies inside a mapping usable as an x86-64 2 MB page —
    /// a 2 MB-aligned virtual region fully backed by a 2 MB-aligned
    /// physically-contiguous run — returns the first VPN of that huge page.
    #[must_use]
    pub fn huge_page_at(&self, vpn: VirtPageNum) -> Option<VirtPageNum> {
        let head = vpn.align_down(HUGE_PAGE_PAGES);
        let c = self.chunk_containing(head)?;
        // The whole 2 MB region must fall inside this single maximal chunk.
        if c.end_vpn() < head + HUGE_PAGE_PAGES {
            return None;
        }
        let head_pfn = c.translate(head).expect("head inside chunk");
        head_pfn.is_aligned(HUGE_PAGE_PAGES).then_some(head)
    }

    /// Like [`AddressSpaceMap::huge_page_at`] for x86-64 1 GB giant pages:
    /// the 1 GB-aligned virtual region around `vpn` must be fully backed by
    /// one 1 GB-aligned physically-contiguous run.
    #[must_use]
    pub fn giant_page_at(&self, vpn: VirtPageNum) -> Option<VirtPageNum> {
        let head = vpn.align_down(GIANT_PAGE_PAGES);
        let c = self.chunk_containing(head)?;
        if c.end_vpn() < head + GIANT_PAGE_PAGES {
            return None;
        }
        let head_pfn = c.translate(head).expect("head inside chunk");
        head_pfn.is_aligned(GIANT_PAGE_PAGES).then_some(head)
    }

    /// Iterates over every mapped `(vpn, pfn)` pair. Intended for tests and
    /// page-table construction; cost is `O(mapped_pages)`.
    pub fn iter_pages(&self) -> impl Iterator<Item = (VirtPageNum, PhysFrameNum)> + '_ {
        self.chunks.values().flat_map(|c| (0..c.len).map(move |i| (c.vpn + i, c.pfn + i)))
    }

    /// Builds an index for O(log chunks) lookup of the *i-th mapped page*.
    /// Workload traces address pages by logical index `[0, mapped_pages)`;
    /// the indexer places them onto whatever virtual layout the scenario
    /// produced (including layouts with holes).
    #[must_use]
    pub fn page_index(&self) -> PageIndex {
        let mut cumulative = Vec::with_capacity(self.chunks.len());
        let mut acc = 0u64;
        for c in self.chunks.values() {
            cumulative.push((acc, c.vpn));
            acc += c.len;
        }
        PageIndex { cumulative, total: acc }
    }
}

/// Maps logical page indices to virtual page numbers of a specific
/// [`AddressSpaceMap`]. See [`AddressSpaceMap::page_index`].
#[derive(Debug, Clone)]
pub struct PageIndex {
    /// `(first_logical_index, chunk_start_vpn)` per chunk, ascending.
    cumulative: Vec<(u64, VirtPageNum)>,
    total: u64,
}

impl PageIndex {
    /// Number of mapped pages (valid indices are `0..len()`).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` for an empty mapping.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The VPN of the `i`-th mapped page.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn nth_page(&self, i: u64) -> VirtPageNum {
        assert!(i < self.total, "page index {i} out of {}", self.total);
        let pos = self.cumulative.partition_point(|&(first, _)| first <= i) - 1;
        let (first, vpn) = self.cumulative[pos];
        vpn + (i - first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw() -> Permissions {
        Permissions::READ_WRITE
    }

    #[test]
    fn empty_map_translates_nothing() {
        let m = AddressSpaceMap::new();
        assert_eq!(m.translate(VirtPageNum::new(0)), None);
        assert_eq!(m.mapped_pages(), 0);
        assert_eq!(m.contiguity_at(VirtPageNum::new(5)), 0);
    }

    #[test]
    fn basic_map_and_translate() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(50), 5, rw());
        assert_eq!(m.translate(VirtPageNum::new(12)), Some(PhysFrameNum::new(52)));
        assert_eq!(m.translate(VirtPageNum::new(9)), None);
        assert_eq!(m.translate(VirtPageNum::new(15)), None);
        assert_eq!(m.mapped_pages(), 5);
        assert_eq!(m.permissions(VirtPageNum::new(10)), Some(rw()));
    }

    #[test]
    fn adjacent_contiguous_ranges_merge() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(8), PhysFrameNum::new(108), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(104), 4, rw());
        assert_eq!(m.chunk_count(), 1);
        assert_eq!(m.contiguity_at(VirtPageNum::new(0)), 12);
        assert_eq!(m.contiguity_at(VirtPageNum::new(11)), 1);
    }

    #[test]
    fn physically_discontiguous_ranges_do_not_merge() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(200), 4, rw());
        assert_eq!(m.chunk_count(), 2);
        assert_eq!(m.contiguity_at(VirtPageNum::new(2)), 2);
    }

    #[test]
    fn permission_boundaries_break_merging() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(104), 4, Permissions::READ);
        assert_eq!(m.chunk_count(), 2);
    }

    #[test]
    #[should_panic(expected = "double map")]
    fn double_map_panics() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 4, rw());
        m.map_range(VirtPageNum::new(3), PhysFrameNum::new(10), 1, rw());
    }

    #[test]
    fn unmap_middle_splits_chunk() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 10, rw());
        m.unmap_range(VirtPageNum::new(4), 2);
        assert_eq!(m.chunk_count(), 2);
        assert_eq!(m.mapped_pages(), 8);
        assert_eq!(m.translate(VirtPageNum::new(4)), None);
        assert_eq!(m.translate(VirtPageNum::new(6)), Some(PhysFrameNum::new(106)));
        assert_eq!(m.contiguity_at(VirtPageNum::new(0)), 4);
        assert_eq!(m.contiguity_at(VirtPageNum::new(6)), 4);
    }

    #[test]
    fn unmap_spanning_multiple_chunks() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 4, rw());
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(200), 4, rw());
        m.map_range(VirtPageNum::new(8), PhysFrameNum::new(300), 4, rw());
        m.unmap_range(VirtPageNum::new(2), 8);
        assert_eq!(m.mapped_pages(), 4);
        assert_eq!(m.translate(VirtPageNum::new(1)), Some(PhysFrameNum::new(101)));
        assert_eq!(m.translate(VirtPageNum::new(5)), None);
        assert_eq!(m.translate(VirtPageNum::new(10)), Some(PhysFrameNum::new(302)));
    }

    #[test]
    fn unmap_unmapped_range_is_noop() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 2, rw());
        m.unmap_range(VirtPageNum::new(0), 5);
        assert_eq!(m.mapped_pages(), 2);
    }

    #[test]
    fn huge_page_detection_requires_alignment_in_both_spaces() {
        let mut m = AddressSpaceMap::new();
        // VA region [512, 1024) backed by PA [1024, 1536): both 2MB-aligned.
        m.map_range(VirtPageNum::new(512), PhysFrameNum::new(1024), 512, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(700)), Some(VirtPageNum::new(512)));
        // VA [2048, 2560) backed by misaligned PA.
        m.map_range(VirtPageNum::new(2048), PhysFrameNum::new(4097), 512, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(2100)), None);
        // Aligned but short run.
        m.map_range(VirtPageNum::new(4096), PhysFrameNum::new(8192), 511, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(4100)), None);
    }

    #[test]
    fn huge_page_inside_larger_chunk() {
        let mut m = AddressSpaceMap::new();
        // 4 MB chunk aligned in both spaces: both 2 MB halves are huge pages.
        m.map_range(VirtPageNum::new(1024), PhysFrameNum::new(2048), 1024, rw());
        assert_eq!(m.huge_page_at(VirtPageNum::new(1024)), Some(VirtPageNum::new(1024)));
        assert_eq!(m.huge_page_at(VirtPageNum::new(1600)), Some(VirtPageNum::new(1536)));
    }

    #[test]
    fn page_index_covers_holes() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 3, rw());
        m.map_range(VirtPageNum::new(100), PhysFrameNum::new(50), 2, rw());
        let idx = m.page_index();
        assert_eq!(idx.len(), 5);
        assert!(!idx.is_empty());
        assert_eq!(idx.nth_page(0), VirtPageNum::new(10));
        assert_eq!(idx.nth_page(2), VirtPageNum::new(12));
        assert_eq!(idx.nth_page(3), VirtPageNum::new(100));
        assert_eq!(idx.nth_page(4), VirtPageNum::new(101));
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn page_index_rejects_out_of_range() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 1, rw());
        let _ = m.page_index().nth_page(1);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn page_index_rejects_far_out_of_range() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 8, rw());
        let _ = m.page_index().nth_page(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn empty_page_index_rejects_zero() {
        let _ = AddressSpaceMap::new().page_index().nth_page(0);
    }

    #[test]
    fn page_index_chunk_seam_boundaries() {
        // Chunks of different lengths, including a single-page one: the
        // exact first/last logical index of each chunk is where the
        // partition-point lookup changes cells.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(10), PhysFrameNum::new(0), 4, rw()); // logical 0..=3
        m.map_range(VirtPageNum::new(20), PhysFrameNum::new(100), 1, rw()); // logical 4
        m.map_range(VirtPageNum::new(30), PhysFrameNum::new(200), 3, rw()); // logical 5..=7
        let idx = m.page_index();
        assert_eq!(idx.len(), 8);
        assert_eq!(idx.nth_page(0), VirtPageNum::new(10)); // first page of first chunk
        assert_eq!(idx.nth_page(3), VirtPageNum::new(13)); // last page before a seam
        assert_eq!(idx.nth_page(4), VirtPageNum::new(20)); // the single-page chunk
        assert_eq!(idx.nth_page(5), VirtPageNum::new(30)); // first page after a seam
        assert_eq!(idx.nth_page(7), VirtPageNum::new(32)); // last valid index
    }

    #[test]
    fn page_index_matches_iter_pages_exhaustively() {
        // Seams produced by merging and unmapping, not just fresh ranges.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 6, rw());
        m.map_range(VirtPageNum::new(6), PhysFrameNum::new(106), 6, rw()); // merges
        m.unmap_range(VirtPageNum::new(4), 3); // splits the merged chunk
        m.map_range(VirtPageNum::new(40), PhysFrameNum::new(500), 2, rw());
        let idx = m.page_index();
        assert_eq!(idx.len(), m.mapped_pages());
        for (i, (vpn, _)) in m.iter_pages().enumerate() {
            assert_eq!(idx.nth_page(i as u64), vpn, "logical index {i}");
        }
    }

    #[test]
    fn iter_pages_matches_translate() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(3), PhysFrameNum::new(77), 3, rw());
        m.map_range(VirtPageNum::new(9), PhysFrameNum::new(11), 2, rw());
        let pages: Vec<_> = m.iter_pages().collect();
        assert_eq!(pages.len(), 5);
        for (v, p) in pages {
            assert_eq!(m.translate(v), Some(p));
        }
    }
}
