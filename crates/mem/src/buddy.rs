//! Binary buddy physical-frame allocator.
//!
//! Linux's page allocator is a binary buddy system; the contiguity that TLB
//! coalescing schemes exploit is a direct product of its behaviour (paper
//! §2.1: "there are some levels of contiguity in memory allocation as the
//! operating system uses a buddy algorithm"). The simulator therefore
//! reproduces a buddy allocator faithfully: power-of-two blocks, split on
//! allocation, eager merge with the buddy on free.

use hytlb_types::PhysFrameNum;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Largest supported block order. Order 16 blocks span 2^16 frames = 256 MB.
pub const MAX_ORDER: u32 = 16;

/// Errors reported by [`BuddyAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuddyError {
    /// The requested order exceeds [`MAX_ORDER`].
    OrderTooLarge {
        /// The order that was requested.
        requested: u32,
    },
    /// No free block of the requested order (or any larger order) exists.
    OutOfMemory {
        /// The order that could not be satisfied.
        order: u32,
    },
    /// `free` was called on a block that is not currently allocated with
    /// that base frame and order.
    InvalidFree {
        /// Base frame of the attempted free.
        base: PhysFrameNum,
        /// Order of the attempted free.
        order: u32,
    },
}

impl fmt::Display for BuddyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuddyError::OrderTooLarge { requested } => {
                write!(f, "requested order {requested} exceeds maximum {MAX_ORDER}")
            }
            BuddyError::OutOfMemory { order } => {
                write!(f, "no free block of order {order} or larger")
            }
            BuddyError::InvalidFree { base, order } => {
                write!(f, "block {base} of order {order} is not allocated")
            }
        }
    }
}

impl std::error::Error for BuddyError {}

/// A binary buddy allocator over a contiguous range of physical frames.
///
/// Free blocks of each order are kept in ordered sets so allocation is
/// deterministic (lowest address first), which keeps every experiment
/// reproducible from its seed.
///
/// # Examples
///
/// ```
/// use hytlb_mem::BuddyAllocator;
///
/// let mut buddy = BuddyAllocator::new(1024);
/// let block = buddy.allocate(4)?; // 16 contiguous frames
/// assert_eq!(buddy.free_frames(), 1024 - 16);
/// buddy.free(block, 4)?;
/// assert_eq!(buddy.free_frames(), 1024);
/// # Ok::<(), hytlb_mem::BuddyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    /// `free_lists[order]` holds the base frame numbers of free blocks.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated blocks: base frame → order. Used to validate frees and to
    /// audit the allocator in tests.
    allocated: HashMap<u64, u32>,
    total_frames: u64,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `total_frames` physical frames starting
    /// at frame 0. The range is carved into maximal power-of-two blocks, so
    /// any frame count is accepted.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    #[must_use]
    pub fn new(total_frames: u64) -> Self {
        assert!(total_frames > 0, "allocator must manage at least one frame");
        let mut a = BuddyAllocator {
            free_lists: vec![BTreeSet::new(); (MAX_ORDER + 1) as usize],
            allocated: HashMap::new(),
            total_frames,
            free_frames: total_frames,
        };
        // Greedily cover [0, total_frames) with aligned maximal blocks.
        let mut base = 0u64;
        while base < total_frames {
            let align_order =
                if base == 0 { MAX_ORDER } else { base.trailing_zeros().min(MAX_ORDER) };
            let mut order = align_order;
            while (1u64 << order) > total_frames - base {
                order -= 1;
            }
            a.free_lists[order as usize].insert(base);
            base += 1 << order;
        }
        a
    }

    /// Total number of frames managed.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Number of currently free frames.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        self.free_frames
    }

    /// Largest order with at least one free block, if any block is free.
    #[must_use]
    pub fn largest_free_order(&self) -> Option<u32> {
        (0..=MAX_ORDER).rev().find(|&o| !self.free_lists[o as usize].is_empty())
    }

    /// Allocates a block of `1 << order` contiguous, naturally-aligned
    /// frames, splitting larger blocks as needed.
    ///
    /// # Errors
    ///
    /// [`BuddyError::OrderTooLarge`] if `order > MAX_ORDER`;
    /// [`BuddyError::OutOfMemory`] if no block of that order can be carved.
    pub fn allocate(&mut self, order: u32) -> Result<PhysFrameNum, BuddyError> {
        if order > MAX_ORDER {
            return Err(BuddyError::OrderTooLarge { requested: order });
        }
        let from = (order..=MAX_ORDER)
            .find(|&o| !self.free_lists[o as usize].is_empty())
            .ok_or(BuddyError::OutOfMemory { order })?;
        let base = *self.free_lists[from as usize].iter().next().expect("nonempty");
        self.free_lists[from as usize].remove(&base);
        // Split down to the requested order, returning the upper halves.
        let mut cur = from;
        while cur > order {
            cur -= 1;
            self.free_lists[cur as usize].insert(base + (1 << cur));
        }
        self.allocated.insert(base, order);
        self.free_frames -= 1 << order;
        Ok(PhysFrameNum::new(base))
    }

    /// Frees a previously allocated block, eagerly merging with free buddies.
    ///
    /// # Errors
    ///
    /// [`BuddyError::InvalidFree`] if `(base, order)` does not name a live
    /// allocation.
    pub fn free(&mut self, base: PhysFrameNum, order: u32) -> Result<(), BuddyError> {
        let raw = base.as_u64();
        match self.allocated.get(&raw) {
            Some(&o) if o == order => {}
            _ => return Err(BuddyError::InvalidFree { base, order }),
        }
        self.allocated.remove(&raw);
        self.free_frames += 1 << order;
        let mut cur_base = raw;
        let mut cur_order = order;
        while cur_order < MAX_ORDER {
            let buddy = cur_base ^ (1u64 << cur_order);
            // Merging across the end of managed memory is impossible because
            // the initial carve is naturally aligned.
            if buddy + (1 << cur_order) > self.total_frames {
                break;
            }
            if !self.free_lists[cur_order as usize].remove(&buddy) {
                break;
            }
            cur_base = cur_base.min(buddy);
            cur_order += 1;
        }
        self.free_lists[cur_order as usize].insert(cur_base);
        Ok(())
    }

    /// Allocates exactly `pages` frames as a list of `(base, len)` runs,
    /// preferring the largest blocks available (this is how the paper's
    /// eager-paging kernel requests memory "through the buddy allocator
    /// system sequentially", §5.1).
    ///
    /// # Errors
    ///
    /// [`BuddyError::OutOfMemory`] if fewer than `pages` frames are free; any
    /// partial allocation is rolled back.
    pub fn allocate_run(&mut self, pages: u64) -> Result<Vec<(PhysFrameNum, u64)>, BuddyError> {
        let mut out: Vec<(PhysFrameNum, u64)> = Vec::new();
        let mut remaining = pages;
        'outer: while remaining > 0 {
            // Largest order that does not over-allocate; if unavailable,
            // fall back to progressively smaller blocks. Failing at order o
            // implies no block of order >= o exists (allocate splits), so
            // only smaller orders can still succeed.
            let mut order = remaining.ilog2().min(MAX_ORDER);
            loop {
                match self.allocate(order) {
                    Ok(base) => {
                        out.push((base, 1 << order));
                        remaining -= 1 << order;
                        continue 'outer;
                    }
                    Err(_) if order > 0 => order -= 1,
                    Err(_) => {
                        for (b, len) in out.drain(..) {
                            let o = len.trailing_zeros();
                            self.free(b, o).expect("rollback of fresh allocation");
                        }
                        return Err(BuddyError::OutOfMemory { order: 0 });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Number of free blocks currently on the free list of `order`.
    ///
    /// # Panics
    ///
    /// Panics if `order > MAX_ORDER`.
    #[must_use]
    pub fn free_blocks_of_order(&self, order: u32) -> usize {
        self.free_lists[order as usize].len()
    }

    /// A fragmentation score in `[0, 1]`: 0 when all free memory sits in
    /// maximal blocks, approaching 1 when it is shattered into single frames.
    ///
    /// Defined as `1 - usable_from_large / free`, where `usable_from_large`
    /// counts free frames in blocks of at least 2 MB (order 9) — the chunk
    /// size THP needs.
    #[must_use]
    pub fn fragmentation_score(&self) -> f64 {
        if self.free_frames == 0 {
            return 0.0;
        }
        let large: u64 =
            (9..=MAX_ORDER).map(|o| self.free_lists[o as usize].len() as u64 * (1u64 << o)).sum();
        1.0 - large as f64 / self.free_frames as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocator_is_fully_free() {
        let b = BuddyAllocator::new(1 << 10);
        assert_eq!(b.free_frames(), 1 << 10);
        assert_eq!(b.largest_free_order(), Some(10));
        assert_eq!(b.fragmentation_score(), 0.0);
    }

    #[test]
    fn non_power_of_two_total_is_carved_into_aligned_blocks() {
        let b = BuddyAllocator::new(1000);
        assert_eq!(b.free_frames(), 1000);
        // 1000 = 512 + 256 + 128 + 64 + 32 + 8
        assert_eq!(b.free_blocks_of_order(9), 1);
        assert_eq!(b.free_blocks_of_order(8), 1);
        assert_eq!(b.free_blocks_of_order(3), 1);
    }

    #[test]
    fn allocate_splits_and_free_merges() {
        let mut b = BuddyAllocator::new(16);
        let f0 = b.allocate(0).unwrap();
        assert_eq!(f0, PhysFrameNum::new(0));
        // Splitting 16 -> 8+4+2+1+1 leaves one free block each of orders 0..=3.
        for o in 0..=3 {
            assert_eq!(b.free_blocks_of_order(o), 1, "order {o}");
        }
        b.free(f0, 0).unwrap();
        assert_eq!(b.free_blocks_of_order(4), 1);
        assert_eq!(b.free_frames(), 16);
    }

    #[test]
    fn allocation_is_deterministic_lowest_address_first() {
        let mut b = BuddyAllocator::new(64);
        assert_eq!(b.allocate(0).unwrap().as_u64(), 0);
        assert_eq!(b.allocate(0).unwrap().as_u64(), 1);
        assert_eq!(b.allocate(2).unwrap().as_u64(), 4);
    }

    #[test]
    fn out_of_memory_and_bad_order() {
        let mut b = BuddyAllocator::new(4);
        assert!(matches!(b.allocate(3), Err(BuddyError::OutOfMemory { .. })));
        assert!(matches!(b.allocate(MAX_ORDER + 1), Err(BuddyError::OrderTooLarge { .. })));
    }

    #[test]
    fn invalid_free_is_rejected() {
        let mut b = BuddyAllocator::new(16);
        let f = b.allocate(1).unwrap();
        assert!(matches!(b.free(f, 2), Err(BuddyError::InvalidFree { .. })));
        assert!(b.free(PhysFrameNum::new(99), 0).is_err());
        b.free(f, 1).unwrap();
        // Double free.
        assert!(b.free(f, 1).is_err());
    }

    #[test]
    fn allocate_run_prefers_large_blocks() {
        let mut b = BuddyAllocator::new(1 << 12);
        let runs = b.allocate_run(1000).unwrap();
        let total: u64 = runs.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 1000);
        // Largest-first: first run must be the 512-frame block.
        assert_eq!(runs[0].1, 512);
        assert!(runs.iter().all(|&(_, l)| l.is_power_of_two()));
    }

    #[test]
    fn allocate_run_rolls_back_on_failure() {
        let mut b = BuddyAllocator::new(64);
        let before = b.free_frames();
        assert!(b.allocate_run(100).is_err());
        assert_eq!(b.free_frames(), before);
    }

    #[test]
    fn fragmentation_score_rises_with_scattered_allocs() {
        let mut b = BuddyAllocator::new(1 << 12);
        // Claim all memory as 4-frame blocks, then free every other block,
        // so every free frame sits in a sub-2MB hole.
        let mut held = Vec::new();
        while let Ok(f) = b.allocate(2) {
            held.push(f);
        }
        for (i, f) in held.iter().enumerate() {
            if i % 2 == 0 {
                b.free(*f, 2).unwrap();
            }
        }
        assert!(b.fragmentation_score() > 0.9);
    }

    #[test]
    fn exhaustive_alloc_free_cycle_restores_state() {
        let mut b = BuddyAllocator::new(256);
        let mut blocks = Vec::new();
        while let Ok(f) = b.allocate(1) {
            blocks.push(f);
        }
        assert_eq!(b.free_frames(), 0);
        for f in blocks {
            b.free(f, 1).unwrap();
        }
        assert_eq!(b.free_frames(), 256);
        assert_eq!(b.free_blocks_of_order(8), 1);
    }
}
