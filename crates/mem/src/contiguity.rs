//! Contiguity histograms and CDFs.
//!
//! Paper §4.1: "the OS maintains a histogram of contiguity distribution. The
//! contiguity histogram holds how many contiguous memory chunks of varying
//! contiguity are allocated to the process." This histogram is the sole
//! input to the dynamic anchor-distance selection algorithm (Algorithm 1),
//! and its CDF view is what Figure 1 plots.

use crate::AddressSpaceMap;
use std::collections::BTreeMap;
use std::fmt;

/// Histogram of contiguous-chunk sizes: `contiguity (pages) → frequency`.
///
/// # Examples
///
/// ```
/// use hytlb_mem::{AddressSpaceMap, ContiguityHistogram};
/// use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut map = AddressSpaceMap::new();
/// map.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 8, Permissions::READ_WRITE);
/// map.map_range(VirtPageNum::new(8), PhysFrameNum::new(100), 8, Permissions::READ_WRITE);
/// let hist = ContiguityHistogram::from_map(&map);
/// assert_eq!(hist.frequency(8), 2);
/// assert_eq!(hist.total_pages(), 16);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ContiguityHistogram {
    entries: BTreeMap<u64, u64>,
}

impl ContiguityHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the histogram of an address-space map's maximal chunks.
    #[must_use]
    pub fn from_map(map: &AddressSpaceMap) -> Self {
        let mut h = Self::new();
        for c in map.chunks() {
            h.record(c.len, 1);
        }
        h
    }

    /// Records `freq` additional chunks of `contiguity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `contiguity` is zero — a zero-length chunk cannot exist.
    pub fn record(&mut self, contiguity: u64, freq: u64) {
        assert!(contiguity > 0, "chunks have at least one page");
        if freq > 0 {
            *self.entries.entry(contiguity).or_insert(0) += freq;
        }
    }

    /// Number of chunks of exactly `contiguity` pages.
    #[must_use]
    pub fn frequency(&self, contiguity: u64) -> u64 {
        self.entries.get(&contiguity).copied().unwrap_or(0)
    }

    /// Iterates `(contiguity, frequency)` pairs in ascending contiguity.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&c, &f)| (c, f))
    }

    /// Total number of chunks.
    #[must_use]
    pub fn total_chunks(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Total number of pages across all chunks.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.entries.iter().map(|(&c, &f)| c * f).sum()
    }

    /// Largest chunk size present, or 0 for an empty histogram.
    #[must_use]
    pub fn max_contiguity(&self) -> u64 {
        self.entries.keys().next_back().copied().unwrap_or(0)
    }

    /// `true` when no chunks have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ContiguityHistogram) {
        for (c, f) in other.iter() {
            self.record(c, f);
        }
    }

    /// Cumulative distribution of *memory* (pages) over chunk sizes, as
    /// plotted in Figure 1: `cdf(s)` is the fraction of mapped pages that
    /// reside in chunks of at most `s` pages.
    ///
    /// Returns `(chunk_size, cumulative_fraction)` points in ascending
    /// chunk-size order; empty for an empty histogram.
    #[must_use]
    pub fn page_weighted_cdf(&self) -> Vec<(u64, f64)> {
        let total = self.total_pages();
        if total == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.entries
            .iter()
            .map(|(&c, &f)| {
                acc += c * f;
                (c, acc as f64 / total as f64)
            })
            .collect()
    }

    /// Fraction of mapped pages residing in chunks of at most `size` pages.
    /// Returns 0.0 for an empty histogram.
    #[must_use]
    pub fn fraction_in_chunks_up_to(&self, size: u64) -> f64 {
        let total = self.total_pages();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = self.entries.range(..=size).map(|(&c, &f)| c * f).sum();
        covered as f64 / total as f64
    }

    /// Mean chunk size in pages (0.0 when empty).
    #[must_use]
    pub fn mean_contiguity(&self) -> f64 {
        let chunks = self.total_chunks();
        if chunks == 0 {
            0.0
        } else {
            self.total_pages() as f64 / chunks as f64
        }
    }
}

impl fmt::Display for ContiguityHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} chunks / {} pages (mean {:.1} pages/chunk)",
            self.total_chunks(),
            self.total_pages(),
            self.mean_contiguity()
        )?;
        for (c, freq) in self.iter() {
            writeln!(f, "  {c:>8} pages x {freq}")?;
        }
        Ok(())
    }
}

impl FromIterator<(u64, u64)> for ContiguityHistogram {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut h = Self::new();
        for (c, f) in iter {
            h.record(c, f);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};

    fn hist(pairs: &[(u64, u64)]) -> ContiguityHistogram {
        pairs.iter().copied().collect()
    }

    #[test]
    fn empty_histogram() {
        let h = ContiguityHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.total_pages(), 0);
        assert_eq!(h.max_contiguity(), 0);
        assert_eq!(h.mean_contiguity(), 0.0);
        assert!(h.page_weighted_cdf().is_empty());
        assert_eq!(h.fraction_in_chunks_up_to(100), 0.0);
    }

    #[test]
    fn record_and_query() {
        let h = hist(&[(4, 10), (512, 2)]);
        assert_eq!(h.frequency(4), 10);
        assert_eq!(h.frequency(512), 2);
        assert_eq!(h.frequency(8), 0);
        assert_eq!(h.total_chunks(), 12);
        assert_eq!(h.total_pages(), 40 + 1024);
        assert_eq!(h.max_contiguity(), 512);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_contiguity_rejected() {
        ContiguityHistogram::new().record(0, 1);
    }

    #[test]
    fn zero_frequency_is_ignored() {
        let mut h = ContiguityHistogram::new();
        h.record(8, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = hist(&[(1, 100), (16, 10), (512, 1)]);
        let cdf = h.page_weighted_cdf();
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // 100 pages of 772 total are in 1-page chunks.
        assert!((h.fraction_in_chunks_up_to(1) - 100.0 / 772.0).abs() < 1e-12);
        assert_eq!(h.fraction_in_chunks_up_to(1024), 1.0);
    }

    #[test]
    fn from_map_counts_maximal_chunks() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), 8, Permissions::READ_WRITE);
        m.map_range(VirtPageNum::new(100), PhysFrameNum::new(500), 8, Permissions::READ_WRITE);
        m.map_range(VirtPageNum::new(200), PhysFrameNum::new(900), 3, Permissions::READ_WRITE);
        let h = ContiguityHistogram::from_map(&m);
        assert_eq!(h.frequency(8), 2);
        assert_eq!(h.frequency(3), 1);
        assert_eq!(h.total_pages(), m.mapped_pages());
    }

    #[test]
    fn merge_adds_frequencies() {
        let mut a = hist(&[(4, 1)]);
        let b = hist(&[(4, 2), (8, 1)]);
        a.merge(&b);
        assert_eq!(a.frequency(4), 3);
        assert_eq!(a.frequency(8), 1);
    }

    #[test]
    fn mean_contiguity() {
        let h = hist(&[(2, 2), (6, 2)]);
        assert!((h.mean_contiguity() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn display_contains_summary() {
        let h = hist(&[(4, 2)]);
        let s = h.to_string();
        assert!(s.contains("2 chunks"));
        assert!(s.contains("8 pages"));
    }
}
