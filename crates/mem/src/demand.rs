//! First-touch demand pager with transparent-huge-page promotion.
//!
//! Models the paper's "vanilla Linux 3.18.29 machine, which uses demand
//! paging ... Linux transparent huge page support was enabled" (§5.1).
//! Pages are allocated only when first touched; on the first touch of an
//! entirely-unmapped 2 MB virtual region the pager attempts an order-9 buddy
//! allocation and, if one is available, installs a full huge-page-shaped
//! mapping, exactly like THP's fault-time huge allocation.

use crate::{AddressSpaceMap, BuddyAllocator};
use hytlb_types::{Permissions, VirtPageNum, HUGE_PAGE_PAGES};

/// Outcome of a [`DemandPager::touch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The page was already mapped; no fault.
    AlreadyMapped,
    /// A minor fault mapped one 4 KB page.
    FaultedBase,
    /// A minor fault mapped a whole 2 MB region THP-style.
    FaultedHuge,
    /// The fault could not be served: physical memory is exhausted.
    OutOfMemory,
}

/// An online first-touch pager.
///
/// # Examples
///
/// ```
/// use hytlb_mem::{BuddyAllocator, DemandPager};
/// use hytlb_types::VirtPageNum;
///
/// let buddy = BuddyAllocator::new(1 << 12);
/// let mut pager = DemandPager::new(buddy, true);
/// pager.touch(VirtPageNum::new(0));
/// // THP mapped the whole first 2 MB region on one touch.
/// assert_eq!(pager.map().mapped_pages(), 512);
/// ```
#[derive(Debug)]
pub struct DemandPager {
    buddy: BuddyAllocator,
    map: AddressSpaceMap,
    thp_enabled: bool,
    faults: u64,
    huge_faults: u64,
}

impl DemandPager {
    /// Creates a pager over the given allocator. When `thp_enabled`, first
    /// touches of fully-unmapped 2 MB regions try huge allocations first.
    #[must_use]
    pub fn new(buddy: BuddyAllocator, thp_enabled: bool) -> Self {
        DemandPager { buddy, map: AddressSpaceMap::new(), thp_enabled, faults: 0, huge_faults: 0 }
    }

    /// The mapping built so far.
    #[must_use]
    pub fn map(&self) -> &AddressSpaceMap {
        &self.map
    }

    /// Consumes the pager, returning the final mapping.
    #[must_use]
    pub fn into_map(self) -> AddressSpaceMap {
        self.map
    }

    /// Total minor faults served.
    #[must_use]
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Faults served with a 2 MB THP allocation.
    #[must_use]
    pub fn huge_fault_count(&self) -> u64 {
        self.huge_faults
    }

    /// Remaining free physical frames.
    #[must_use]
    pub fn free_frames(&self) -> u64 {
        self.buddy.free_frames()
    }

    /// Touches `vpn`, faulting a mapping in if necessary. The page is
    /// assumed to belong to an unbounded VMA (THP may map the whole 2 MB
    /// region around it).
    pub fn touch(&mut self, vpn: VirtPageNum) -> TouchOutcome {
        self.touch_in_vma(vpn, VirtPageNum::new(0), u64::MAX)
    }

    /// Touches `vpn` inside the VMA `[vma_start, vma_start + vma_len)`.
    /// Like Linux, THP maps a whole 2 MB region only when that region lies
    /// entirely within the VMA — faults in small VMAs always get 4 KB
    /// pages, which is why fine-grained allocators see little THP benefit.
    pub fn touch_in_vma(
        &mut self,
        vpn: VirtPageNum,
        vma_start: VirtPageNum,
        vma_len: u64,
    ) -> TouchOutcome {
        if self.map.translate(vpn).is_some() {
            return TouchOutcome::AlreadyMapped;
        }
        self.faults += 1;
        if self.thp_enabled {
            let head = vpn.align_down(HUGE_PAGE_PAGES);
            let inside_vma = vma_len == u64::MAX
                || (head >= vma_start && (head - vma_start) + HUGE_PAGE_PAGES <= vma_len);
            if inside_vma && !self.map.overlaps(head, HUGE_PAGE_PAGES) {
                if let Ok(base) = self.buddy.allocate(9) {
                    self.map.map_range(head, base, HUGE_PAGE_PAGES, Permissions::READ_WRITE);
                    self.huge_faults += 1;
                    return TouchOutcome::FaultedHuge;
                }
            }
        }
        match self.buddy.allocate(0) {
            Ok(frame) => {
                self.map.map_range(vpn, frame, 1, Permissions::READ_WRITE);
                TouchOutcome::FaultedBase
            }
            Err(_) => {
                self.faults -= 1;
                TouchOutcome::OutOfMemory
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_maps_once() {
        let mut p = DemandPager::new(BuddyAllocator::new(1 << 12), false);
        assert_eq!(p.touch(VirtPageNum::new(7)), TouchOutcome::FaultedBase);
        assert_eq!(p.touch(VirtPageNum::new(7)), TouchOutcome::AlreadyMapped);
        assert_eq!(p.fault_count(), 1);
        assert_eq!(p.map().mapped_pages(), 1);
    }

    #[test]
    fn thp_promotes_whole_region() {
        let mut p = DemandPager::new(BuddyAllocator::new(1 << 12), true);
        assert_eq!(p.touch(VirtPageNum::new(100)), TouchOutcome::FaultedHuge);
        assert_eq!(p.map().mapped_pages(), 512);
        assert_eq!(p.huge_fault_count(), 1);
        // The mapping is a genuine huge page (aligned in both spaces).
        assert!(p.map().huge_page_at(VirtPageNum::new(100)).is_some());
    }

    #[test]
    fn thp_falls_back_to_base_pages_when_no_huge_block() {
        let mut buddy = BuddyAllocator::new(1 << 12);
        // Exhaust all order-9 capability by fragmenting: allocate everything
        // as order-0 and free every other frame.
        let mut frames = Vec::new();
        while let Ok(f) = buddy.allocate(0) {
            frames.push(f);
        }
        for (i, f) in frames.iter().enumerate() {
            if i % 2 == 0 {
                buddy.free(*f, 0).unwrap();
            }
        }
        let mut p = DemandPager::new(buddy, true);
        assert_eq!(p.touch(VirtPageNum::new(0)), TouchOutcome::FaultedBase);
        assert_eq!(p.map().mapped_pages(), 1);
    }

    #[test]
    fn partial_region_blocks_thp() {
        let mut p = DemandPager::new(BuddyAllocator::new(1 << 12), true);
        // Disable THP for the first touch by touching with THP off.
        p.thp_enabled = false;
        p.touch(VirtPageNum::new(5));
        p.thp_enabled = true;
        // Region already partially mapped: must fall back to a base page.
        assert_eq!(p.touch(VirtPageNum::new(6)), TouchOutcome::FaultedBase);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut p = DemandPager::new(BuddyAllocator::new(2), false);
        assert_eq!(p.touch(VirtPageNum::new(0)), TouchOutcome::FaultedBase);
        assert_eq!(p.touch(VirtPageNum::new(1)), TouchOutcome::FaultedBase);
        assert_eq!(p.touch(VirtPageNum::new(2)), TouchOutcome::OutOfMemory);
        assert_eq!(p.fault_count(), 2);
    }

    #[test]
    fn sequential_touches_yield_contiguity_without_thp() {
        let mut p = DemandPager::new(BuddyAllocator::new(1 << 12), false);
        for i in 0..64 {
            p.touch(VirtPageNum::new(i));
        }
        // A pristine buddy hands out ascending frames, so the map merges
        // into a single chunk.
        assert_eq!(p.map().chunk_count(), 1);
    }
}
