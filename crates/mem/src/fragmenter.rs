//! Fragmentation pressure driver.
//!
//! §2.3 of the paper varies memory-mapping contiguity by running an
//! application "alone or with randomly executing background jobs chosen from
//! PARSEC". [`Fragmenter`] reproduces that effect on a [`BuddyAllocator`]:
//! it plays the role of the background jobs by claiming blocks of varied
//! sizes and releasing a random subset, leaving the free space shattered.

use crate::{BuddyAllocator, MAX_ORDER};
use hytlb_types::PhysFrameNum;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Preset intensities of background allocation pressure.
///
/// Each level controls what fraction of free memory the background jobs
/// claim and what fraction of their blocks they keep holding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FragmentationLevel {
    /// No background jobs; memory stays pristine.
    None,
    /// A couple of small co-runners.
    Light,
    /// The memory-pressure regime of the paper's multi-socket experiments.
    Moderate,
    /// Heavy churn: most large blocks are broken up.
    Heavy,
}

impl FragmentationLevel {
    /// `(fill_fraction, hold_fraction, max_block_order)` parameters.
    fn params(self) -> (f64, f64, u32) {
        match self {
            FragmentationLevel::None => (0.0, 0.0, 0),
            FragmentationLevel::Light => (0.35, 0.25, 7),
            FragmentationLevel::Moderate => (0.65, 0.40, 6),
            FragmentationLevel::Heavy => (0.90, 0.55, 4),
        }
    }

    /// All levels, in increasing severity. Useful for sweeps (Figure 1).
    #[must_use]
    pub fn all() -> [FragmentationLevel; 4] {
        [
            FragmentationLevel::None,
            FragmentationLevel::Light,
            FragmentationLevel::Moderate,
            FragmentationLevel::Heavy,
        ]
    }
}

/// Applies background-job allocation pressure to a buddy allocator.
///
/// The fragmenter retains ownership of the blocks its "jobs" keep, so the
/// pressure persists while the foreground process allocates; dropping the
/// pressure is an explicit [`Fragmenter::release_all`].
///
/// # Examples
///
/// ```
/// use hytlb_mem::{BuddyAllocator, Fragmenter, FragmentationLevel};
///
/// let mut buddy = BuddyAllocator::new(1 << 14);
/// let mut frag = Fragmenter::new(42);
/// frag.shatter(&mut buddy, FragmentationLevel::Heavy);
/// assert!(buddy.fragmentation_score() > 0.2);
/// frag.release_all(&mut buddy);
/// assert_eq!(buddy.free_frames(), 1 << 14);
/// ```
#[derive(Debug)]
pub struct Fragmenter {
    rng: SmallRng,
    held: Vec<(PhysFrameNum, u32)>,
}

impl Fragmenter {
    /// Creates a fragmenter with a deterministic seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Fragmenter { rng: SmallRng::seed_from_u64(seed), held: Vec::new() }
    }

    /// Number of blocks currently held by the simulated background jobs.
    #[must_use]
    pub fn held_blocks(&self) -> usize {
        self.held.len()
    }

    /// Claims and partially releases memory to reach the given pressure
    /// level. May be called repeatedly (pressure accumulates).
    pub fn shatter(&mut self, buddy: &mut BuddyAllocator, level: FragmentationLevel) {
        let (fill, hold, max_order) = level.params();
        if fill == 0.0 {
            return;
        }
        let target_fill = (buddy.free_frames() as f64 * fill) as u64;
        let mut claimed = 0u64;
        let mut batch: Vec<(PhysFrameNum, u32)> = Vec::new();
        while claimed < target_fill {
            let order = self.rng.gen_range(0..=max_order.min(MAX_ORDER));
            match buddy.allocate(order) {
                Ok(base) => {
                    claimed += 1 << order;
                    batch.push((base, order));
                }
                // The requested size ran out; retry smaller via the loop.
                Err(_) if order > 0 => continue,
                Err(_) => break,
            }
        }
        // Background jobs exit in random order, freeing (1 - hold) of what
        // they took; the survivors pin fragmentation in place.
        for (base, order) in batch {
            if self.rng.gen_bool(1.0 - hold) {
                buddy.free(base, order).expect("freeing a just-claimed block");
            } else {
                self.held.push((base, order));
            }
        }
    }

    /// Releases every held block back to the allocator.
    pub fn release_all(&mut self, buddy: &mut BuddyAllocator) {
        for (base, order) in self.held.drain(..) {
            buddy.free(base, order).expect("held block is live");
        }
    }

    /// Releases a single held block (one background job exiting), returning
    /// `false` when nothing was held. Releasing one at a time lets callers
    /// relieve just enough pressure without restoring full contiguity.
    pub fn release_one(&mut self, buddy: &mut BuddyAllocator) -> bool {
        match self.held.pop() {
            Some((base, order)) => {
                buddy.free(base, order).expect("held block is live");
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_level_is_noop() {
        let mut b = BuddyAllocator::new(1 << 12);
        let mut f = Fragmenter::new(1);
        f.shatter(&mut b, FragmentationLevel::None);
        assert_eq!(b.free_frames(), 1 << 12);
        assert_eq!(f.held_blocks(), 0);
    }

    #[test]
    fn severity_ordering_holds_on_average() {
        let score = |level| {
            let mut b = BuddyAllocator::new(1 << 14);
            let mut f = Fragmenter::new(7);
            f.shatter(&mut b, level);
            b.fragmentation_score()
        };
        let light = score(FragmentationLevel::Light);
        let heavy = score(FragmentationLevel::Heavy);
        assert!(heavy > light, "heavy {heavy} should exceed light {light}");
    }

    #[test]
    fn shatter_is_deterministic_per_seed() {
        let run = |seed| {
            let mut b = BuddyAllocator::new(1 << 13);
            let mut f = Fragmenter::new(seed);
            f.shatter(&mut b, FragmentationLevel::Moderate);
            (b.free_frames(), f.held_blocks())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn release_all_restores_memory() {
        let mut b = BuddyAllocator::new(1 << 12);
        let mut f = Fragmenter::new(9);
        f.shatter(&mut b, FragmentationLevel::Heavy);
        assert!(b.free_frames() < 1 << 12);
        f.release_all(&mut b);
        assert_eq!(b.free_frames(), 1 << 12);
        assert_eq!(f.held_blocks(), 0);
    }

    #[test]
    fn heavy_pressure_starves_huge_blocks() {
        let mut b = BuddyAllocator::new(1 << 14);
        let mut f = Fragmenter::new(11);
        f.shatter(&mut b, FragmentationLevel::Heavy);
        // After heavy churn, far fewer order-9 (2 MB) blocks remain than the
        // pristine allocator's 32.
        let huge_frames: u64 =
            (9..=MAX_ORDER).map(|o| b.free_blocks_of_order(o) as u64 * (1 << o)).sum();
        assert!(huge_frames < (1 << 14) / 2);
    }
}
