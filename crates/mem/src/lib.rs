//! Physical-memory and OS-allocation substrate for the `hytlb` simulator.
//!
//! The paper's evaluation depends on *memory mappings with controlled
//! contiguity*: two captured from real Linux machines (demand paging with
//! transparent huge pages, and eager paging) and four synthetic scenarios
//! (Table 4). This crate builds everything needed to produce such mappings
//! from scratch:
//!
//! * [`BuddyAllocator`] — a binary buddy physical-frame allocator, the same
//!   family of allocator Linux uses, so allocation contiguity emerges the
//!   same way it does on a real system.
//! * [`Fragmenter`] — applies "background job" allocation pressure to an
//!   allocator, reproducing the fragmentation diversity of Figure 1.
//! * [`AddressSpaceMap`] — a process's virtual→physical mapping stored as
//!   maximally-merged contiguous chunks.
//! * [`ContiguityHistogram`] — the (contiguity, frequency) histogram the OS
//!   feeds to the anchor-distance selection algorithm (paper §4.1), plus the
//!   CDF view used by Figure 1.
//! * [`Scenario`] — generators for all six mapping scenarios of §5.1.
//! * [`DemandPager`] — an online first-touch pager (with THP promotion) used
//!   by the simulation engine when the mapping must grow *during* a run.
//!
//! # Examples
//!
//! ```
//! use hytlb_mem::{Scenario, ContiguityHistogram};
//!
//! let map = Scenario::MediumContiguity.generate(4096, 1);
//! assert_eq!(map.mapped_pages(), 4096);
//! let hist = ContiguityHistogram::from_map(&map);
//! // Table 4: medium contiguity draws chunks uniformly from 1..=512 pages.
//! assert!(hist.max_contiguity() <= 512);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr_space;
mod buddy;
mod contiguity;
mod demand;
mod fragmenter;
mod numa;
mod scenario;

pub use addr_space::{AddressSpaceMap, ChunkCursor, MapChunk, PageCursor, PageIndex};
pub use buddy::{BuddyAllocator, BuddyError, MAX_ORDER};
pub use contiguity::ContiguityHistogram;
pub use demand::DemandPager;
pub use fragmenter::{FragmentationLevel, Fragmenter};
pub use numa::{NumaPolicy, NumaTopology};
pub use scenario::{AllocationProfile, Scenario};
