//! NUMA memory topology — the paper's §2.2 motivation substrate.
//!
//! The paper's argument for hybrid coalescing starts from memory
//! non-uniformity: on multi-socket NUMA boxes (and future HMC/NVM tiers),
//! the OS must place pages on specific nodes for locality, which conflicts
//! with allocating large contiguous chunks — "such memory heterogeneity
//! requires fine-grained memory mapping" (§2.2). This module models a
//! multi-node physical memory: one buddy allocator per node, node-aware
//! placement policies, and mapping generation that shows exactly how
//! interleaved placement shatters contiguity while preserving locality.

use crate::{AddressSpaceMap, BuddyAllocator, BuddyError, FragmentationLevel, Fragmenter};
use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};

/// How pages are placed across NUMA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NumaPolicy {
    /// All pages on one node (best contiguity; worst balance — remote
    /// threads pay the penalty the paper's §2.2 citations measure).
    LocalOnly {
        /// The node everything lands on.
        node: usize,
    },
    /// Round-robin chunks of `granularity_pages` across all nodes — the
    /// fine-grained placement heterogeneous memory needs. Contiguity is
    /// capped at the granularity.
    Interleave {
        /// Pages placed on one node before moving to the next.
        granularity_pages: u64,
    },
}

/// A multi-node physical memory.
///
/// # Examples
///
/// ```
/// use hytlb_mem::{NumaPolicy, NumaTopology};
///
/// let mut numa = NumaTopology::new(4, 1 << 14);
/// let map = numa
///     .allocate_map(4096, NumaPolicy::Interleave { granularity_pages: 16 })
///     .expect("capacity");
/// assert_eq!(map.mapped_pages(), 4096);
/// // Interleaving caps every chunk at the granularity.
/// assert!(map.chunks().all(|c| c.len <= 16));
/// ```
#[derive(Debug)]
pub struct NumaTopology {
    nodes: Vec<BuddyAllocator>,
    /// Physical frame offset of each node (nodes occupy disjoint frame
    /// ranges, like physical address ranges on a real machine).
    bases: Vec<u64>,
}

impl NumaTopology {
    /// Creates `nodes` nodes of `frames_per_node` frames each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `frames_per_node` is zero.
    #[must_use]
    pub fn new(nodes: usize, frames_per_node: u64) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(frames_per_node > 0, "nodes need capacity");
        NumaTopology {
            nodes: (0..nodes).map(|_| BuddyAllocator::new(frames_per_node)).collect(),
            bases: (0..nodes as u64).map(|i| i * frames_per_node).collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Free frames on a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn free_frames(&self, node: usize) -> u64 {
        self.nodes[node].free_frames()
    }

    /// The node owning physical frame `pfn`, if any.
    #[must_use]
    pub fn node_of(&self, pfn: PhysFrameNum) -> Option<usize> {
        let per_node = self.nodes.first().map(BuddyAllocator::total_frames)?;
        let node = hytlb_types::usize_from(pfn.as_u64() / per_node);
        (node < self.nodes.len()).then_some(node)
    }

    /// Applies background fragmentation pressure to every node.
    pub fn shatter_all(&mut self, level: FragmentationLevel, seed: u64) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let mut frag = Fragmenter::new(seed.wrapping_add(i as u64));
            frag.shatter(node, level);
            // Background jobs keep running; the pressure stays (the
            // fragmenter's held blocks leak into the node deliberately —
            // topology-lifetime pressure, like co-runners that never exit).
            std::mem::forget(frag);
        }
    }

    /// Allocates `pages` for one process under `policy`, building its map.
    ///
    /// # Errors
    ///
    /// [`BuddyError::OutOfMemory`] when a node required by the policy is
    /// exhausted.
    pub fn allocate_map(
        &mut self,
        pages: u64,
        policy: NumaPolicy,
    ) -> Result<AddressSpaceMap, BuddyError> {
        let mut map = AddressSpaceMap::new();
        let mut vpn = VirtPageNum::new(crate::scenario::VA_BASE);
        match policy {
            NumaPolicy::LocalOnly { node } => {
                assert!(node < self.nodes.len(), "node {node} out of range");
                let base = self.bases[node];
                let runs = self.nodes[node].allocate_run(pages)?;
                for (pfn, len) in runs {
                    map.map_range(
                        vpn,
                        PhysFrameNum::new(base + pfn.as_u64()),
                        len,
                        Permissions::READ_WRITE,
                    );
                    vpn += len;
                }
            }
            NumaPolicy::Interleave { granularity_pages } => {
                assert!(granularity_pages > 0, "granularity must be positive");
                let mut remaining = pages;
                let mut node = 0usize;
                while remaining > 0 {
                    let want = granularity_pages.min(remaining);
                    let base = self.bases[node];
                    let runs = self.nodes[node].allocate_run(want)?;
                    for (pfn, len) in runs {
                        map.map_range(
                            vpn,
                            PhysFrameNum::new(base + pfn.as_u64()),
                            len,
                            Permissions::READ_WRITE,
                        );
                        vpn += len;
                    }
                    remaining -= want;
                    node = (node + 1) % self.nodes.len();
                }
            }
        }
        Ok(map)
    }

    /// Fraction of a map's pages on each node — the balance metric NUMA
    /// placement optimizes.
    #[must_use]
    pub fn node_shares(&self, map: &AddressSpaceMap) -> Vec<f64> {
        let mut counts = vec![0u64; self.nodes.len()];
        for (_, pfn) in map.iter_pages() {
            if let Some(n) = self.node_of(pfn) {
                counts[n] += 1;
            }
        }
        let total = map.mapped_pages().max(1);
        counts.into_iter().map(|c| c as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContiguityHistogram;

    #[test]
    fn local_policy_maximizes_contiguity_on_one_node() {
        let mut numa = NumaTopology::new(2, 1 << 13);
        let map = numa.allocate_map(2048, NumaPolicy::LocalOnly { node: 1 }).unwrap();
        assert_eq!(map.mapped_pages(), 2048);
        let shares = numa.node_shares(&map);
        assert_eq!(shares[0], 0.0);
        assert!((shares[1] - 1.0).abs() < 1e-12);
        // Fresh node: the whole footprint comes out as one chunk.
        assert_eq!(map.chunk_count(), 1);
    }

    #[test]
    fn interleave_balances_but_shatters() {
        let mut numa = NumaTopology::new(4, 1 << 13);
        let map =
            numa.allocate_map(4096, NumaPolicy::Interleave { granularity_pages: 32 }).unwrap();
        let shares = numa.node_shares(&map);
        for s in &shares {
            assert!((s - 0.25).abs() < 0.05, "{shares:?}");
        }
        let hist = ContiguityHistogram::from_map(&map);
        assert!(hist.max_contiguity() <= 32);
        // The §2.2 tension: perfect balance, 128x less contiguity than
        // the local policy's single chunk.
        assert!(map.chunk_count() >= 128);
    }

    #[test]
    fn fragmentation_pressure_compounds_with_interleaving() {
        let mut calm = NumaTopology::new(2, 1 << 14);
        let calm_map =
            calm.allocate_map(4096, NumaPolicy::Interleave { granularity_pages: 512 }).unwrap();
        let mut stressed = NumaTopology::new(2, 1 << 14);
        stressed.shatter_all(FragmentationLevel::Heavy, 9);
        let stressed_map =
            stressed.allocate_map(4096, NumaPolicy::Interleave { granularity_pages: 512 }).unwrap();
        let a = ContiguityHistogram::from_map(&calm_map).mean_contiguity();
        let b = ContiguityHistogram::from_map(&stressed_map).mean_contiguity();
        assert!(b < a, "pressure must reduce contiguity: {b} vs {a}");
    }

    #[test]
    fn out_of_memory_is_an_error_not_a_panic() {
        let mut numa = NumaTopology::new(2, 64);
        let r = numa.allocate_map(1024, NumaPolicy::LocalOnly { node: 0 });
        assert!(r.is_err());
    }

    #[test]
    fn node_of_maps_frames_to_nodes() {
        let numa = NumaTopology::new(2, 1000);
        assert_eq!(numa.node_of(PhysFrameNum::new(0)), Some(0));
        assert_eq!(numa.node_of(PhysFrameNum::new(999)), Some(0));
        assert_eq!(numa.node_of(PhysFrameNum::new(1000)), Some(1));
        assert_eq!(numa.node_of(PhysFrameNum::new(2000)), None);
    }
}
