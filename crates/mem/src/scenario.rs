//! The six mapping scenarios of the paper's evaluation (§5.1, Table 4).
//!
//! Two "real" mappings are produced by running the OS model (buddy
//! allocator plus fragmentation pressure and demand/eager paging); four
//! synthetic mappings draw chunk sizes from the uniform ranges of Table 4:
//!
//! | scenario           | contiguity                        |
//! |--------------------|-----------------------------------|
//! | low contiguity     | 1 – 16 pages (4 KB – 64 KB)       |
//! | medium contiguity  | 1 – 512 pages (4 KB – 2 MB)       |
//! | high contiguity    | 512 – 65 536 pages (2 MB – 256 MB)|
//! | max contiguity     | maximum (fully contiguous regions)|

use crate::{AddressSpaceMap, BuddyAllocator, DemandPager, FragmentationLevel, Fragmenter};
use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum, HUGE_PAGE_PAGES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Virtual page number where generated mappings begin. 2 MB-aligned so THP
/// regions line up exactly as on a real system.
pub(crate) const VA_BASE: u64 = 0x0000_7f40_0000_0000 >> 12;

/// How an application asks the OS for memory: the sizes of its VMAs.
///
/// The paper's real mappings differ strongly per application: `omnetpp` and
/// `xalancbmk` allocate many small objects and "do not exhibit large chunk
/// contiguity" even with THP on, while `gups`/`graph500`/`mcf` back their
/// footprint with a few giant allocations. The profile bounds the VMA sizes
/// the demand/eager OS models create; THP can only map 2 MB regions that
/// fit inside one VMA, so fine-grained profiles naturally suppress huge
/// pages and cap contiguity — exactly the per-application diversity of the
/// paper's Table 6 demand/eager columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct AllocationProfile {
    max_unit_pages: u64,
}

impl AllocationProfile {
    /// A few giant allocations (arrays, big heaps): VMAs as large as the
    /// footprint allows.
    #[must_use]
    pub fn contiguous() -> Self {
        AllocationProfile { max_unit_pages: u64::MAX }
    }

    /// Allocations of at most `max_unit_pages` pages each.
    ///
    /// # Panics
    ///
    /// Panics if `max_unit_pages` is zero.
    #[must_use]
    pub fn units(max_unit_pages: u64) -> Self {
        assert!(max_unit_pages > 0, "allocation units have at least one page");
        AllocationProfile { max_unit_pages }
    }

    /// Upper bound on one VMA's size, in pages.
    #[must_use]
    pub fn max_unit_pages(&self) -> u64 {
        self.max_unit_pages
    }

    /// `true` when VMAs are unbounded.
    #[must_use]
    pub fn is_contiguous(&self) -> bool {
        self.max_unit_pages == u64::MAX
    }
}

impl Default for AllocationProfile {
    fn default() -> Self {
        Self::contiguous()
    }
}

/// One of the paper's six memory-mapping scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Scenario {
    /// Vanilla-Linux demand paging with THP, under moderate background
    /// fragmentation pressure.
    DemandPaging,
    /// Eager paging: the whole footprint allocated up front through the
    /// buddy allocator.
    EagerPaging,
    /// Synthetic: chunks of 1–16 pages.
    LowContiguity,
    /// Synthetic: chunks of 1–512 pages.
    MediumContiguity,
    /// Synthetic: chunks of 512–65 536 pages.
    HighContiguity,
    /// Synthetic: every region fully contiguous (ideal for RMM).
    MaxContiguity,
}

impl Scenario {
    /// All six scenarios in the order the paper reports them (Figure 9).
    #[must_use]
    pub fn all() -> [Scenario; 6] {
        [
            Scenario::DemandPaging,
            Scenario::EagerPaging,
            Scenario::LowContiguity,
            Scenario::MediumContiguity,
            Scenario::HighContiguity,
            Scenario::MaxContiguity,
        ]
    }

    /// Short label used in tables and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scenario::DemandPaging => "demand",
            Scenario::EagerPaging => "eager",
            Scenario::LowContiguity => "low",
            Scenario::MediumContiguity => "medium",
            Scenario::HighContiguity => "high",
            Scenario::MaxContiguity => "max",
        }
    }

    /// Chunk-size range `(min, max)` in pages for the synthetic scenarios.
    #[must_use]
    pub fn synthetic_range(self) -> Option<(u64, u64)> {
        match self {
            Scenario::LowContiguity => Some((1, 16)),
            Scenario::MediumContiguity => Some((1, 512)),
            Scenario::HighContiguity => Some((512, 65_536)),
            _ => None,
        }
    }

    /// Generates a mapping of `footprint_pages` pages with the scenario's
    /// contiguity profile, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages` is zero.
    #[must_use]
    pub fn generate(self, footprint_pages: u64, seed: u64) -> AddressSpaceMap {
        self.generate_with_pressure(footprint_pages, seed, FragmentationLevel::Moderate)
    }

    /// Like [`Scenario::generate`] but with explicit background pressure for
    /// the demand/eager OS models (the synthetic scenarios ignore it).
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages` is zero.
    #[must_use]
    pub fn generate_with_pressure(
        self,
        footprint_pages: u64,
        seed: u64,
        pressure: FragmentationLevel,
    ) -> AddressSpaceMap {
        self.generate_profiled(footprint_pages, seed, pressure, AllocationProfile::contiguous())
    }

    /// Like [`Scenario::generate_with_pressure`] with an explicit
    /// application allocation profile. The profile shapes the real-OS
    /// scenarios (demand/eager); the synthetic scenarios are controlled
    /// mappings per Table 4 and ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages` is zero.
    #[must_use]
    pub fn generate_profiled(
        self,
        footprint_pages: u64,
        seed: u64,
        pressure: FragmentationLevel,
        profile: AllocationProfile,
    ) -> AddressSpaceMap {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0000);
        match self {
            Scenario::DemandPaging => demand_mapping(footprint_pages, &mut rng, pressure, profile),
            Scenario::EagerPaging => eager_mapping(footprint_pages, &mut rng, pressure, profile),
            Scenario::LowContiguity => synthetic(footprint_pages, &mut rng, 1, 16),
            Scenario::MediumContiguity => synthetic(footprint_pages, &mut rng, 1, 512),
            Scenario::HighContiguity => synthetic(footprint_pages, &mut rng, 512, 65_536),
            Scenario::MaxContiguity => max_contiguity(footprint_pages),
        }
    }
}

impl core::fmt::Display for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds a fragmented buddy allocator big enough for `footprint` pages plus
/// slack for the background jobs.
fn pressured_buddy(
    footprint: u64,
    rng: &mut SmallRng,
    pressure: FragmentationLevel,
) -> BuddyAllocator {
    // Physical memory = 4x the footprint, with a floor so tiny footprints
    // still see realistic block-size diversity.
    let phys = (footprint * 4).max(1 << 14);
    let mut buddy = BuddyAllocator::new(phys);
    let mut frag = Fragmenter::new(rng.gen());
    frag.shatter(&mut buddy, pressure);
    // Keep at least the footprint free (plus slack): evict background jobs
    // one at a time, which relieves capacity without healing fragmentation.
    while buddy.free_frames() < footprint + footprint / 8 && frag.release_one(&mut buddy) {}
    buddy
}

/// The VMAs an application with `profile` creates for `footprint` pages:
/// `(start_vpn, len)` pairs. Contiguous profiles make a handful of big
/// regions; fine profiles make many small VMAs separated by one-page holes
/// (so neither THP nor chunk merging can bridge them, as on a real heap of
/// scattered mmaps).
fn vma_layout(
    footprint: u64,
    rng: &mut SmallRng,
    profile: AllocationProfile,
) -> Vec<(VirtPageNum, u64)> {
    if profile.is_contiguous() {
        let regions = region_split(footprint, rng.gen_range(3..=6), rng);
        let mut out = Vec::new();
        let mut vpn = VirtPageNum::new(VA_BASE);
        for len in regions {
            out.push((vpn, len));
            vpn += len;
        }
        return out;
    }
    let max_unit = profile.max_unit_pages();
    let min_unit = (max_unit / 4).max(1);
    let mut out = Vec::new();
    let mut vpn = VirtPageNum::new(VA_BASE);
    let mut remaining = footprint;
    while remaining > 0 {
        let len = rng.gen_range(min_unit..=max_unit).min(remaining);
        out.push((vpn, len));
        vpn += len + 1; // one-page VA hole between VMAs
        remaining -= len;
    }
    out
}

/// Demand paging with THP: fault pages in first-touch order within each
/// VMA. Real first touches are mostly sequential per data structure with
/// occasional jumps between structures; we model that as sequential sweeps
/// over interleaved VMAs.
fn demand_mapping(
    footprint: u64,
    rng: &mut SmallRng,
    pressure: FragmentationLevel,
    profile: AllocationProfile,
) -> AddressSpaceMap {
    let buddy = pressured_buddy(footprint, rng, pressure);
    let mut pager = DemandPager::new(buddy, true);
    let vmas = vma_layout(footprint, rng, profile);
    let mut cursors: Vec<(u64, usize)> = vmas.iter().enumerate().map(|(i, _)| (0u64, i)).collect();
    // Interleave touches VMA by VMA in random bursts, as concurrent
    // initialisation of several structures would. Fine profiles interleave
    // across many VMAs, scattering their physical allocations.
    while !cursors.is_empty() {
        let slot = rng.gen_range(0..cursors.len());
        let (cur, vma_idx) = cursors[slot];
        let (vma_start, vma_len) = vmas[vma_idx];
        let burst = rng.gen_range(1..=HUGE_PAGE_PAGES * 2).min(vma_len - cur);
        for off in cur..cur + burst {
            let _ = pager.touch_in_vma(vma_start + off, vma_start, vma_len);
        }
        if cur + burst >= vma_len {
            cursors.swap_remove(slot);
        } else {
            cursors[slot].0 += burst;
        }
    }
    pager.into_map()
}

/// Eager paging: each VMA is backed up front through the buddy allocator,
/// largest blocks first (paper §5.1: "requests pages through the buddy
/// allocator system sequentially").
fn eager_mapping(
    footprint: u64,
    rng: &mut SmallRng,
    pressure: FragmentationLevel,
    profile: AllocationProfile,
) -> AddressSpaceMap {
    let mut buddy = pressured_buddy(footprint, rng, pressure);
    let mut map = AddressSpaceMap::new();
    for (vma_start, vma_len) in vma_layout(footprint, rng, profile) {
        let runs = buddy.allocate_run(vma_len).expect("pressured_buddy guarantees headroom");
        let mut vpn = vma_start;
        for (pfn, len) in runs {
            map.map_range(vpn, pfn, len, Permissions::READ_WRITE);
            vpn += len;
        }
    }
    map
}

/// Synthetic mapping per Table 4: consecutive VA chunks with sizes drawn
/// uniformly from `[lo, hi]`, each placed at a scattered physical location
/// so no two chunks merge.
///
/// Chunks of at least 2 MB are quantized and aligned to 2 MB in both
/// address spaces: on a real system such chunks come out of the buddy
/// allocator as naturally-aligned power-of-two blocks, so huge-page-sized
/// contiguity always arrives huge-page-aligned.
fn synthetic(footprint: u64, rng: &mut SmallRng, lo: u64, hi: u64) -> AddressSpaceMap {
    let mut map = AddressSpaceMap::new();
    let mut vpn = VirtPageNum::new(VA_BASE);
    let mut remaining = footprint;
    // Physical cursor advances with a random gap after each chunk, which
    // guarantees physical discontiguity between virtually-adjacent chunks.
    let mut pfn = 1u64 << 20;
    let huge_scenario = lo >= HUGE_PAGE_PAGES;
    while remaining > 0 {
        let mut len = rng.gen_range(lo..=hi).min(remaining);
        if huge_scenario {
            len = (len / HUGE_PAGE_PAGES * HUGE_PAGE_PAGES).max(HUGE_PAGE_PAGES).min(remaining);
            pfn = pfn.next_multiple_of(HUGE_PAGE_PAGES);
        }
        map.map_range(vpn, PhysFrameNum::new(pfn), len, Permissions::READ_WRITE);
        vpn += len;
        remaining -= len;
        pfn += len + rng.gen_range(1..=8);
    }
    map
}

/// Maximum contiguity: a few semantic regions (code/heap/mmap/stack), each
/// mapped as one fully contiguous chunk — the ideal case for RMM. Regions
/// are 2 MB-aligned in both address spaces and sized in 2 MB multiples
/// (when the footprint allows), so THP also sees them as huge pages.
fn max_contiguity(footprint: u64) -> AddressSpaceMap {
    let mut map = AddressSpaceMap::new();
    // At most 4 regions, each a multiple of 2 MB; remainder goes to the
    // last region. Small footprints collapse to a single region.
    let huge_units = footprint / HUGE_PAGE_PAGES;
    let n = (huge_units / 2).clamp(1, 4);
    let per_region = huge_units / n * HUGE_PAGE_PAGES;
    let mut lens = vec![per_region; n as usize];
    let assigned: u64 = lens.iter().sum();
    *lens.last_mut().expect("n >= 1") += footprint - assigned;
    let mut vpn = VirtPageNum::new(VA_BASE);
    let mut pfn = 1u64 << 20;
    for len in lens {
        map.map_range(vpn, PhysFrameNum::new(pfn), len, Permissions::READ_WRITE);
        // A hole between regions keeps them distinct ranges. Regions stay
        // aligned at the largest page size they could be mapped with:
        // gigabyte-scale regions of this *ideal* mapping are 1 GB-aligned
        // (so x86 giant pages engage), smaller ones 2 MB-aligned.
        let align = if len >= hytlb_types::GIANT_PAGE_PAGES {
            hytlb_types::GIANT_PAGE_PAGES
        } else {
            HUGE_PAGE_PAGES
        };
        let stride = len.div_ceil(align) * align + align;
        vpn += stride;
        pfn += stride;
    }
    map
}

/// Splits `total` pages into `n` region lengths summing to `total`.
fn region_split(total: u64, n: usize, rng: &mut SmallRng) -> Vec<u64> {
    assert!(n >= 1);
    if total < n as u64 * 2 {
        return vec![total];
    }
    let mut lens = Vec::with_capacity(n);
    let mut remaining = total;
    for i in 0..n - 1 {
        let left = (n - 1 - i) as u64;
        let max = remaining - left; // leave >= 1 page per remaining region
        let share = (remaining / (n - i) as u64).max(1);
        let len = rng.gen_range(share / 2..=share.max(share / 2 + 1)).min(max).max(1);
        lens.push(len);
        remaining -= len;
    }
    lens.push(remaining);
    lens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ContiguityHistogram;

    const FOOTPRINT: u64 = 16 * 1024; // 64 MB

    #[test]
    fn all_scenarios_map_exact_footprint() {
        for s in Scenario::all() {
            let m = s.generate(FOOTPRINT, 1);
            assert_eq!(m.mapped_pages(), FOOTPRINT, "{s}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for s in Scenario::all() {
            assert_eq!(s.generate(2048, 5), s.generate(2048, 5), "{s}");
        }
    }

    #[test]
    fn synthetic_ranges_respect_table4() {
        for (s, lo, hi) in [
            (Scenario::LowContiguity, 1, 16),
            (Scenario::MediumContiguity, 1, 512),
            (Scenario::HighContiguity, 512, 65_536),
        ] {
            let m = s.generate(FOOTPRINT * 4, 3);
            let h = ContiguityHistogram::from_map(&m);
            assert!(h.max_contiguity() <= hi, "{s}: max {}", h.max_contiguity());
            // Every chunk except possibly the final remainder is >= lo.
            let below_lo: u64 = h.iter().filter(|&(c, _)| c < lo).map(|(_, f)| f).sum();
            assert!(below_lo <= 1, "{s}: {below_lo} chunks below {lo}");
        }
    }

    #[test]
    fn max_contiguity_is_a_handful_of_chunks() {
        let m = Scenario::MaxContiguity.generate(FOOTPRINT, 1);
        assert!(m.chunk_count() <= 4, "{}", m.chunk_count());
    }

    #[test]
    fn demand_paging_produces_huge_pages() {
        let m = Scenario::DemandPaging.generate(FOOTPRINT, 2);
        let h = ContiguityHistogram::from_map(&m);
        // With THP on and moderate pressure a large share of memory should
        // sit in chunks of >= 512 pages.
        let huge_fraction = 1.0 - h.fraction_in_chunks_up_to(511);
        assert!(huge_fraction > 0.3, "huge fraction {huge_fraction}");
    }

    #[test]
    fn eager_beats_demand_on_mean_contiguity() {
        let d = ContiguityHistogram::from_map(&Scenario::DemandPaging.generate(FOOTPRINT, 4));
        let e = ContiguityHistogram::from_map(&Scenario::EagerPaging.generate(FOOTPRINT, 4));
        assert!(
            e.mean_contiguity() >= d.mean_contiguity(),
            "eager {} vs demand {}",
            e.mean_contiguity(),
            d.mean_contiguity()
        );
    }

    #[test]
    fn pressure_reduces_contiguity() {
        let calm =
            Scenario::DemandPaging.generate_with_pressure(FOOTPRINT, 6, FragmentationLevel::None);
        let stressed =
            Scenario::DemandPaging.generate_with_pressure(FOOTPRINT, 6, FragmentationLevel::Heavy);
        let hc = ContiguityHistogram::from_map(&calm);
        let hs = ContiguityHistogram::from_map(&stressed);
        assert!(hc.mean_contiguity() > hs.mean_contiguity());
    }

    #[test]
    fn fine_profile_caps_contiguity_under_demand_paging() {
        let profile = AllocationProfile::units(16);
        let m = Scenario::DemandPaging.generate_profiled(
            FOOTPRINT,
            7,
            FragmentationLevel::Moderate,
            profile,
        );
        assert_eq!(m.mapped_pages(), FOOTPRINT);
        let h = ContiguityHistogram::from_map(&m);
        assert!(h.max_contiguity() <= 16, "max chunk {}", h.max_contiguity());
        // No VMA can host a huge page.
        assert!(m.iter_pages().take(2048).all(|(v, _)| m.huge_page_at(v).is_none()));
    }

    #[test]
    fn fine_profile_caps_contiguity_under_eager_paging() {
        let profile = AllocationProfile::units(32);
        let m = Scenario::EagerPaging.generate_profiled(
            FOOTPRINT,
            8,
            FragmentationLevel::Light,
            profile,
        );
        assert_eq!(m.mapped_pages(), FOOTPRINT);
        assert!(ContiguityHistogram::from_map(&m).max_contiguity() <= 32);
    }

    #[test]
    fn contiguous_profile_matches_default_generation() {
        let a =
            Scenario::DemandPaging.generate_with_pressure(4096, 9, FragmentationLevel::Moderate);
        let b = Scenario::DemandPaging.generate_profiled(
            4096,
            9,
            FragmentationLevel::Moderate,
            AllocationProfile::contiguous(),
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_unit_profile_panics() {
        let _ = AllocationProfile::units(0);
    }

    #[test]
    fn region_split_sums_to_total() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in 1..6 {
            let lens = region_split(1000, n, &mut rng);
            assert_eq!(lens.iter().sum::<u64>(), 1000);
            assert!(lens.iter().all(|&l| l >= 1));
        }
        assert_eq!(region_split(3, 4, &mut rng), vec![3]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Scenario::DemandPaging.to_string(), "demand");
        assert_eq!(Scenario::MaxContiguity.label(), "max");
    }
}
