//! Anchored page-table maintenance — the OS side of hybrid coalescing.
//!
//! Every `N`-th page-table entry (aligned by `N`, the *anchor distance*) is
//! an anchor: it carries the number of pages mapped contiguously starting at
//! itself (paper §3.1, Figure 3). The OS owns this data: it refreshes the
//! contiguity fields on every mapping change and rewrites the whole table
//! when it changes the anchor distance (§3.3), a cost this module models.

use crate::{PageTable, MAX_CONTIGUITY};
use hytlb_mem::AddressSpaceMap;
use hytlb_types::{PhysFrameNum, VirtPageNum};
use std::time::Duration;

/// Calibrated cost of visiting one anchor slot during a distance-change
/// sweep. The paper reports 452 ms to re-anchor a 30 GB process at distance
/// 8 = 983 k anchors → ≈ 460 ns per anchor (§3.3).
const NS_PER_ANCHOR_VISIT: u64 = 460;

/// Cost of a [`AnchoredPageTable::reanchor`] sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReanchorCost {
    /// Anchor-aligned slots visited by the sweep (mapped footprint / N).
    pub slots_visited: u64,
    /// Anchors whose contiguity field was actually (re)written.
    pub anchors_written: u64,
}

impl ReanchorCost {
    /// Estimated wall-clock time of the sweep under the calibrated model.
    #[must_use]
    pub fn estimated_time(&self) -> Duration {
        Duration::from_nanos(self.slots_visited * NS_PER_ANCHOR_VISIT)
    }
}

/// Result of an anchor probe: the information an anchor TLB entry is filled
/// from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorProbe {
    /// The anchor's virtual page number (aligned to the anchor distance).
    pub avpn: VirtPageNum,
    /// Frame backing the anchor page itself (`APPN` in the paper).
    pub pfn: PhysFrameNum,
    /// Pages mapped contiguously starting at `avpn`.
    pub contiguity: u64,
}

impl AnchorProbe {
    /// `true` if `vpn` can be translated through this anchor, i.e.
    /// `vpn - avpn < contiguity` (the paper's "contiguity match").
    #[must_use]
    pub fn covers(&self, vpn: VirtPageNum) -> bool {
        vpn >= self.avpn && (vpn - self.avpn) < self.contiguity
    }

    /// Frame for `vpn`: `APPN + (VPN − AVPN)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `vpn` is not covered.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> PhysFrameNum {
        debug_assert!(self.covers(vpn));
        self.pfn + (vpn - self.avpn)
    }
}

/// A page table plus its anchor metadata and distance.
///
/// # Examples
///
/// ```
/// use hytlb_mem::AddressSpaceMap;
/// use hytlb_pagetable::{AnchoredPageTable, PageTable};
/// use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut map = AddressSpaceMap::new();
/// map.map_range(VirtPageNum::new(0), PhysFrameNum::new(64), 12, Permissions::READ_WRITE);
/// let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), 4);
/// apt.reanchor(&map, 4);
/// let probe = apt.anchor_probe(VirtPageNum::new(6)).unwrap();
/// assert_eq!(probe.avpn, VirtPageNum::new(4));
/// assert_eq!(probe.contiguity, 8); // pages 4..12 are contiguous
/// assert_eq!(probe.translate(VirtPageNum::new(6)), PhysFrameNum::new(70));
/// ```
#[derive(Debug, Clone)]
pub struct AnchoredPageTable {
    table: PageTable,
    distance: u64,
}

impl AnchoredPageTable {
    /// Wraps a page table with an initial anchor distance.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not a power of two in `[2, 65536]`.
    #[must_use]
    pub fn new(table: PageTable, distance: u64) -> Self {
        assert_valid_distance(distance);
        AnchoredPageTable { table, distance }
    }

    /// Current anchor distance in pages.
    #[must_use]
    pub fn distance(&self) -> u64 {
        self.distance
    }

    /// The underlying page table.
    #[must_use]
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the underlying page table (for OS models that map
    /// pages during execution).
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// Rewrites every anchor contiguity field for `new_distance`, using the
    /// OS's authoritative mapping. Returns the sweep cost.
    ///
    /// # Panics
    ///
    /// Panics if `new_distance` is invalid (see [`AnchoredPageTable::new`]).
    pub fn reanchor(&mut self, map: &AddressSpaceMap, new_distance: u64) -> ReanchorCost {
        assert_valid_distance(new_distance);
        self.distance = new_distance;
        self.reanchor_range(map, VirtPageNum::new(0), VirtPageNum::new(u64::MAX), new_distance)
    }

    /// Rewrites anchors only for `[start, end)` with an explicit distance,
    /// leaving the table's default distance untouched. This is the
    /// primitive behind the paper's §4.2 multi-region extension, where each
    /// semantic region carries its own anchor distance.
    ///
    /// # Panics
    ///
    /// Panics if `distance` is invalid (see [`AnchoredPageTable::new`]).
    pub fn reanchor_range(
        &mut self,
        map: &AddressSpaceMap,
        start: VirtPageNum,
        end: VirtPageNum,
        distance: u64,
    ) -> ReanchorCost {
        assert_valid_distance(distance);
        let mut cost = ReanchorCost::default();
        for chunk in map.chunks() {
            if chunk.end_vpn() <= start || chunk.vpn >= end {
                continue;
            }
            let lo = chunk.vpn.max(start);
            let hi = chunk.end_vpn().min(end);
            // First anchor-aligned VPN at or after the clipped chunk start.
            let mut avpn = lo.align_down(distance);
            if avpn < lo {
                avpn += distance;
            }
            while avpn < hi {
                let contiguity = (chunk.end_vpn() - avpn).min(MAX_CONTIGUITY);
                cost.slots_visited += 1;
                if self.table.write_anchor_contiguity(avpn, distance, contiguity) {
                    cost.anchors_written += 1;
                }
                avpn += distance;
            }
        }
        cost
    }

    /// Refreshes the anchors affected by a mapping change in
    /// `[vpn, vpn + len)` (allocation, relocation or deallocation), without
    /// a full sweep — the "Updating Memory Mapping" path of §3.3.
    pub fn update_range(&mut self, map: &AddressSpaceMap, vpn: VirtPageNum, len: u64) {
        let d = self.distance;
        // A change can affect the anchor covering `vpn` and every anchor up
        // to the end of the (possibly merged) chunk now containing the
        // range, plus anchors inside the range itself when it was unmapped.
        let start = match map.chunk_containing(vpn) {
            Some(c) => c.vpn.align_down(d),
            None => vpn.align_down(d),
        };
        let end_probe = vpn + len.saturating_sub(1);
        let end = match map.chunk_containing(end_probe) {
            Some(c) => c.end_vpn(),
            None => vpn + len,
        };
        let mut avpn = start;
        while avpn < end {
            let contiguity = map.contiguity_at(avpn).min(MAX_CONTIGUITY);
            let _ = self.table.write_anchor_contiguity(avpn, d, contiguity);
            avpn += d;
        }
    }

    /// Probes the anchor for `vpn`: locates `AVPN = align_down(vpn, N)`,
    /// reads the anchor PTE's translation and contiguity. Returns `None`
    /// when the anchor page itself is unmapped (no anchor entry exists) or
    /// carries zero contiguity.
    #[must_use]
    pub fn anchor_probe(&self, vpn: VirtPageNum) -> Option<AnchorProbe> {
        self.anchor_probe_at(vpn, self.distance)
    }

    /// Like [`AnchoredPageTable::anchor_probe`] but with an explicit anchor
    /// distance — used by multi-region configurations where the distance
    /// depends on the region containing `vpn`.
    #[must_use]
    pub fn anchor_probe_at(&self, vpn: VirtPageNum, distance: u64) -> Option<AnchorProbe> {
        let avpn = vpn.align_down(distance);
        let leaf = self.table.lookup(avpn)?;
        let contiguity = self.table.read_anchor_contiguity(avpn, distance)?;
        if contiguity == 0 {
            return None;
        }
        Some(AnchorProbe { avpn, pfn: leaf.pfn_for(avpn), contiguity })
    }
}

fn assert_valid_distance(distance: u64) {
    assert!(
        distance.is_power_of_two() && (2..=65_536).contains(&distance),
        "anchor distance must be a power of two in [2, 65536], got {distance}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;
    use hytlb_types::Permissions;

    fn rw() -> Permissions {
        Permissions::READ_WRITE
    }

    fn simple_map() -> AddressSpaceMap {
        let mut m = AddressSpaceMap::new();
        // Chunks: [0,12) -> 64.., [12,14) -> 200.., [32,40) -> 300..
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(64), 12, rw());
        m.map_range(VirtPageNum::new(12), PhysFrameNum::new(200), 2, rw());
        m.map_range(VirtPageNum::new(32), PhysFrameNum::new(300), 8, rw());
        m
    }

    #[test]
    fn reanchor_writes_expected_contiguities() {
        let m = simple_map();
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 4);
        let cost = apt.reanchor(&m, 4);
        assert!(cost.anchors_written >= 5);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(0)).unwrap().contiguity, 12);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(5)).unwrap().contiguity, 8);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(9)).unwrap().contiguity, 4);
        // VPN 13 belongs to anchor 12, whose chunk runs only to 14.
        assert_eq!(apt.anchor_probe(VirtPageNum::new(13)).unwrap().contiguity, 2);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(34)).unwrap().contiguity, 8);
    }

    #[test]
    fn probe_covers_and_translates() {
        let m = simple_map();
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 4);
        apt.reanchor(&m, 4);
        let p = apt.anchor_probe(VirtPageNum::new(6)).unwrap();
        assert!(p.covers(VirtPageNum::new(6)));
        assert!(!p.covers(VirtPageNum::new(3)));
        assert_eq!(p.translate(VirtPageNum::new(6)), PhysFrameNum::new(70));
    }

    #[test]
    fn probe_misses_on_unmapped_anchor() {
        let m = simple_map();
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 16);
        apt.reanchor(&m, 16);
        // Anchor 16 is unmapped; VPN 35's anchor (32) is mapped.
        assert!(apt.anchor_probe(VirtPageNum::new(17)).is_none());
        assert!(apt.anchor_probe(VirtPageNum::new(35)).is_some());
    }

    #[test]
    fn anchors_not_aligned_to_chunk_start_are_skipped() {
        let mut m = AddressSpaceMap::new();
        // Chunk [6, 10): no anchor at distance 8 lies inside except 8.
        m.map_range(VirtPageNum::new(6), PhysFrameNum::new(50), 4, rw());
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 8);
        apt.reanchor(&m, 8);
        let p = apt.anchor_probe(VirtPageNum::new(9)).unwrap();
        assert_eq!(p.avpn, VirtPageNum::new(8));
        assert_eq!(p.contiguity, 2);
        // VPN 6's anchor is 0, which is unmapped.
        assert!(apt.anchor_probe(VirtPageNum::new(6)).is_none());
    }

    #[test]
    fn contiguity_saturates_at_field_max() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(0), MAX_CONTIGUITY + 512, rw());
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 1 << 16);
        apt.reanchor(&m, 1 << 16);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(0)).unwrap().contiguity, MAX_CONTIGUITY);
    }

    #[test]
    fn update_range_tracks_mapping_growth() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(64), 4, rw());
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 4);
        apt.reanchor(&m, 4);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(0)).unwrap().contiguity, 4);
        // The mapping grows contiguously by 4 pages.
        m.map_range(VirtPageNum::new(4), PhysFrameNum::new(68), 4, rw());
        for i in 4..8 {
            apt.table_mut().map(VirtPageNum::new(i), PhysFrameNum::new(64 + i), rw());
        }
        apt.update_range(&m, VirtPageNum::new(4), 4);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(0)).unwrap().contiguity, 8);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(5)).unwrap().contiguity, 4);
    }

    #[test]
    fn update_range_tracks_unmap() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(64), 8, rw());
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 4);
        apt.reanchor(&m, 4);
        m.unmap_range(VirtPageNum::new(2), 6);
        apt.update_range(&m, VirtPageNum::new(2), 6);
        assert_eq!(apt.anchor_probe(VirtPageNum::new(0)).unwrap().contiguity, 2);
        // Anchor 4 now covers nothing.
        assert!(apt.anchor_probe(VirtPageNum::new(5)).is_none());
    }

    #[test]
    fn reanchor_cost_matches_paper_calibration() {
        // 30 GB at distance 8: the paper measured 452 ms.
        let slots = 30u64 * 1024 * 1024 * 1024 / 4096 / 8;
        let cost = ReanchorCost { slots_visited: slots, anchors_written: slots };
        let t = cost.estimated_time();
        assert!((t.as_millis() as i64 - 452).abs() < 10, "{t:?}");
    }

    #[test]
    fn reanchor_visits_scale_inversely_with_distance() {
        let m = Scenario::MediumContiguity.generate(8192, 1);
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), 8);
        let c8 = apt.reanchor(&m, 8);
        let c64 = apt.reanchor(&m, 64);
        assert!(c8.slots_visited > 6 * c64.slots_visited);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_distance_panics() {
        let _ = AnchoredPageTable::new(PageTable::new(), 3);
    }

    #[test]
    fn anchor_translations_agree_with_map() {
        let m = Scenario::MediumContiguity.generate(4096, 9);
        for d in [4u64, 16, 64, 512] {
            let mut apt = AnchoredPageTable::new(PageTable::from_map(&m, false), d);
            apt.reanchor(&m, d);
            for (vpn, pfn) in m.iter_pages() {
                if let Some(p) = apt.anchor_probe(vpn) {
                    if p.covers(vpn) {
                        assert_eq!(p.translate(vpn), pfn, "d={d} vpn={vpn}");
                    }
                }
            }
        }
    }
}
