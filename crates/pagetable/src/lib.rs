//! x86-64-style page tables with anchor entries.
//!
//! This crate implements the software half of the paper's hybrid coalescing
//! design:
//!
//! * [`PageTableEntry`] — the 64-bit PTE with the paper's Figure 4 layout:
//!   the 11 ignored bits `[52, 63)` of an anchor entry store (part of) its
//!   contiguity field, and fields wider than 11 bits are distributed over
//!   the following PTEs of the same 64-byte cache block (§3.1).
//! * [`PageTable`] — a real 4-level radix table (PML4→PDPT→PD→PT) with 2 MB
//!   leaf entries at the PD level, built from an
//!   [`AddressSpaceMap`](hytlb_mem::AddressSpaceMap).
//! * [`PageWalker`] — walks the radix table, charging the paper's fixed
//!   50-cycle walk latency (Table 3) or an optional per-level model.
//! * [`AnchoredPageTable`] — maintains anchor contiguity fields for a given
//!   anchor distance, answers anchor probes, and models the cost of
//!   re-anchoring the table when the OS changes the distance (§3.3).
//!
//! # Examples
//!
//! ```
//! use hytlb_mem::Scenario;
//! use hytlb_pagetable::{AnchoredPageTable, PageTable};
//! use hytlb_types::VirtPageNum;
//!
//! let map = Scenario::MediumContiguity.generate(1024, 7);
//! let mut table = AnchoredPageTable::new(PageTable::from_map(&map, true), 8);
//! table.reanchor(&map, 8);
//! let vpn = map.chunks().next().unwrap().vpn;
//! let probe = table.anchor_probe(vpn).expect("anchor PTE exists");
//! assert!(probe.contiguity >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anchored;
mod pte;
mod pwc;
mod table;
mod walker;

pub use anchored::{AnchorProbe, AnchoredPageTable, ReanchorCost};
pub use pte::{
    read_distributed_contiguity, write_distributed_contiguity, PageTableEntry, ANCHOR_BITS_PER_PTE,
    FLAG_MASKS, MAX_CONTIGUITY,
};
pub use pwc::{CachedWalkResult, CachedWalker};
pub use table::{LeafEntry, PageTable};
pub use walker::{PageWalker, WalkLatency, WalkResult};
