//! The 64-bit page-table entry, with the paper's anchor extensions.
//!
//! Layout (paper Figure 4, matching x86-64):
//!
//! ```text
//!  63   62........52  51....12  11...1  0
//!  XD   ignored/avail   PFN      flags  P
//!       └ anchor contiguity bits ┘
//! ```
//!
//! A *traditional* PTE ignores bits `[52, 63)`; an *anchor* PTE reuses them
//! for its contiguity count. Contiguity fields wider than 11 bits are
//! distributed across successive PTEs of the same 64-byte cache block
//! (8 PTEs), starting from the block's first entry — the cache block is
//! fetched as a unit, so reading the extra bits costs no memory access.

use hytlb_types::{Permissions, PhysFrameNum, PTES_PER_CACHE_BLOCK};

/// Number of ignored bits per PTE available for contiguity storage.
pub const ANCHOR_BITS_PER_PTE: u32 = 11;

/// The evaluation's contiguity field width: 16 bits, "maximum contiguity of
/// 2^16" 4 KB pages (§3.1).
pub const CONTIGUITY_FIELD_BITS: u32 = 16;

/// Largest contiguity value storable in the 16-bit field.
pub const MAX_CONTIGUITY: u64 = (1 << CONTIGUITY_FIELD_BITS) - 1;

const PRESENT_BIT: u64 = 1;
const WRITE_BIT: u64 = 1 << 1;
const HUGE_BIT: u64 = 1 << 7; // PS bit: 2 MB leaf at the PD level
const READ_BIT: u64 = 1 << 9; // software-available bit used for R
const XD_BIT: u64 = 1 << 63;
const PFN_MASK: u64 = ((1u64 << 52) - 1) & !((1u64 << 12) - 1);
const IGNORED_MASK: u64 = ((1u64 << 63) - 1) & !((1u64 << 52) - 1);

/// Every named bit field of the PTE layout, for invariant auditing: the
/// fields must be pairwise disjoint or the Figure 4 encoding is broken.
/// The order matches the layout diagram above, low bits first.
pub const FLAG_MASKS: [(&str, u64); 7] = [
    ("present", PRESENT_BIT),
    ("write", WRITE_BIT),
    ("huge", HUGE_BIT),
    ("read", READ_BIT),
    ("pfn", PFN_MASK),
    ("ignored", IGNORED_MASK),
    ("xd", XD_BIT),
];

/// A single 64-bit page-table entry.
///
/// ```
/// use hytlb_pagetable::PageTableEntry;
/// use hytlb_types::{Permissions, PhysFrameNum};
///
/// let pte = PageTableEntry::new_leaf(PhysFrameNum::new(0x1234), Permissions::READ_WRITE);
/// assert!(pte.is_present());
/// assert_eq!(pte.pfn(), PhysFrameNum::new(0x1234));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PageTableEntry(u64);

impl PageTableEntry {
    /// The all-zero, not-present entry.
    pub const NOT_PRESENT: PageTableEntry = PageTableEntry(0);

    /// Builds a present 4 KB leaf entry.
    #[must_use]
    pub fn new_leaf(pfn: PhysFrameNum, perms: Permissions) -> Self {
        let mut raw = PRESENT_BIT | ((pfn.as_u64() << 12) & PFN_MASK);
        if perms.contains(Permissions::READ) {
            raw |= READ_BIT;
        }
        if perms.contains(Permissions::WRITE) {
            raw |= WRITE_BIT;
        }
        if !perms.contains(Permissions::EXECUTE) {
            raw |= XD_BIT;
        }
        PageTableEntry(raw)
    }

    /// Builds a present 2 MB leaf entry (PS bit set; lives at the PD level).
    #[must_use]
    pub fn new_huge_leaf(pfn: PhysFrameNum, perms: Permissions) -> Self {
        PageTableEntry(Self::new_leaf(pfn, perms).0 | HUGE_BIT)
    }

    /// Builds a present non-leaf (directory) entry pointing at a child node.
    #[must_use]
    pub fn new_table(pfn: PhysFrameNum) -> Self {
        PageTableEntry(PRESENT_BIT | WRITE_BIT | READ_BIT | ((pfn.as_u64() << 12) & PFN_MASK))
    }

    /// Raw 64-bit representation.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an entry from its raw bits.
    #[must_use]
    pub const fn from_raw(raw: u64) -> Self {
        PageTableEntry(raw)
    }

    /// Present bit.
    #[must_use]
    pub const fn is_present(self) -> bool {
        self.0 & PRESENT_BIT != 0
    }

    /// PS bit: this entry maps a 2 MB page.
    #[must_use]
    pub const fn is_huge(self) -> bool {
        self.0 & HUGE_BIT != 0
    }

    /// Physical frame number (of the mapped page, or of the child node for
    /// directory entries).
    #[must_use]
    pub const fn pfn(self) -> PhysFrameNum {
        PhysFrameNum::new((self.0 & PFN_MASK) >> 12)
    }

    /// Access permissions encoded in the flag bits.
    #[must_use]
    pub fn permissions(self) -> Permissions {
        let mut p = Permissions::NONE;
        if self.0 & READ_BIT != 0 {
            p = p | Permissions::READ;
        }
        if self.0 & WRITE_BIT != 0 {
            p = p | Permissions::WRITE;
        }
        if self.0 & XD_BIT == 0 {
            p = p | Permissions::EXECUTE;
        }
        p
    }

    /// The 11 ignored bits `[52, 63)` carrying this entry's share of a
    /// distributed contiguity field.
    #[must_use]
    pub const fn ignored_bits(self) -> u64 {
        (self.0 & IGNORED_MASK) >> 52
    }

    /// Overwrites the 11 ignored bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not fit in 11 bits.
    pub fn set_ignored_bits(&mut self, bits: u64) {
        assert!(bits < (1 << ANCHOR_BITS_PER_PTE), "ignored field is 11 bits");
        self.0 = (self.0 & !IGNORED_MASK) | (bits << 52);
    }
}

/// Writes a contiguity value into the ignored bits of a cache block of PTEs,
/// 11 bits per entry starting at `block[0]` (paper §3.1).
///
/// Values larger than [`MAX_CONTIGUITY`] saturate: an anchor covering more
/// than 2^16 − 1 pages still reports the maximum the field can express,
/// which is the behaviour of a fixed-width hardware field.
///
/// # Panics
///
/// Panics if `block` is not exactly one cache block (8 PTEs).
pub fn write_distributed_contiguity(block: &mut [PageTableEntry], contiguity: u64) {
    assert_eq!(block.len(), PTES_PER_CACHE_BLOCK, "one 64-byte cache block");
    let value = contiguity.min(MAX_CONTIGUITY);
    let mut remaining_bits = CONTIGUITY_FIELD_BITS;
    let mut shift = 0u32;
    for pte in block.iter_mut() {
        if remaining_bits == 0 {
            break;
        }
        let take = remaining_bits.min(ANCHOR_BITS_PER_PTE);
        let mask = (1u64 << take) - 1;
        pte.set_ignored_bits((value >> shift) & mask);
        shift += take;
        remaining_bits -= take;
    }
}

/// Reads a contiguity value distributed over a cache block of PTEs.
///
/// # Panics
///
/// Panics if `block` is not exactly one cache block (8 PTEs).
#[must_use]
pub fn read_distributed_contiguity(block: &[PageTableEntry]) -> u64 {
    assert_eq!(block.len(), PTES_PER_CACHE_BLOCK, "one 64-byte cache block");
    let mut value = 0u64;
    let mut remaining_bits = CONTIGUITY_FIELD_BITS;
    let mut shift = 0u32;
    for pte in block {
        if remaining_bits == 0 {
            break;
        }
        let take = remaining_bits.min(ANCHOR_BITS_PER_PTE);
        value |= (pte.ignored_bits() & ((1 << take) - 1)) << shift;
        shift += take;
        remaining_bits -= take;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let pte = PageTableEntry::new_leaf(PhysFrameNum::new(0xabcde), Permissions::READ_WRITE);
        assert!(pte.is_present());
        assert!(!pte.is_huge());
        assert_eq!(pte.pfn(), PhysFrameNum::new(0xabcde));
        assert_eq!(pte.permissions(), Permissions::READ_WRITE);
    }

    #[test]
    fn huge_leaf_sets_ps_bit() {
        let pte = PageTableEntry::new_huge_leaf(PhysFrameNum::new(512), Permissions::READ);
        assert!(pte.is_huge());
        assert_eq!(pte.pfn(), PhysFrameNum::new(512));
    }

    #[test]
    fn executable_pages_clear_xd() {
        let rx = Permissions::READ | Permissions::EXECUTE;
        let pte = PageTableEntry::new_leaf(PhysFrameNum::new(1), rx);
        assert_eq!(pte.permissions(), rx);
        assert_eq!(pte.raw() & XD_BIT, 0);
    }

    #[test]
    fn not_present_is_zero() {
        assert_eq!(PageTableEntry::NOT_PRESENT.raw(), 0);
        assert!(!PageTableEntry::NOT_PRESENT.is_present());
        assert_eq!(PageTableEntry::default(), PageTableEntry::NOT_PRESENT);
    }

    #[test]
    fn ignored_bits_do_not_disturb_translation() {
        let mut pte = PageTableEntry::new_leaf(PhysFrameNum::new(0xfffff), Permissions::READ_WRITE);
        pte.set_ignored_bits(0x7ff);
        assert_eq!(pte.pfn(), PhysFrameNum::new(0xfffff));
        assert!(pte.is_present());
        assert_eq!(pte.ignored_bits(), 0x7ff);
        pte.set_ignored_bits(0);
        assert_eq!(pte.ignored_bits(), 0);
        assert_eq!(pte.permissions(), Permissions::READ_WRITE);
    }

    #[test]
    #[should_panic(expected = "11 bits")]
    fn oversized_ignored_bits_panic() {
        PageTableEntry::NOT_PRESENT.clone().set_ignored_bits(1 << 11);
    }

    #[test]
    fn distributed_contiguity_roundtrip() {
        for value in [0u64, 1, 7, 2047, 2048, 40_000, MAX_CONTIGUITY] {
            let mut block = [PageTableEntry::NOT_PRESENT; PTES_PER_CACHE_BLOCK];
            write_distributed_contiguity(&mut block, value);
            assert_eq!(read_distributed_contiguity(&block), value, "value {value}");
        }
    }

    #[test]
    fn distributed_contiguity_saturates() {
        let mut block = [PageTableEntry::NOT_PRESENT; PTES_PER_CACHE_BLOCK];
        write_distributed_contiguity(&mut block, u64::MAX);
        assert_eq!(read_distributed_contiguity(&block), MAX_CONTIGUITY);
    }

    #[test]
    fn distributed_field_spans_exactly_two_ptes() {
        let mut block = [PageTableEntry::NOT_PRESENT; PTES_PER_CACHE_BLOCK];
        write_distributed_contiguity(&mut block, MAX_CONTIGUITY);
        assert_ne!(block[0].ignored_bits(), 0);
        assert_ne!(block[1].ignored_bits(), 0);
        assert!(block[2..].iter().all(|p| p.ignored_bits() == 0));
    }

    #[test]
    fn contiguity_bits_coexist_with_live_translations() {
        let mut block: [PageTableEntry; 8] = core::array::from_fn(|i| {
            PageTableEntry::new_leaf(PhysFrameNum::new(100 + i as u64), Permissions::READ_WRITE)
        });
        write_distributed_contiguity(&mut block, 12_345);
        assert_eq!(read_distributed_contiguity(&block), 12_345);
        for (i, pte) in block.iter().enumerate() {
            assert_eq!(pte.pfn(), PhysFrameNum::new(100 + i as u64));
        }
    }
}
