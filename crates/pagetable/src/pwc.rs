//! Page-walk caches (MMU translation caches).
//!
//! The paper charges a fixed 50-cycle walk (Table 3), which already bakes
//! in the effect of the MMU caches every modern core ships (Barr et al.
//! ISCA'10, Bhattacharjee MICRO'13 — the paper's §6 "Reducing TLB Miss
//! Penalty" related work). This module models them explicitly so the
//! fixed-latency assumption can be *validated* rather than assumed: a
//! [`CachedWalker`] caches the PML4/PDPT/PD levels of recent walks and
//! charges a memory access only for the levels it must actually fetch.
//!
//! With warm MMU caches a 4 KB walk usually costs one memory access (the
//! PT leaf) plus cache hits, which is where "50 cycles" comes from; cold or
//! sparse access patterns cost up to four accesses.

use crate::{LeafEntry, PageTable};
use hytlb_types::{Cycles, VirtPageNum};

/// Which upper levels of a walk were served by the MMU caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedWalkResult {
    /// The translation found, `None` on fault.
    pub leaf: Option<LeafEntry>,
    /// Page-table levels fetched from memory (1–4 for 4 KB leaves).
    pub memory_accesses: u32,
    /// Levels served by the page-walk caches.
    pub cache_hits: u32,
    /// Total cycles charged.
    pub cycles: Cycles,
}

/// One per-level translation cache: tag = the VPN bits above that level.
#[derive(Debug, Clone)]
struct LevelCache {
    /// `(tag, lru_stamp)` entries; payload is implicit (we only model hit
    /// or miss — the node address does not matter for timing).
    entries: Vec<(u64, u64)>,
    capacity: usize,
    /// Number of low VPN bits *not* part of this level's tag.
    shift: u32,
    tick: u64,
}

impl LevelCache {
    fn new(capacity: usize, shift: u32) -> Self {
        LevelCache { entries: Vec::with_capacity(capacity), capacity, shift, tick: 0 }
    }

    fn probe(&mut self, vpn: VirtPageNum) -> bool {
        self.tick += 1;
        let tag = vpn.as_u64() >> self.shift;
        if let Some(e) = self.entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            return true;
        }
        false
    }

    fn fill(&mut self, vpn: VirtPageNum) {
        self.tick += 1;
        let tag = vpn.as_u64() >> self.shift;
        if let Some(e) = self.entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((tag, self.tick));
            return;
        }
        let idx = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, s))| *s)
            .map(|(i, _)| i)
            .expect("full");
        self.entries[idx] = (tag, self.tick);
    }

    fn flush(&mut self) {
        self.entries.clear();
    }
}

/// A page-table walker with per-level MMU caches.
///
/// Defaults follow a Skylake-class MMU: 2 PML4E + 4 PDPTE + 32 PDE cache
/// entries, 20 cycles per memory access, 2 cycles per cached level.
///
/// # Examples
///
/// ```
/// use hytlb_pagetable::{CachedWalker, PageTable};
/// use hytlb_types::{Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtPageNum::new(0), PhysFrameNum::new(1), Permissions::READ_WRITE);
/// pt.map(VirtPageNum::new(1), PhysFrameNum::new(2), Permissions::READ_WRITE);
/// let mut walker = CachedWalker::default();
/// let cold = walker.walk(&pt, VirtPageNum::new(0));
/// let warm = walker.walk(&pt, VirtPageNum::new(1));
/// assert!(warm.cycles < cold.cycles); // upper levels now cached
/// ```
#[derive(Debug, Clone)]
pub struct CachedWalker {
    /// Caches for the PML4, PDPT and PD levels (the PT leaf is never
    /// cached — that is the TLB's job).
    levels: [LevelCache; 3],
    memory_latency: Cycles,
    cache_latency: Cycles,
}

impl Default for CachedWalker {
    fn default() -> Self {
        CachedWalker::new([2, 4, 32], Cycles::new(20), Cycles::new(2))
    }
}

impl CachedWalker {
    /// Builds a walker with explicit per-level capacities
    /// `[pml4e, pdpte, pde]` and latencies.
    ///
    /// # Panics
    ///
    /// Panics if any capacity is zero.
    #[must_use]
    pub fn new(capacities: [usize; 3], memory_latency: Cycles, cache_latency: Cycles) -> Self {
        assert!(capacities.iter().all(|&c| c > 0), "each level cache needs capacity");
        CachedWalker {
            // A VPN has 36 significant bits: PML4 consumes [27,36),
            // PDPT [18,27), PD [9,18). An entry at level L is identified
            // by the VPN bits above the level it *maps* — i.e. a PML4E
            // covers 2^27 pages, a PDPTE 2^18, a PDE 2^9.
            levels: [
                LevelCache::new(capacities[0], 27),
                LevelCache::new(capacities[1], 18),
                LevelCache::new(capacities[2], 9),
            ],
            memory_latency,
            cache_latency,
        }
    }

    /// Walks `table` for `vpn`, skipping the levels the MMU caches cover.
    /// The walker starts at the *lowest* cached level (longest matching
    /// prefix), exactly like real translation caches.
    pub fn walk(&mut self, table: &PageTable, vpn: VirtPageNum) -> CachedWalkResult {
        let (leaf, depth) = table.lookup_with_depth(vpn);
        // How many of the 3 upper levels the walk actually traverses: a
        // 2 MB leaf walk touches PML4+PDPT+PD (depth 3); a 4 KB walk also
        // touches PT (depth 4).
        let upper = depth.min(3);
        // Longest-prefix probe: find the deepest cached upper level.
        let mut skipped = 0u32;
        for (i, level) in self.levels.iter_mut().enumerate().take(upper as usize).rev() {
            if level.probe(vpn) {
                skipped = i as u32 + 1;
                break;
            }
        }
        // Fetch the remaining levels from memory and fill their caches.
        for level in self.levels.iter_mut().take(upper as usize).skip(skipped as usize) {
            level.fill(vpn);
        }
        let memory_accesses = depth - skipped;
        let cache_hits = skipped;
        let cycles = self.memory_latency * u64::from(memory_accesses)
            + self.cache_latency * u64::from(cache_hits);
        CachedWalkResult { leaf, memory_accesses, cache_hits, cycles }
    }

    /// Flushes all levels (shootdown).
    pub fn flush(&mut self) {
        for l in &mut self.levels {
            l.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_types::{Permissions, PhysFrameNum};

    fn rw() -> Permissions {
        Permissions::READ_WRITE
    }

    fn table_with_pages(n: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..n {
            pt.map(VirtPageNum::new(i), PhysFrameNum::new(100 + i), rw());
        }
        pt
    }

    #[test]
    fn cold_walk_fetches_all_levels() {
        let pt = table_with_pages(1);
        let mut w = CachedWalker::default();
        let r = w.walk(&pt, VirtPageNum::new(0));
        assert_eq!(r.memory_accesses, 4);
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.cycles, Cycles::new(80));
        assert!(r.leaf.is_some());
    }

    #[test]
    fn warm_walk_fetches_only_the_leaf() {
        let pt = table_with_pages(8);
        let mut w = CachedWalker::default();
        w.walk(&pt, VirtPageNum::new(0));
        let r = w.walk(&pt, VirtPageNum::new(1));
        // Same PDE covers both pages: PML4+PDPT+PD all cached.
        assert_eq!(r.memory_accesses, 1);
        assert_eq!(r.cache_hits, 3);
        assert_eq!(r.cycles, Cycles::new(20 + 6));
    }

    #[test]
    fn crossing_a_pde_boundary_refetches_one_level() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PhysFrameNum::new(1), rw());
        pt.map(VirtPageNum::new(512), PhysFrameNum::new(2), rw());
        let mut w = CachedWalker::default();
        w.walk(&pt, VirtPageNum::new(0));
        let r = w.walk(&pt, VirtPageNum::new(512));
        // New PDE, but PDPT and PML4 are cached.
        assert_eq!(r.cache_hits, 2);
        assert_eq!(r.memory_accesses, 2);
    }

    #[test]
    fn sparse_pattern_thrashes_pde_cache() {
        // 64 PDE regions cycled > 32-entry PDE cache capacity.
        let mut pt = PageTable::new();
        for i in 0..64u64 {
            pt.map(VirtPageNum::new(i * 512), PhysFrameNum::new(i), rw());
        }
        let mut w = CachedWalker::default();
        for _ in 0..2 {
            for i in 0..64u64 {
                w.walk(&pt, VirtPageNum::new(i * 512));
            }
        }
        // Round 2 should still fetch the PDE from memory every time.
        let r = w.walk(&pt, VirtPageNum::new(0));
        assert!(r.memory_accesses >= 2, "{r:?}");
    }

    #[test]
    fn huge_leaf_walk_is_three_levels() {
        let mut pt = PageTable::new();
        pt.map_huge(VirtPageNum::new(0), PhysFrameNum::new(0), rw());
        let mut w = CachedWalker::default();
        let cold = w.walk(&pt, VirtPageNum::new(5));
        assert_eq!(cold.memory_accesses, 3);
        let warm = w.walk(&pt, VirtPageNum::new(6));
        // PD-level leaf itself is cached as the "PD" level.
        assert!(warm.memory_accesses <= 1, "{warm:?}");
    }

    #[test]
    fn flush_restores_cold_behaviour() {
        let pt = table_with_pages(2);
        let mut w = CachedWalker::default();
        w.walk(&pt, VirtPageNum::new(0));
        w.flush();
        let r = w.walk(&pt, VirtPageNum::new(1));
        assert_eq!(r.memory_accesses, 4);
    }

    #[test]
    fn fixed_fifty_cycle_model_is_a_reasonable_average() {
        // The paper's constant: with warm upper levels a walk costs 26
        // cycles here; fully cold 80. Locality-rich patterns land between
        // — validating (order-of-magnitude) the fixed 50-cycle charge.
        let pt = table_with_pages(2048);
        let mut w = CachedWalker::default();
        let mut total = Cycles::ZERO;
        let mut x = 1u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            total += w.walk(&pt, VirtPageNum::new(x % 2048)).cycles;
        }
        let avg = total.as_u64() as f64 / 2000.0;
        assert!((20.0..60.0).contains(&avg), "avg walk = {avg}");
    }
}
