//! A 4-level radix page table (PML4 → PDPT → PD → PT).
//!
//! The table is a real software radix tree over 512-entry nodes, with 2 MB
//! leaves at the PD level (PS bit) and 4 KB leaves at the PT level, so the
//! walker and the anchored-table maintenance operate on the same structure a
//! hardware walker would see.

use crate::pte::{read_distributed_contiguity, write_distributed_contiguity, PageTableEntry};
use hytlb_mem::AddressSpaceMap;
use hytlb_types::{
    PageSize, Permissions, PhysFrameNum, VirtPageNum, GIANT_PAGE_PAGES, HUGE_PAGE_PAGES,
    PTES_PER_CACHE_BLOCK,
};

const ENTRIES: usize = 512;
const LEVELS: usize = 4;

/// A translation found by walking the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafEntry {
    /// First VPN covered by the leaf (equals the queried VPN for 4 KB
    /// leaves; the 2 MB-aligned head for huge leaves).
    pub head_vpn: VirtPageNum,
    /// Frame backing `head_vpn`.
    pub head_pfn: PhysFrameNum,
    /// Page size of the leaf.
    pub size: PageSize,
    /// Permissions of the mapping.
    pub perms: Permissions,
}

impl LeafEntry {
    /// Frame backing an arbitrary `vpn` within this leaf.
    #[must_use]
    pub fn pfn_for(&self, vpn: VirtPageNum) -> PhysFrameNum {
        self.head_pfn + (vpn - self.head_vpn)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Interior { entries: Box<[PageTableEntry; ENTRIES]>, children: Vec<Option<Box<Node>>> },
    Leaf { entries: Box<[PageTableEntry; ENTRIES]> },
}

impl Node {
    fn interior() -> Node {
        Node::Interior {
            entries: Box::new([PageTableEntry::NOT_PRESENT; ENTRIES]),
            children: (0..ENTRIES).map(|_| None).collect(),
        }
    }

    fn leaf() -> Node {
        Node::Leaf { entries: Box::new([PageTableEntry::NOT_PRESENT; ENTRIES]) }
    }
}

/// A 4-level page table.
///
/// # Examples
///
/// ```
/// use hytlb_pagetable::PageTable;
/// use hytlb_types::{PageSize, Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtPageNum::new(0x1000), PhysFrameNum::new(0x2000), Permissions::READ_WRITE);
/// let leaf = pt.lookup(VirtPageNum::new(0x1000)).expect("mapped");
/// assert_eq!(leaf.size, PageSize::Base4K);
/// assert_eq!(leaf.head_pfn, PhysFrameNum::new(0x2000));
/// ```
#[derive(Debug, Clone)]
pub struct PageTable {
    root: Node,
    mapped_base_pages: u64,
    mapped_huge_pages: u64,
    mapped_giant_pages: u64,
}

/// Index of `vpn` within the node at `level` (0 = PML4 ... 3 = PT).
fn index_at(vpn: VirtPageNum, level: usize) -> usize {
    let shift = 9 * (LEVELS - 1 - level) as u32;
    vpn.index_bits(shift, 0x1ff)
}

impl PageTable {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> Self {
        PageTable {
            root: Node::interior(),
            mapped_base_pages: 0,
            mapped_huge_pages: 0,
            mapped_giant_pages: 0,
        }
    }

    /// Builds a page table for an entire address-space map.
    ///
    /// When `use_huge_pages` is set, any 2 MB region that
    /// [`AddressSpaceMap::huge_page_at`] reports as huge-page-shaped is
    /// installed as a single 2 MB leaf (this is what the paper's THP-enabled
    /// mappings look like); all remaining pages get 4 KB leaves.
    #[must_use]
    pub fn from_map(map: &AddressSpaceMap, use_huge_pages: bool) -> Self {
        let mut pt = PageTable::new();
        for chunk in map.chunks() {
            let mut vpn = chunk.vpn;
            let end = chunk.end_vpn();
            while vpn < end {
                let pfn = chunk.translate(vpn).expect("vpn inside chunk");
                // Huge-page candidacy decided chunk-locally: an aligned
                // `vpn` with `end - vpn` pages to spare inside this chunk
                // satisfies everything `map.huge_page_at(vpn) == Some(vpn)`
                // would check except PFN alignment, so only that remains —
                // no `BTreeMap` probe per 2 MB region.
                if use_huge_pages
                    && vpn.is_aligned(HUGE_PAGE_PAGES)
                    && end - vpn >= HUGE_PAGE_PAGES
                    && pfn.is_aligned(HUGE_PAGE_PAGES)
                {
                    pt.map_huge(vpn, pfn, chunk.perms);
                    vpn += HUGE_PAGE_PAGES;
                } else {
                    pt.map(vpn, pfn, chunk.perms);
                    vpn += 1;
                }
            }
        }
        pt
    }

    /// Number of 4 KB leaf entries installed.
    #[must_use]
    pub fn mapped_base_pages(&self) -> u64 {
        self.mapped_base_pages
    }

    /// Number of 2 MB leaf entries installed.
    #[must_use]
    pub fn mapped_huge_pages(&self) -> u64 {
        self.mapped_huge_pages
    }

    /// Maps one 4 KB page.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped (including under a huge leaf).
    pub fn map(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum, perms: Permissions) {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = index_at(vpn, level);
            match node {
                Node::Interior { entries, children } => {
                    assert!(!entries[idx].is_huge(), "page {vpn} already mapped by a huge leaf");
                    if children[idx].is_none() {
                        let child =
                            if level == LEVELS - 2 { Node::leaf() } else { Node::interior() };
                        children[idx] = Some(Box::new(child));
                        entries[idx] = PageTableEntry::new_table(PhysFrameNum::new(0));
                    }
                    node = children[idx].as_mut().expect("just ensured");
                }
                Node::Leaf { .. } => unreachable!("leaf node above PT level"),
            }
        }
        let idx = index_at(vpn, LEVELS - 1);
        match node {
            Node::Leaf { entries } => {
                assert!(!entries[idx].is_present(), "page {vpn} already mapped");
                entries[idx] = PageTableEntry::new_leaf(pfn, perms);
                self.mapped_base_pages += 1;
            }
            Node::Interior { .. } => unreachable!("interior node at PT level"),
        }
    }

    /// Maps one 2 MB page at the PD level.
    ///
    /// # Panics
    ///
    /// Panics if `vpn`/`pfn` are not 2 MB-aligned or the slot is occupied.
    pub fn map_huge(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum, perms: Permissions) {
        assert!(vpn.is_aligned(HUGE_PAGE_PAGES), "huge VPN must be 2MB-aligned");
        assert!(pfn.is_aligned(HUGE_PAGE_PAGES), "huge PFN must be 2MB-aligned");
        let mut node = &mut self.root;
        for level in 0..LEVELS - 2 {
            let idx = index_at(vpn, level);
            match node {
                Node::Interior { entries, children } => {
                    if children[idx].is_none() {
                        children[idx] = Some(Box::new(Node::interior()));
                        entries[idx] = PageTableEntry::new_table(PhysFrameNum::new(0));
                    }
                    node = children[idx].as_mut().expect("just ensured");
                }
                Node::Leaf { .. } => unreachable!("leaf node above PD level"),
            }
        }
        let idx = index_at(vpn, LEVELS - 2);
        match node {
            Node::Interior { entries, children } => {
                assert!(
                    !entries[idx].is_present() && children[idx].is_none(),
                    "2MB region at {vpn} already mapped"
                );
                entries[idx] = PageTableEntry::new_huge_leaf(pfn, perms);
                self.mapped_huge_pages += 1;
            }
            Node::Leaf { .. } => unreachable!(),
        }
    }

    /// Maps one 1 GB page at the PDPT level.
    ///
    /// # Panics
    ///
    /// Panics if `vpn`/`pfn` are not 1 GB-aligned or the slot is occupied.
    pub fn map_giant(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum, perms: Permissions) {
        assert!(vpn.is_aligned(GIANT_PAGE_PAGES), "giant VPN must be 1GB-aligned");
        assert!(pfn.is_aligned(GIANT_PAGE_PAGES), "giant PFN must be 1GB-aligned");
        let idx0 = index_at(vpn, 0);
        let node = match &mut self.root {
            Node::Interior { entries, children } => {
                if children[idx0].is_none() {
                    children[idx0] = Some(Box::new(Node::interior()));
                    entries[idx0] = PageTableEntry::new_table(PhysFrameNum::new(0));
                }
                children[idx0].as_mut().expect("just ensured")
            }
            Node::Leaf { .. } => unreachable!("root is interior"),
        };
        let idx = index_at(vpn, 1);
        match node.as_mut() {
            Node::Interior { entries, children } => {
                assert!(
                    !entries[idx].is_present() && children[idx].is_none(),
                    "1GB region at {vpn} already mapped"
                );
                entries[idx] = PageTableEntry::new_huge_leaf(pfn, perms);
                self.mapped_giant_pages += 1;
            }
            Node::Leaf { .. } => unreachable!(),
        }
    }

    /// Number of 1 GB leaf entries installed.
    #[must_use]
    pub fn mapped_giant_pages(&self) -> u64 {
        self.mapped_giant_pages
    }

    /// Looks a VPN up, returning the leaf translation if mapped.
    #[must_use]
    pub fn lookup(&self, vpn: VirtPageNum) -> Option<LeafEntry> {
        let mut node = &self.root;
        for level in 0..LEVELS {
            let idx = index_at(vpn, level);
            match node {
                Node::Interior { entries, children } => {
                    let e = entries[idx];
                    if !e.is_present() {
                        return None;
                    }
                    if e.is_huge() {
                        // PS bit at the PDPT level (1) = 1 GB leaf; at the
                        // PD level (2) = 2 MB leaf.
                        let size = if level == 1 { PageSize::Giant1G } else { PageSize::Huge2M };
                        return Some(LeafEntry {
                            head_vpn: vpn.align_down(size.base_pages()),
                            head_pfn: e.pfn(),
                            size,
                            perms: e.permissions(),
                        });
                    }
                    node = children[idx].as_ref()?;
                }
                Node::Leaf { entries } => {
                    let e = entries[idx];
                    return e.is_present().then(|| LeafEntry {
                        head_vpn: vpn,
                        head_pfn: e.pfn(),
                        size: PageSize::Base4K,
                        perms: e.permissions(),
                    });
                }
            }
        }
        None
    }

    /// [`PageTable::lookup`] and [`PageTable::walk_depth`] fused into one
    /// radix traversal: returns the leaf translation (if mapped) together
    /// with the number of nodes touched. This is the walker's per-miss hot
    /// path — one descent instead of two.
    #[must_use]
    pub fn lookup_with_depth(&self, vpn: VirtPageNum) -> (Option<LeafEntry>, u32) {
        let mut node = &self.root;
        let mut depth = 0;
        for level in 0..LEVELS {
            let idx = index_at(vpn, level);
            depth += 1;
            match node {
                Node::Interior { entries, children } => {
                    let e = entries[idx];
                    if !e.is_present() {
                        return (None, depth);
                    }
                    if e.is_huge() {
                        let size = if level == 1 { PageSize::Giant1G } else { PageSize::Huge2M };
                        let leaf = LeafEntry {
                            head_vpn: vpn.align_down(size.base_pages()),
                            head_pfn: e.pfn(),
                            size,
                            perms: e.permissions(),
                        };
                        return (Some(leaf), depth);
                    }
                    match children[idx].as_ref() {
                        Some(c) => node = c,
                        None => return (None, depth),
                    }
                }
                Node::Leaf { entries } => {
                    let e = entries[idx];
                    let leaf = e.is_present().then(|| LeafEntry {
                        head_vpn: vpn,
                        head_pfn: e.pfn(),
                        size: PageSize::Base4K,
                        perms: e.permissions(),
                    });
                    return (leaf, depth);
                }
            }
        }
        (None, depth)
    }

    /// Number of page-table node accesses a hardware walker performs to
    /// resolve `vpn`: 4 for a 4 KB leaf, 3 for a 2 MB leaf, and however far
    /// it got before finding a hole for unmapped addresses.
    #[must_use]
    pub fn walk_depth(&self, vpn: VirtPageNum) -> u32 {
        let mut node = &self.root;
        let mut depth = 0;
        for level in 0..LEVELS {
            let idx = index_at(vpn, level);
            depth += 1;
            match node {
                Node::Interior { entries, children } => {
                    let e = entries[idx];
                    if !e.is_present() || e.is_huge() {
                        return depth;
                    }
                    match children[idx].as_ref() {
                        Some(c) => node = c,
                        None => return depth,
                    }
                }
                Node::Leaf { .. } => return depth,
            }
        }
        depth
    }

    fn pt_leaf_entries(&self, vpn: VirtPageNum) -> Option<&[PageTableEntry; ENTRIES]> {
        let mut node = &self.root;
        for level in 0..LEVELS - 1 {
            let idx = index_at(vpn, level);
            match node {
                Node::Interior { entries, children } => {
                    if entries[idx].is_huge() {
                        return None;
                    }
                    node = children[idx].as_ref()?;
                }
                Node::Leaf { .. } => return None,
            }
        }
        match node {
            Node::Leaf { entries } => Some(entries),
            Node::Interior { .. } => None,
        }
    }

    fn pt_leaf_entries_mut(&mut self, vpn: VirtPageNum) -> Option<&mut [PageTableEntry; ENTRIES]> {
        let mut node = &mut self.root;
        for level in 0..LEVELS - 1 {
            let idx = index_at(vpn, level);
            match node {
                Node::Interior { entries, children } => {
                    if entries[idx].is_huge() {
                        return None;
                    }
                    node = children[idx].as_mut()?;
                }
                Node::Leaf { .. } => return None,
            }
        }
        match node {
            Node::Leaf { entries } => Some(entries),
            Node::Interior { .. } => None,
        }
    }

    /// Returns the 64-byte PTE cache block covering `vpn` at the PT (4 KB
    /// leaf) level: the 8 entries for the aligned VPN group
    /// `[vpn & !7, vpn | 7]`. This is what a hardware coalescing engine
    /// (CoLT / cluster TLB) inspects "for free" after a walk, since the
    /// block arrives as one cache line. `None` when the region has no PT
    /// node (unmapped or covered by a 2 MB leaf).
    #[must_use]
    pub fn leaf_block(&self, vpn: VirtPageNum) -> Option<&[PageTableEntry]> {
        let entries = self.pt_leaf_entries(vpn)?;
        let idx = index_at(vpn, LEVELS - 1);
        let base = idx - idx % PTES_PER_CACHE_BLOCK;
        Some(&entries[base..base + PTES_PER_CACHE_BLOCK])
    }

    /// Reads the contiguity field anchored at `anchor_vpn`.
    ///
    /// For anchor distances ≥ 8 the field is distributed over the anchor's
    /// cache block; for smaller distances it lives in the anchor PTE's own
    /// 11 ignored bits. Returns `None` when no 4 KB PT node covers the
    /// anchor (e.g. the region is mapped by a 2 MB leaf or unmapped).
    #[must_use]
    pub fn read_anchor_contiguity(&self, anchor_vpn: VirtPageNum, distance: u64) -> Option<u64> {
        let entries = self.pt_leaf_entries(anchor_vpn)?;
        let idx = index_at(anchor_vpn, LEVELS - 1);
        if distance >= PTES_PER_CACHE_BLOCK as u64 {
            debug_assert_eq!(idx % PTES_PER_CACHE_BLOCK, 0, "anchor aligned to its cache block");
            let base = idx - idx % PTES_PER_CACHE_BLOCK;
            Some(read_distributed_contiguity(&entries[base..base + PTES_PER_CACHE_BLOCK]))
        } else {
            Some(entries[idx].ignored_bits())
        }
    }

    /// Writes the contiguity field anchored at `anchor_vpn`. Returns `false`
    /// when no 4 KB PT node covers the anchor.
    pub fn write_anchor_contiguity(
        &mut self,
        anchor_vpn: VirtPageNum,
        distance: u64,
        contiguity: u64,
    ) -> bool {
        let Some(entries) = self.pt_leaf_entries_mut(anchor_vpn) else {
            return false;
        };
        let idx = index_at(anchor_vpn, LEVELS - 1);
        if distance >= PTES_PER_CACHE_BLOCK as u64 {
            let base = idx - idx % PTES_PER_CACHE_BLOCK;
            write_distributed_contiguity(
                &mut entries[base..base + PTES_PER_CACHE_BLOCK],
                contiguity,
            );
        } else {
            entries[idx].set_ignored_bits(contiguity.min((1 << crate::ANCHOR_BITS_PER_PTE) - 1));
        }
        true
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;

    fn rw() -> Permissions {
        Permissions::READ_WRITE
    }

    #[test]
    fn unmapped_lookup_is_none() {
        let pt = PageTable::new();
        assert_eq!(pt.lookup(VirtPageNum::new(12345)), None);
        assert_eq!(pt.walk_depth(VirtPageNum::new(12345)), 1);
    }

    #[test]
    fn map_and_lookup_4k() {
        let mut pt = PageTable::new();
        let vpn = VirtPageNum::new(0x0000_7f40_0000);
        pt.map(vpn, PhysFrameNum::new(42), rw());
        let leaf = pt.lookup(vpn).unwrap();
        assert_eq!(leaf.head_pfn, PhysFrameNum::new(42));
        assert_eq!(leaf.size, PageSize::Base4K);
        assert_eq!(leaf.pfn_for(vpn), PhysFrameNum::new(42));
        assert_eq!(pt.walk_depth(vpn), 4);
        assert_eq!(pt.mapped_base_pages(), 1);
    }

    #[test]
    fn map_and_lookup_huge() {
        let mut pt = PageTable::new();
        let head = VirtPageNum::new(512 * 7);
        pt.map_huge(head, PhysFrameNum::new(512 * 3), rw());
        let inner = head + 100;
        let leaf = pt.lookup(inner).unwrap();
        assert_eq!(leaf.size, PageSize::Huge2M);
        assert_eq!(leaf.head_vpn, head);
        assert_eq!(leaf.pfn_for(inner), PhysFrameNum::new(512 * 3 + 100));
        assert_eq!(pt.walk_depth(inner), 3);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(1), PhysFrameNum::new(1), rw());
        pt.map(VirtPageNum::new(1), PhysFrameNum::new(2), rw());
    }

    #[test]
    #[should_panic(expected = "2MB-aligned")]
    fn misaligned_huge_map_panics() {
        let mut pt = PageTable::new();
        pt.map_huge(VirtPageNum::new(5), PhysFrameNum::new(512), rw());
    }

    #[test]
    fn from_map_with_thp_installs_huge_leaves() {
        let mut map = AddressSpaceMap::new();
        map.map_range(VirtPageNum::new(512), PhysFrameNum::new(1024), 512, rw());
        map.map_range(VirtPageNum::new(2048), PhysFrameNum::new(4097), 100, rw());
        let pt = PageTable::from_map(&map, true);
        assert_eq!(pt.mapped_huge_pages(), 1);
        assert_eq!(pt.mapped_base_pages(), 100);
        assert_eq!(pt.lookup(VirtPageNum::new(700)).unwrap().size, PageSize::Huge2M);
        assert_eq!(pt.lookup(VirtPageNum::new(2050)).unwrap().size, PageSize::Base4K);
    }

    #[test]
    fn from_map_without_thp_is_all_base_pages() {
        let mut map = AddressSpaceMap::new();
        map.map_range(VirtPageNum::new(512), PhysFrameNum::new(1024), 512, rw());
        let pt = PageTable::from_map(&map, false);
        assert_eq!(pt.mapped_huge_pages(), 0);
        assert_eq!(pt.mapped_base_pages(), 512);
    }

    #[test]
    fn from_map_translations_match_map() {
        let map = Scenario::MediumContiguity.generate(2048, 3);
        let pt = PageTable::from_map(&map, true);
        for (vpn, pfn) in map.iter_pages() {
            let leaf = pt.lookup(vpn).unwrap_or_else(|| panic!("{vpn} unmapped"));
            assert_eq!(leaf.pfn_for(vpn), pfn, "at {vpn}");
        }
    }

    #[test]
    fn fused_probe_agrees_with_lookup_and_walk_depth() {
        let map = Scenario::MediumContiguity.generate(4096, 9);
        let pt = PageTable::from_map(&map, true);
        // Mapped pages, their neighbours (often unmapped holes), and a few
        // far-out unmapped addresses.
        let probes = map
            .iter_pages()
            .map(|(vpn, _)| vpn)
            .flat_map(|vpn| [vpn, vpn + 1])
            .chain([VirtPageNum::new(0), VirtPageNum::new(1 << 30)]);
        for vpn in probes {
            assert_eq!(pt.lookup_with_depth(vpn), (pt.lookup(vpn), pt.walk_depth(vpn)), "{vpn}");
        }
        let mut giant = PageTable::new();
        giant.map_giant(VirtPageNum::new(0), PhysFrameNum::new(0), rw());
        let vpn = VirtPageNum::new(77);
        assert_eq!(giant.lookup_with_depth(vpn), (giant.lookup(vpn), giant.walk_depth(vpn)));
    }

    #[test]
    fn anchor_contiguity_roundtrip_large_distance() {
        let mut pt = PageTable::new();
        for i in 0..16 {
            pt.map(VirtPageNum::new(i), PhysFrameNum::new(100 + i), rw());
        }
        assert!(pt.write_anchor_contiguity(VirtPageNum::new(0), 8, 12_345));
        assert_eq!(pt.read_anchor_contiguity(VirtPageNum::new(0), 8), Some(12_345));
        assert!(pt.write_anchor_contiguity(VirtPageNum::new(8), 8, 3));
        assert_eq!(pt.read_anchor_contiguity(VirtPageNum::new(8), 8), Some(3));
    }

    #[test]
    fn anchor_contiguity_small_distance_uses_own_pte() {
        let mut pt = PageTable::new();
        for i in 0..8 {
            pt.map(VirtPageNum::new(i), PhysFrameNum::new(100 + i), rw());
        }
        for anchor in (0..8).step_by(4) {
            assert!(pt.write_anchor_contiguity(VirtPageNum::new(anchor), 4, anchor + 1));
        }
        assert_eq!(pt.read_anchor_contiguity(VirtPageNum::new(0), 4), Some(1));
        assert_eq!(pt.read_anchor_contiguity(VirtPageNum::new(4), 4), Some(5));
    }

    #[test]
    fn anchor_contiguity_unmapped_region_is_none() {
        let pt = PageTable::new();
        assert_eq!(pt.read_anchor_contiguity(VirtPageNum::new(0), 8), None);
        let mut pt = pt;
        assert!(!pt.write_anchor_contiguity(VirtPageNum::new(0), 8, 5));
    }

    #[test]
    fn anchor_contiguity_under_huge_leaf_is_none() {
        let mut pt = PageTable::new();
        pt.map_huge(VirtPageNum::new(0), PhysFrameNum::new(0), rw());
        assert_eq!(pt.read_anchor_contiguity(VirtPageNum::new(0), 8), None);
    }
}
