//! Hardware page-table walker model.

use crate::{LeafEntry, PageTable};
use hytlb_types::{Cycles, VirtPageNum};

/// Latency model for a page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WalkLatency {
    /// A fixed cost per walk — the paper's model (50 cycles, Table 3,
    /// following Karakostas et al. HPCA'16).
    Fixed(Cycles),
    /// A cost per page-table node touched: 4 accesses for a 4 KB leaf,
    /// 3 for a 2 MB leaf. Useful for ablations; not used by the paper.
    PerAccess {
        /// Cycles charged per radix level touched.
        per_level: Cycles,
    },
}

impl Default for WalkLatency {
    /// The paper's 50-cycle fixed walk.
    fn default() -> Self {
        WalkLatency::Fixed(Cycles::new(50))
    }
}

/// Result of a hardware page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkResult {
    /// The translation found, or `None` for a fault (unmapped page).
    pub leaf: Option<LeafEntry>,
    /// Cycles charged for the walk.
    pub cycles: Cycles,
    /// Page-table nodes touched.
    pub accesses: u32,
}

/// A hardware walker bound to a latency model.
///
/// # Examples
///
/// ```
/// use hytlb_pagetable::{PageTable, PageWalker};
/// use hytlb_types::{Cycles, Permissions, PhysFrameNum, VirtPageNum};
///
/// let mut pt = PageTable::new();
/// pt.map(VirtPageNum::new(3), PhysFrameNum::new(9), Permissions::READ_WRITE);
/// let walker = PageWalker::default();
/// let res = walker.walk(&pt, VirtPageNum::new(3));
/// assert_eq!(res.cycles, Cycles::new(50));
/// assert!(res.leaf.is_some());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PageWalker {
    latency: WalkLatency,
}

impl PageWalker {
    /// Creates a walker with the given latency model.
    #[must_use]
    pub fn new(latency: WalkLatency) -> Self {
        PageWalker { latency }
    }

    /// The walker's latency model.
    #[must_use]
    pub fn latency(&self) -> WalkLatency {
        self.latency
    }

    /// Walks the table for `vpn`.
    #[must_use]
    pub fn walk(&self, table: &PageTable, vpn: VirtPageNum) -> WalkResult {
        let (leaf, accesses) = table.lookup_with_depth(vpn);
        let cycles = match self.latency {
            WalkLatency::Fixed(c) => c,
            WalkLatency::PerAccess { per_level } => per_level * u64::from(accesses),
        };
        WalkResult { leaf, cycles, accesses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_types::{PageSize, Permissions, PhysFrameNum};

    #[test]
    fn fixed_latency_is_constant() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PhysFrameNum::new(0), Permissions::READ_WRITE);
        pt.map_huge(VirtPageNum::new(512), PhysFrameNum::new(512), Permissions::READ_WRITE);
        let w = PageWalker::default();
        assert_eq!(w.walk(&pt, VirtPageNum::new(0)).cycles, Cycles::new(50));
        assert_eq!(w.walk(&pt, VirtPageNum::new(600)).cycles, Cycles::new(50));
        assert_eq!(w.walk(&pt, VirtPageNum::new(99999)).cycles, Cycles::new(50));
    }

    #[test]
    fn per_access_latency_rewards_huge_leaves() {
        let mut pt = PageTable::new();
        pt.map(VirtPageNum::new(0), PhysFrameNum::new(0), Permissions::READ_WRITE);
        pt.map_huge(VirtPageNum::new(512), PhysFrameNum::new(512), Permissions::READ_WRITE);
        let w = PageWalker::new(WalkLatency::PerAccess { per_level: Cycles::new(10) });
        let base = w.walk(&pt, VirtPageNum::new(0));
        let huge = w.walk(&pt, VirtPageNum::new(700));
        assert_eq!(base.accesses, 4);
        assert_eq!(huge.accesses, 3);
        assert_eq!(base.cycles, Cycles::new(40));
        assert_eq!(huge.cycles, Cycles::new(30));
        assert_eq!(huge.leaf.unwrap().size, PageSize::Huge2M);
    }

    #[test]
    fn fault_returns_no_leaf_but_charges_walk() {
        let pt = PageTable::new();
        let res = PageWalker::default().walk(&pt, VirtPageNum::new(1));
        assert!(res.leaf.is_none());
        assert_eq!(res.cycles, Cycles::new(50));
    }
}
