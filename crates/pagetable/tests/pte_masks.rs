//! Property tests over the PTE bit layout (paper Figure 4).
//!
//! The same disjointness constraint is checked at runtime by
//! `hytlb-audit -- invariants`; this test fuzzes it together with the
//! field accessors so a layout edit that makes two fields overlap fails
//! the suite even before the audit binary runs.

use hytlb_pagetable::{PageTableEntry, FLAG_MASKS};
use hytlb_types::{Permissions, PhysFrameNum};
use proptest::prelude::*;

#[test]
fn flag_masks_are_pairwise_disjoint() {
    for (i, &(name_a, mask_a)) in FLAG_MASKS.iter().enumerate() {
        assert_ne!(mask_a, 0, "field {name_a} is empty");
        for &(name_b, mask_b) in &FLAG_MASKS[i + 1..] {
            assert_eq!(mask_a & mask_b, 0, "fields {name_a} and {name_b} overlap");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any two randomly chosen fields stay disjoint, and each mask is a
    /// contiguous run of bits (x86-64 PTE fields are all contiguous).
    #[test]
    fn random_field_pairs_are_disjoint(a in 0usize..FLAG_MASKS.len(), b in 0usize..FLAG_MASKS.len()) {
        let (name_a, mask_a) = FLAG_MASKS[a];
        let (name_b, mask_b) = FLAG_MASKS[b];
        if a != b {
            prop_assert_eq!(mask_a & mask_b, 0, "fields {} and {} overlap", name_a, name_b);
        }
        let shifted = mask_a >> mask_a.trailing_zeros();
        prop_assert_eq!(shifted & (shifted + 1), 0, "field {} has holes", name_a);
    }

    /// Writing one field never disturbs another: a leaf PTE with random
    /// contiguity bits still reports its frame, presence and permissions.
    #[test]
    fn ignored_bits_never_leak_into_other_fields(
        raw_pfn in 0u64..(1u64 << 40),
        bits in 0u64..(1u64 << 11),
    ) {
        let pfn = PhysFrameNum::new(raw_pfn);
        let mut pte = PageTableEntry::new_leaf(pfn, Permissions::READ_WRITE);
        pte.set_ignored_bits(bits);
        prop_assert!(pte.is_present());
        prop_assert!(!pte.is_huge());
        prop_assert_eq!(pte.pfn(), pfn);
        prop_assert_eq!(pte.ignored_bits(), bits);
        prop_assert_eq!(pte.permissions(), Permissions::READ_WRITE);
    }
}
