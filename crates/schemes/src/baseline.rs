//! The baseline: 4 KB pages only.

use crate::scheme::{AccessResult, LatencyModel, SchemeStats, TranslationPath, TranslationScheme};
use crate::shared_l2::SharedL2;
use hytlb_mem::AddressSpaceMap;
use hytlb_pagetable::{PageTable, PageWalker};
use hytlb_tlb::L1Tlb;
use hytlb_types::{Cycles, PageSize, VirtAddr};
use std::sync::Arc;

/// The paper's `Base` configuration: every mapping is translated through
/// 4 KB PTEs; the shared 1024-entry 8-way L2 holds only 4 KB entries.
///
/// # Examples
///
/// ```
/// use hytlb_mem::Scenario;
/// use hytlb_schemes::{BaselineScheme, LatencyModel, TranslationScheme};
/// use hytlb_types::VirtAddr;
/// use std::sync::Arc;
///
/// let map = Arc::new(Scenario::LowContiguity.generate(256, 1));
/// let mut base = BaselineScheme::new(Arc::clone(&map), LatencyModel::default());
/// let va = map.chunks().next().unwrap().vpn.base_addr();
/// let first = base.access(va);
/// let second = base.access(va);
/// assert!(second.cycles < first.cycles); // second access hits
/// ```
#[derive(Debug)]
pub struct BaselineScheme {
    l1: L1Tlb,
    l2: SharedL2,
    table: PageTable,
    walker: PageWalker,
    latency: LatencyModel,
    stats: SchemeStats,
    _map: Arc<AddressSpaceMap>,
}

impl BaselineScheme {
    /// Builds the baseline MMU over a mapping.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, latency: LatencyModel) -> Self {
        BaselineScheme {
            l1: L1Tlb::paper_default(),
            l2: SharedL2::paper_default(),
            table: PageTable::from_map(&map, false),
            walker: PageWalker::default(),
            latency,
            stats: SchemeStats::default(),
            _map: map,
        }
    }
}

impl TranslationScheme for BaselineScheme {
    fn name(&self) -> &str {
        "Base"
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.l2.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else {
            let walk = self.walker.walk(&self.table, vpn);
            match walk.leaf {
                Some(leaf) => {
                    let pfn = leaf.pfn_for(vpn);
                    self.l2.insert_4k(vpn, pfn);
                    self.l1.insert(vpn, pfn, PageSize::Base4K);
                    AccessResult {
                        path: TranslationPath::Walk,
                        cycles: walk.cycles,
                        pfn: Some(pfn),
                    }
                }
                None => {
                    AccessResult { path: TranslationPath::Fault, cycles: walk.cycles, pfn: None }
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), crate::scheme::BatchFault> {
        crate::scheme::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.l2.geometry());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;
    use hytlb_types::VirtPageNum;

    fn scheme(footprint: u64, seed: u64) -> (BaselineScheme, Arc<AddressSpaceMap>) {
        let map = Arc::new(Scenario::MediumContiguity.generate(footprint, seed));
        (BaselineScheme::new(Arc::clone(&map), LatencyModel::default()), map)
    }

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    #[test]
    fn first_access_walks_then_hits() {
        let (mut s, map) = scheme(64, 1);
        let vpn = map.chunks().next().unwrap().vpn;
        let r1 = s.access(va(vpn));
        assert_eq!(r1.path, TranslationPath::Walk);
        assert_eq!(r1.cycles, Cycles::new(50));
        // Second access: L1 hit, free.
        let r2 = s.access(va(vpn));
        assert_eq!(r2.path, TranslationPath::L1Hit);
        assert_eq!(r2.cycles, Cycles::ZERO);
        assert_eq!(r1.pfn, r2.pfn);
    }

    #[test]
    fn translations_match_the_map() {
        let (mut s, map) = scheme(512, 2);
        for (vpn, pfn) in map.iter_pages() {
            assert_eq!(s.access(va(vpn)).pfn, Some(pfn), "at {vpn}");
        }
        // And again, through TLB hits.
        for (vpn, pfn) in map.iter_pages().take(32) {
            assert_eq!(s.access(va(vpn)).pfn, Some(pfn));
        }
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut s, _) = scheme(64, 3);
        let r = s.access(VirtAddr::new(0x10));
        assert_eq!(r.path, TranslationPath::Fault);
        assert_eq!(r.pfn, None);
        assert_eq!(s.stats().faults, 1);
    }

    #[test]
    fn working_set_larger_than_l2_thrashes() {
        // 4096 pages > 1024 L2 entries: cycling through them twice must
        // keep missing.
        let (mut s, map) = scheme(4096, 4);
        let pages: Vec<_> = map.iter_pages().map(|(v, _)| v).collect();
        for _ in 0..2 {
            for &v in &pages {
                s.access(va(v));
            }
        }
        let st = s.stats();
        assert!(st.walks as f64 > 0.9 * st.accesses as f64, "{st:?}");
    }

    #[test]
    fn flush_forgets_everything() {
        let (mut s, map) = scheme(64, 5);
        let vpn = map.chunks().next().unwrap().vpn;
        s.access(va(vpn));
        s.flush();
        let r = s.access(va(vpn));
        assert_eq!(r.path, TranslationPath::Walk);
    }

    #[test]
    fn baseline_ignores_huge_contiguity() {
        // Even a fully contiguous mapping gives baseline no benefit: one
        // walk per distinct page.
        let map = Arc::new(Scenario::MaxContiguity.generate(2048, 6));
        let mut s = BaselineScheme::new(Arc::clone(&map), LatencyModel::default());
        for (vpn, _) in map.iter_pages() {
            s.access(va(vpn));
        }
        assert_eq!(s.stats().walks, 2048);
    }
}
