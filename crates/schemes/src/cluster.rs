//! Cluster TLB (Pham et al., HPCA 2014) — pure-hardware coalescing.
//!
//! The L2 is statically partitioned (paper Table 3): a 768-entry 6-way
//! *regular* array and a 320-entry 5-way *cluster* array whose entries each
//! cover an aligned group of 8 virtual pages mapping into one aligned group
//! of 8 physical frames. After a page walk the hardware inspects the PTE
//! cache block that just arrived (8 PTEs — exactly the virtual cluster) and
//! coalesces every page whose frame falls in the same physical cluster,
//! recording a valid bit and a 3-bit frame offset per page.
//!
//! The static partition is itself a behaviour the paper measures: for
//! `cactusADM` the cluster entries are underutilised while the regular
//! array thrashes, and misses *increase* versus baseline (Figure 8).

use crate::scheme::{AccessResult, LatencyModel, SchemeStats, TranslationPath, TranslationScheme};
use crate::shared_l2::SharedL2;
use hytlb_mem::AddressSpaceMap;
use hytlb_pagetable::{PageTable, PageWalker};
use hytlb_tlb::{L1Tlb, SetAssocTlb};
use hytlb_types::{Cycles, PageSize, PhysFrameNum, VirtAddr, VirtPageNum};
use std::sync::Arc;

/// Pages per cluster entry (the paper's cluster-8 configuration).
pub const CLUSTER_SPAN: u64 = 8;

/// One cluster entry: an aligned 8-page virtual group whose valid pages all
/// map into one aligned 8-frame physical group.
#[derive(Debug, Clone, Copy)]
struct ClusterEntry {
    /// Physical cluster number (frame number >> 3).
    pcn: u64,
    /// Valid bit per page of the virtual cluster.
    valid: u8,
    /// 3-bit frame offset within the physical cluster, per page.
    offsets: [u8; CLUSTER_SPAN as usize],
}

impl ClusterEntry {
    fn pfn_for(&self, sub: usize) -> Option<PhysFrameNum> {
        (self.valid & (1 << sub) != 0)
            .then(|| PhysFrameNum::new((self.pcn << 3) + u64::from(self.offsets[sub])))
    }

    fn coverage(&self) -> u32 {
        self.valid.count_ones()
    }
}

/// The cluster-TLB scheme; `use_2mb` selects the paper's `Cluster-2MB`
/// variant, which additionally holds 2 MB entries in the regular partition.
#[derive(Debug)]
pub struct ClusterScheme {
    l1: L1Tlb,
    regular: SharedL2,
    cluster: SetAssocTlb<ClusterEntry>,
    table: PageTable,
    walker: PageWalker,
    latency: LatencyModel,
    stats: SchemeStats,
    use_2mb: bool,
    cluster_fills: u64,
    _map: Arc<AddressSpaceMap>,
}

impl ClusterScheme {
    /// Builds the cluster MMU. With `use_2mb`, THP-shaped regions get 2 MB
    /// leaves (and 2 MB regular entries); without, everything is 4 KB PTEs
    /// as in the original cluster TLB paper.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, latency: LatencyModel, use_2mb: bool) -> Self {
        ClusterScheme {
            l1: L1Tlb::paper_default(),
            // 768 entries, 6-way = 128 sets.
            regular: SharedL2::new(128, 6),
            // 320 entries, 5-way = 64 sets.
            cluster: SetAssocTlb::new(64, 5),
            table: PageTable::from_map(&map, use_2mb),
            walker: PageWalker::default(),
            latency,
            stats: SchemeStats::default(),
            use_2mb,
            cluster_fills: 0,
            _map: map,
        }
    }

    /// Number of cluster entries inserted so far (≥ 2 pages coalesced).
    #[must_use]
    pub fn cluster_fills(&self) -> u64 {
        self.cluster_fills
    }

    fn cluster_set(&self, vcn: u64) -> usize {
        hytlb_types::usize_from(vcn & (self.cluster.sets() as u64 - 1))
    }

    fn lookup_cluster(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let vcn = vpn.as_u64() / CLUSTER_SPAN;
        let sub = hytlb_types::usize_from(vpn.offset_within(CLUSTER_SPAN));
        let set = self.cluster_set(vcn);
        self.cluster.lookup(set, vcn).and_then(|e| e.pfn_for(sub))
    }

    /// Builds a cluster entry from the PTE cache block around `vpn`,
    /// anchored on `vpn`'s own frame. Returns the entry if at least two
    /// pages coalesce.
    fn coalesce_block(&self, vpn: VirtPageNum, pfn: PhysFrameNum) -> Option<ClusterEntry> {
        let block = self.table.leaf_block(vpn)?;
        let pcn = pfn.as_u64() / CLUSTER_SPAN;
        let mut entry = ClusterEntry { pcn, valid: 0, offsets: [0; CLUSTER_SPAN as usize] };
        for (i, pte) in block.iter().enumerate() {
            if pte.is_present() && pte.pfn().as_u64() / CLUSTER_SPAN == pcn {
                entry.valid |= 1 << i;
                entry.offsets[i] = hytlb_types::u8_from(pte.pfn().offset_within(CLUSTER_SPAN));
            }
        }
        (entry.coverage() >= 2).then_some(entry)
    }
}

impl TranslationScheme for ClusterScheme {
    fn name(&self) -> &str {
        if self.use_2mb {
            "Cluster-2MB"
        } else {
            "Cluster"
        }
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.regular.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.use_2mb.then(|| self.regular.lookup_2m(vpn)).flatten() {
            self.l1.insert(vpn, pfn, PageSize::Huge2M);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.lookup_cluster(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::CoalescedHit,
                cycles: self.latency.coalesced_hit,
                pfn: Some(pfn),
            }
        } else {
            let walk = self.walker.walk(&self.table, vpn);
            match walk.leaf {
                Some(leaf) => {
                    let pfn = leaf.pfn_for(vpn);
                    match leaf.size {
                        PageSize::Huge2M => {
                            debug_assert!(self.use_2mb);
                            self.regular.insert_2m(leaf.head_vpn, leaf.head_pfn);
                        }
                        // audit:allow(panic): invariant — from_map never
                        // builds 1 GB leaves here.
                        PageSize::Giant1G => unreachable!("no 1GB leaves here"),
                        PageSize::Base4K => {
                            let vcn = vpn.as_u64() / CLUSTER_SPAN;
                            let set = self.cluster_set(vcn);
                            // A VA group can straddle two physical
                            // clusters, but only one cluster entry per
                            // virtual group can live in the array (one
                            // tag). Keep whichever entry covers more
                            // pages; the unclusterable side is stored as
                            // regular 4 KB entries instead of thrashing
                            // the group's entry back and forth.
                            let candidate = self.coalesce_block(vpn, pfn);
                            let existing_cov =
                                self.cluster.peek(set, vcn).map_or(0, ClusterEntry::coverage);
                            match candidate {
                                Some(entry) if entry.coverage() > existing_cov => {
                                    self.cluster.insert(set, vcn, entry);
                                    self.cluster_fills += 1;
                                }
                                Some(_) | None => self.regular.insert_4k(vpn, pfn),
                            }
                        }
                    }
                    self.l1.insert(vpn, pfn, leaf.size);
                    AccessResult {
                        path: TranslationPath::Walk,
                        cycles: walk.cycles,
                        pfn: Some(pfn),
                    }
                }
                None => {
                    AccessResult { path: TranslationPath::Fault, cycles: walk.cycles, pfn: None }
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), crate::scheme::BatchFault> {
        crate::scheme::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.regular.flush();
        self.cluster.flush();
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.regular.geometry());
        g.push(self.cluster.geometry("L2 cluster"));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineScheme;
    use hytlb_mem::Scenario;

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    fn touch_all(s: &mut dyn TranslationScheme, map: &AddressSpaceMap, rounds: usize) {
        for _ in 0..rounds {
            for (vpn, pfn) in map.iter_pages() {
                let r = s.access(va(vpn));
                assert_eq!(r.pfn, Some(pfn), "wrong translation at {vpn}");
            }
        }
    }

    #[test]
    fn cluster_coalesces_contiguous_groups() {
        // Medium contiguity has many multi-page chunks: cluster entries
        // must form and serve hits.
        let map = Arc::new(Scenario::MediumContiguity.generate(2048, 1));
        let mut s = ClusterScheme::new(Arc::clone(&map), LatencyModel::default(), false);
        touch_all(&mut s, &map, 2);
        assert!(s.cluster_fills() > 0);
        assert!(s.stats().coalesced_hits > 0);
    }

    #[test]
    fn cluster_beats_baseline_on_low_contiguity() {
        let map = Arc::new(Scenario::LowContiguity.generate(4096, 2));
        let mut cl = ClusterScheme::new(Arc::clone(&map), LatencyModel::default(), false);
        let mut base = BaselineScheme::new(Arc::clone(&map), LatencyModel::default());
        touch_all(&mut cl, &map, 2);
        touch_all(&mut base, &map, 2);
        assert!(
            cl.stats().walks < base.stats().walks,
            "cluster {} vs base {}",
            cl.stats().walks,
            base.stats().walks
        );
    }

    #[test]
    fn cluster_2mb_uses_huge_entries_on_demand_mapping() {
        let map = Arc::new(Scenario::DemandPaging.generate(4096, 3));
        let mut s = ClusterScheme::new(Arc::clone(&map), LatencyModel::default(), true);
        touch_all(&mut s, &map, 1);
        assert!(s.stats().l2_regular_hits + s.stats().walks > 0);
        // Far fewer walks than there are pages: 2 MB entries cover regions.
        assert!(s.stats().walks < map.mapped_pages() / 4);
    }

    #[test]
    fn singleton_pages_fall_back_to_regular_entries() {
        // A mapping of isolated single pages can never coalesce.
        let mut m = AddressSpaceMap::new();
        for i in 0..64u64 {
            m.map_range(
                VirtPageNum::new(i * CLUSTER_SPAN),
                PhysFrameNum::new(1000 + i * 100),
                1,
                hytlb_types::Permissions::READ_WRITE,
            );
        }
        let map = Arc::new(m);
        let mut s = ClusterScheme::new(Arc::clone(&map), LatencyModel::default(), false);
        touch_all(&mut s, &map, 2);
        assert_eq!(s.cluster_fills(), 0);
        assert_eq!(s.stats().coalesced_hits, 0);
        assert!(s.stats().l2_regular_hits > 0);
    }

    #[test]
    fn coalescing_respects_physical_cluster_boundaries() {
        // 8 virtually-contiguous pages split across two physical clusters:
        // the entry anchored at the first page covers only its own cluster.
        let mut m = AddressSpaceMap::new();
        // VPNs 0..8 -> PFNs 4..12: PFNs 4..8 are cluster 0, 8..12 cluster 1.
        m.map_range(
            VirtPageNum::new(0),
            PhysFrameNum::new(4),
            8,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = ClusterScheme::new(Arc::clone(&map), LatencyModel::default(), false);
        let r = s.access(va(VirtPageNum::new(0)));
        assert_eq!(r.path, TranslationPath::Walk);
        // Pages 0..4 share the entry; page 4 (PFN 8, other cluster) misses.
        assert_eq!(s.access(va(VirtPageNum::new(1))).path, TranslationPath::CoalescedHit);
        assert_eq!(s.access(va(VirtPageNum::new(4))).path, TranslationPath::Walk);
        // The group's entry (coverage 4) is kept; page 4 became a regular
        // 4 KB entry, observable once the L1 is bypassed.
        assert_eq!(s.access(va(VirtPageNum::new(2))).path, TranslationPath::CoalescedHit);
        s.l1.flush();
        assert_eq!(s.access(va(VirtPageNum::new(4))).path, TranslationPath::L2RegularHit);
    }

    #[test]
    fn translations_always_match_map() {
        let map = Arc::new(Scenario::DemandPaging.generate(2048, 5));
        let mut s = ClusterScheme::new(Arc::clone(&map), LatencyModel::default(), true);
        touch_all(&mut s, &map, 2);
    }
}
