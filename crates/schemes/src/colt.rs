//! CoLT — Coalesced Large-Reach TLBs (Pham et al., MICRO 2012).
//!
//! The first HW-only coalescing proposal the paper builds on (§2.1). The
//! set-associative variant modelled here (CoLT-SA) coalesces *contiguous*
//! VPN→PFN runs inside an aligned 8-page coalescing window into one entry
//! holding `(window, first_offset, length, base_pfn)`. Unlike the cluster
//! TLB, the run's frames need not stay inside one aligned physical cluster
//! — only strict contiguity is required — but the run cannot cross the
//! window boundary, which is what bounds CoLT's reach to 4–8 pages.
//!
//! CoLT is not one of the paper's headline comparison points (the paper
//! evaluates the newer cluster TLB), but it is the natural ablation
//! partner for it: contiguity-based vs clustering-based HW coalescing.

use crate::scheme::{AccessResult, LatencyModel, SchemeStats, TranslationPath, TranslationScheme};
use crate::shared_l2::SharedL2;
use hytlb_mem::{AddressSpaceMap, ChunkCursor};
use hytlb_pagetable::{PageTable, PageWalker};
use hytlb_tlb::{L1Tlb, SetAssocTlb};
use hytlb_types::{Cycles, PageSize, PhysFrameNum, VirtAddr, VirtPageNum};
use std::sync::Arc;

/// Pages per coalescing window.
const WINDOW: u64 = 8;

/// One CoLT entry: a contiguous run inside an aligned window.
#[derive(Debug, Clone, Copy)]
struct ColtEntry {
    /// Offset of the run's first page within the window.
    first: u8,
    /// Run length in pages (1..=8).
    len: u8,
    /// Frame backing the run's first page.
    base_pfn: u64,
}

impl ColtEntry {
    fn pfn_for(&self, off: u64) -> Option<PhysFrameNum> {
        let first = u64::from(self.first);
        (off >= first && off < first + u64::from(self.len))
            .then(|| PhysFrameNum::new(self.base_pfn + (off - first)))
    }
}

/// The CoLT-SA scheme: a 768-entry 6-way regular partition plus a
/// 320-entry 5-way coalesced partition (mirroring the paper's cluster
/// configuration so the two HW-coalescing designs are directly
/// comparable). An optional CoLT-FA side structure (§2.1: "CoLT
/// additionally provides a fully associative mode that supports a much
/// larger number of coalesced contiguous pages ... which in turn restricts
/// the number of entries available") holds a handful of unbounded
/// contiguous runs, probed after the set-associative arrays.
#[derive(Debug)]
pub struct ColtScheme {
    l1: L1Tlb,
    regular: SharedL2,
    coalesced: SetAssocTlb<ColtEntry>,
    /// CoLT-FA: unbounded-length runs, fully associative (reuses the
    /// range-TLB structure — the lookup hardware is identical).
    fa: Option<hytlb_tlb::RangeTlb>,
    table: PageTable,
    walker: PageWalker,
    latency: LatencyModel,
    stats: SchemeStats,
    coalesced_fills: u64,
    map: Arc<AddressSpaceMap>,
    /// Last-chunk cache for the FA refill probe; `map` is never mutated
    /// after construction, so the cursor can never go stale.
    chunk_cursor: ChunkCursor,
}

impl ColtScheme {
    /// Builds the CoLT-SA MMU (4 KB pages only, like the original
    /// proposal).
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, latency: LatencyModel) -> Self {
        Self::build(map, latency, None)
    }

    /// Builds CoLT-SA + a CoLT-FA side structure of `fa_entries`
    /// unbounded-length coalesced runs.
    ///
    /// # Panics
    ///
    /// Panics if `fa_entries` is zero.
    #[must_use]
    pub fn with_fully_associative(
        map: Arc<AddressSpaceMap>,
        latency: LatencyModel,
        fa_entries: usize,
    ) -> Self {
        Self::build(map, latency, Some(fa_entries))
    }

    fn build(map: Arc<AddressSpaceMap>, latency: LatencyModel, fa: Option<usize>) -> Self {
        ColtScheme {
            l1: L1Tlb::paper_default(),
            regular: SharedL2::new(128, 6),
            coalesced: SetAssocTlb::new(64, 5),
            fa: fa.map(hytlb_tlb::RangeTlb::new),
            table: PageTable::from_map(&map, false),
            walker: PageWalker::default(),
            latency,
            stats: SchemeStats::default(),
            coalesced_fills: 0,
            map,
            chunk_cursor: ChunkCursor::default(),
        }
    }

    /// Coalesced entries inserted so far.
    #[must_use]
    pub fn coalesced_fills(&self) -> u64 {
        self.coalesced_fills
    }

    fn window_set(&self, wdw: u64) -> usize {
        hytlb_types::usize_from(wdw & (self.coalesced.sets() as u64 - 1))
    }

    fn lookup_coalesced(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let wdw = vpn.as_u64() / WINDOW;
        let off = vpn.as_u64() % WINDOW;
        let set = self.window_set(wdw);
        self.coalesced.lookup(set, wdw).and_then(|e| e.pfn_for(off))
    }

    /// Scans the PTE cache block for the maximal contiguous run containing
    /// `vpn` (this is CoLT's free post-walk scan of the arriving line).
    fn coalesce_run(&self, vpn: VirtPageNum, pfn: PhysFrameNum) -> Option<ColtEntry> {
        let block = self.table.leaf_block(vpn)?;
        let off = hytlb_types::usize_from(vpn.offset_within(WINDOW));
        // Expand left.
        let mut first = off;
        while first > 0 {
            let prev = block[first - 1];
            let want = pfn.as_u64() - (off - first + 1) as u64;
            if prev.is_present() && prev.pfn().as_u64() == want {
                first -= 1;
            } else {
                break;
            }
        }
        // Expand right.
        let mut last = off;
        while last + 1 < block.len() {
            let next = block[last + 1];
            let want = pfn.as_u64() + (last + 1 - off) as u64;
            if next.is_present() && next.pfn().as_u64() == want {
                last += 1;
            } else {
                break;
            }
        }
        let len = (last - first + 1) as u8;
        (len >= 2).then(|| ColtEntry {
            first: first as u8,
            len,
            base_pfn: pfn.as_u64() - (off - first) as u64,
        })
    }
}

impl TranslationScheme for ColtScheme {
    fn name(&self) -> &str {
        "CoLT"
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.regular.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.lookup_coalesced(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::CoalescedHit,
                cycles: self.latency.coalesced_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.fa.as_mut().and_then(|fa| fa.lookup(vpn)) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::CoalescedHit,
                cycles: self.latency.coalesced_hit,
                pfn: Some(pfn),
            }
        } else {
            let walk = self.walker.walk(&self.table, vpn);
            match walk.leaf {
                Some(leaf) => {
                    let pfn = leaf.pfn_for(vpn);
                    let wdw = vpn.as_u64() / WINDOW;
                    let set = self.window_set(wdw);
                    let candidate = self.coalesce_run(vpn, pfn);
                    let existing_len = self.coalesced.peek(set, wdw).map_or(0, |e| e.len);
                    match candidate {
                        Some(entry) if entry.len > existing_len => {
                            self.coalesced.insert(set, wdw, entry);
                            self.coalesced_fills += 1;
                        }
                        Some(_) | None => self.regular.insert_4k(vpn, pfn),
                    }
                    // CoLT-FA additionally coalesces the full contiguous
                    // run (no window bound) when it is long enough to be
                    // worth one of the few FA slots.
                    if let Some(fa) = self.fa.as_mut() {
                        if let Some(chunk) =
                            self.map.chunk_containing_with(vpn, &mut self.chunk_cursor)
                        {
                            if chunk.len > WINDOW {
                                fa.insert(hytlb_tlb::RangeEntry {
                                    start_vpn: chunk.vpn,
                                    start_pfn: chunk.pfn,
                                    len: chunk.len,
                                });
                            }
                        }
                    }
                    self.l1.insert(vpn, pfn, PageSize::Base4K);
                    AccessResult {
                        path: TranslationPath::Walk,
                        cycles: walk.cycles,
                        pfn: Some(pfn),
                    }
                }
                None => {
                    AccessResult { path: TranslationPath::Fault, cycles: walk.cycles, pfn: None }
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), crate::scheme::BatchFault> {
        crate::scheme::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.regular.flush();
        self.coalesced.flush();
        if let Some(fa) = self.fa.as_mut() {
            fa.flush();
        }
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.regular.geometry());
        g.push(self.coalesced.geometry("L2 CoLT"));
        if let Some(fa) = self.fa.as_ref() {
            g.push(fa.geometry("CoLT FA"));
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;
    use hytlb_types::Permissions;

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    #[test]
    fn coalesces_contiguous_runs_across_cluster_boundaries() {
        // VPNs 0..8 -> PFNs 4..12: contiguous but spanning two aligned
        // 8-frame clusters. CoLT coalesces the whole window; the cluster
        // TLB could not.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(4), 8, Permissions::READ_WRITE);
        let map = Arc::new(m);
        let mut s = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
        assert_eq!(s.access(va(VirtPageNum::new(0))).path, TranslationPath::Walk);
        for i in 1..8u64 {
            let r = s.access(va(VirtPageNum::new(i)));
            assert_eq!(r.path, TranslationPath::CoalescedHit, "page {i}");
            assert_eq!(r.pfn, Some(PhysFrameNum::new(4 + i)));
        }
        assert_eq!(s.coalesced_fills(), 1);
    }

    #[test]
    fn runs_do_not_cross_window_boundaries() {
        // A 16-page chunk needs two CoLT entries (one per window).
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 16, Permissions::READ_WRITE);
        let map = Arc::new(m);
        let mut s = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
        s.access(va(VirtPageNum::new(0)));
        assert_eq!(s.access(va(VirtPageNum::new(7))).path, TranslationPath::CoalescedHit);
        // Page 8 is in the next window: walk, then coalesced.
        assert_eq!(s.access(va(VirtPageNum::new(8))).path, TranslationPath::Walk);
        assert_eq!(s.access(va(VirtPageNum::new(15))).path, TranslationPath::CoalescedHit);
        assert_eq!(s.coalesced_fills(), 2);
    }

    #[test]
    fn discontiguous_pages_stay_regular() {
        let mut m = AddressSpaceMap::new();
        for i in 0..8u64 {
            m.map_range(
                VirtPageNum::new(i),
                PhysFrameNum::new(100 + i * 10),
                1,
                Permissions::READ_WRITE,
            );
        }
        let map = Arc::new(m);
        let mut s = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
        for i in 0..8u64 {
            s.access(va(VirtPageNum::new(i)));
        }
        assert_eq!(s.coalesced_fills(), 0);
        assert_eq!(s.stats().coalesced_hits, 0);
    }

    #[test]
    fn translations_match_map_on_scenarios() {
        for scenario in [Scenario::LowContiguity, Scenario::MediumContiguity] {
            let map = Arc::new(scenario.generate(2048, 5));
            let mut s = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
            for _ in 0..2 {
                for (vpn, pfn) in map.iter_pages() {
                    assert_eq!(s.access(va(vpn)).pfn, Some(pfn), "{scenario} at {vpn}");
                }
            }
        }
    }

    #[test]
    fn colt_fa_coalesces_runs_beyond_the_window() {
        // One 600-page run: CoLT-SA needs 75 window entries; CoLT-FA
        // covers everything with a single FA run after one walk.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(1000), 600, Permissions::READ_WRITE);
        let map = Arc::new(m);
        let mut fa =
            ColtScheme::with_fully_associative(Arc::clone(&map), LatencyModel::default(), 4);
        assert_eq!(fa.access(va(VirtPageNum::new(0))).path, TranslationPath::Walk);
        // A page far outside the first window is an FA coalesced hit.
        let r = fa.access(va(VirtPageNum::new(500)));
        assert_eq!(r.path, TranslationPath::CoalescedHit);
        assert_eq!(r.pfn, Some(PhysFrameNum::new(1500)));
        // Plain CoLT-SA walks there instead.
        let mut sa = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
        sa.access(va(VirtPageNum::new(0)));
        assert_eq!(sa.access(va(VirtPageNum::new(500))).path, TranslationPath::Walk);
    }

    #[test]
    fn colt_fa_keeps_short_runs_out_of_fa_slots() {
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(10), 4, Permissions::READ_WRITE);
        let map = Arc::new(m);
        let mut s =
            ColtScheme::with_fully_associative(Arc::clone(&map), LatencyModel::default(), 4);
        s.access(va(VirtPageNum::new(0)));
        // Short runs (< window) stay in the SA structures only; the FA
        // array is reserved for long runs, so it remains empty.
        s.flush();
        assert_eq!(s.access(va(VirtPageNum::new(2))).path, TranslationPath::Walk);
    }

    #[test]
    fn colt_beats_baseline_on_low_contiguity() {
        use crate::BaselineScheme;
        let map = Arc::new(Scenario::LowContiguity.generate(4096, 6));
        let mut colt = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
        let mut base = BaselineScheme::new(Arc::clone(&map), LatencyModel::default());
        for _ in 0..2 {
            for (vpn, _) in map.iter_pages() {
                colt.access(va(vpn));
                base.access(va(vpn));
            }
        }
        assert!(colt.stats().walks < base.stats().walks);
    }

    #[test]
    fn partial_run_keeps_longer_existing_entry() {
        // Window with runs [0..6) and [6..8) (discontiguous between):
        // after caching the 6-run, walking page 6 must not evict it for
        // the 2-run.
        let mut m = AddressSpaceMap::new();
        m.map_range(VirtPageNum::new(0), PhysFrameNum::new(100), 6, Permissions::READ_WRITE);
        m.map_range(VirtPageNum::new(6), PhysFrameNum::new(500), 2, Permissions::READ_WRITE);
        let map = Arc::new(m);
        let mut s = ColtScheme::new(Arc::clone(&map), LatencyModel::default());
        s.access(va(VirtPageNum::new(0)));
        assert_eq!(s.access(va(VirtPageNum::new(6))).path, TranslationPath::Walk);
        // The 6-run survives; page 3 still coalesced-hits after L1 flush.
        s.l1.flush();
        assert_eq!(s.access(va(VirtPageNum::new(3))).path, TranslationPath::CoalescedHit);
        // Page 6 went regular.
        assert_eq!(s.access(va(VirtPageNum::new(6))).path, TranslationPath::L2RegularHit);
    }
}
