//! The competing translation schemes of the paper's evaluation.
//!
//! Every scheme (including the hybrid-coalescing scheme in `hytlb-core`)
//! implements [`TranslationScheme`]: feed it a stream of virtual addresses
//! and it reports, per access, which structure resolved the translation and
//! how many cycles it cost under the paper's Table 3 latency model.
//!
//! Schemes provided here:
//!
//! * [`BaselineScheme`] — 4 KB pages only, 1024-entry 8-way shared L2.
//! * [`ThpScheme`] — transparent huge pages: 4 KB + 2 MB entries share the
//!   L2 array.
//! * [`ClusterScheme`] — cluster TLB (Pham et al. HPCA'14): the L2 is
//!   partitioned into a 768-entry 6-way regular array and a 320-entry 5-way
//!   cluster-8 array; optionally (`cluster-2MB`) the regular array also
//!   holds 2 MB entries.
//! * [`RmmScheme`] — redundant memory mapping (Karakostas et al. ISCA'15):
//!   baseline L2 plus a 32-entry fully-associative range TLB.
//!
//! The [`SharedL2`] helper implements the mixed-entry L2 array with the
//! paper's indexing rules (Figure 6), shared with `hytlb-core`'s anchor
//! scheme.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod cluster;
mod colt;
mod rmm;
mod scheme;
mod shared_l2;
mod thp;
mod thp1g;

pub use baseline::BaselineScheme;
pub use cluster::{ClusterScheme, CLUSTER_SPAN};
pub use colt::ColtScheme;
pub use rmm::RmmScheme;
pub use scheme::{
    run_batch, AccessResult, BatchFault, LatencyModel, SchemeStats, TranslationPath,
    TranslationScheme,
};
pub use shared_l2::{AnchorHit, AnchorIndexing, SharedL2};
pub use thp::ThpScheme;
pub use thp1g::Thp1GScheme;
