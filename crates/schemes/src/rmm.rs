//! Redundant Memory Mapping (Karakostas et al., ISCA 2015).
//!
//! RMM keeps the baseline paged translation (4 KB + 2 MB in the shared L2)
//! and *redundantly* maps large allocations as variable-length ranges held
//! in a small fully-associative range TLB (32 entries, Table 3). A range
//! hit costs 8 cycles; a miss falls back to the page walk, which also
//! refills the range TLB from the range table (modelled here from the OS's
//! chunk list).
//!
//! The scheme's character in the paper: near-perfect when a few huge
//! ranges cover the footprint (max contiguity), nearly useless when the
//! mapping is shattered into more small chunks than 32 entries can span
//! (low/medium contiguity).

use crate::scheme::{AccessResult, LatencyModel, SchemeStats, TranslationPath, TranslationScheme};
use crate::shared_l2::SharedL2;
use hytlb_mem::{AddressSpaceMap, ChunkCursor};
use hytlb_pagetable::{PageTable, PageWalker};
use hytlb_tlb::{L1Tlb, RangeEntry, RangeTlb};
use hytlb_types::{Cycles, PageSize, VirtAddr};
use std::sync::Arc;

/// Minimum chunk length (pages) the OS promotes to a range: only regions
/// *beyond huge-page reach* (> 2 MB) become ranges — smaller contiguity is
/// already served as well by 2 MB/4 KB paged entries, and per-chunk ranges
/// for small chunks would only thrash the 32-entry range TLB. This matches
/// the paper's observed behaviour: at medium contiguity (chunks ≤ 512
/// pages) "RMM also shows similar results to THP, due to the lack of high
/// contiguity" (§5.2.1), while at high/max contiguity RMM nearly
/// eliminates misses.
const MIN_RANGE_PAGES: u64 = hytlb_types::HUGE_PAGE_PAGES + 1;

/// The RMM scheme.
#[derive(Debug)]
pub struct RmmScheme {
    l1: L1Tlb,
    l2: SharedL2,
    ranges: RangeTlb,
    table: PageTable,
    walker: PageWalker,
    latency: LatencyModel,
    stats: SchemeStats,
    map: Arc<AddressSpaceMap>,
    /// Last-chunk cache for the walk-path range-table probe; `map` is never
    /// mutated after construction, so the cursor can never go stale.
    chunk_cursor: ChunkCursor,
}

impl RmmScheme {
    /// Builds the RMM MMU with the paper's 32-entry range TLB.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, latency: LatencyModel) -> Self {
        Self::with_range_entries(map, latency, 32)
    }

    /// Builds RMM with an explicit range-TLB capacity (for sensitivity
    /// studies).
    ///
    /// # Panics
    ///
    /// Panics if `range_entries` is zero.
    #[must_use]
    pub fn with_range_entries(
        map: Arc<AddressSpaceMap>,
        latency: LatencyModel,
        range_entries: usize,
    ) -> Self {
        RmmScheme {
            l1: L1Tlb::paper_default(),
            l2: SharedL2::paper_default(),
            ranges: RangeTlb::new(range_entries),
            table: PageTable::from_map(&map, true),
            walker: PageWalker::default(),
            latency,
            stats: SchemeStats::default(),
            map,
            chunk_cursor: ChunkCursor::default(),
        }
    }

    /// Live range-TLB entries.
    #[must_use]
    pub fn cached_ranges(&self) -> usize {
        self.ranges.len()
    }
}

impl TranslationScheme for RmmScheme {
    fn name(&self) -> &str {
        "RMM"
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.l2.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.l2.lookup_2m(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Huge2M);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.ranges.lookup(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::CoalescedHit,
                cycles: self.latency.coalesced_hit,
                pfn: Some(pfn),
            }
        } else {
            let walk = self.walker.walk(&self.table, vpn);
            match walk.leaf {
                Some(leaf) => {
                    let pfn = leaf.pfn_for(vpn);
                    match leaf.size {
                        PageSize::Base4K => self.l2.insert_4k(vpn, pfn),
                        PageSize::Huge2M => self.l2.insert_2m(leaf.head_vpn, leaf.head_pfn),
                        // audit:allow(panic): invariant — from_map never
                        // builds 1 GB leaves for this scheme.
                        PageSize::Giant1G => unreachable!("no 1GB leaves here"),
                    }
                    // Refill the range TLB from the range table: the chunk
                    // containing this page, if large enough to be a range.
                    if let Some(chunk) = self.map.chunk_containing_with(vpn, &mut self.chunk_cursor)
                    {
                        if chunk.len >= MIN_RANGE_PAGES {
                            self.ranges.insert(RangeEntry {
                                start_vpn: chunk.vpn,
                                start_pfn: chunk.pfn,
                                len: chunk.len,
                            });
                        }
                    }
                    self.l1.insert(vpn, pfn, leaf.size);
                    AccessResult {
                        path: TranslationPath::Walk,
                        cycles: walk.cycles,
                        pfn: Some(pfn),
                    }
                }
                None => {
                    AccessResult { path: TranslationPath::Fault, cycles: walk.cycles, pfn: None }
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), crate::scheme::BatchFault> {
        crate::scheme::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.ranges.flush();
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.l2.geometry());
        g.push(self.ranges.geometry("Range TLB"));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;
    use hytlb_types::VirtPageNum;

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    fn touch_all(s: &mut RmmScheme, map: &AddressSpaceMap, rounds: usize) {
        for _ in 0..rounds {
            for (vpn, pfn) in map.iter_pages() {
                assert_eq!(s.access(va(vpn)).pfn, Some(pfn), "at {vpn}");
            }
        }
    }

    #[test]
    fn max_contiguity_nearly_eliminates_misses() {
        let map = Arc::new(Scenario::MaxContiguity.generate(8192, 1));
        let mut s = RmmScheme::new(Arc::clone(&map), LatencyModel::default());
        touch_all(&mut s, &map, 2);
        let st = s.stats();
        // After the handful of cold walks, everything hits.
        assert!(st.walks <= 64, "walks = {}", st.walks);
        assert!(s.cached_ranges() <= 4);
    }

    #[test]
    fn low_contiguity_defeats_the_range_tlb() {
        let map = Arc::new(Scenario::LowContiguity.generate(8192, 2));
        let mut s = RmmScheme::new(Arc::clone(&map), LatencyModel::default());
        // Random access order (a golden-ratio stride walks all pages): with
        // ~1000 small chunks, 32 range entries cover almost nothing.
        let pages: Vec<_> = map.iter_pages().collect();
        let n = pages.len() as u64;
        for i in 0..2 * n {
            let idx = (i.wrapping_mul(11_400_714_819_323_198_485) % n) as usize;
            let (vpn, pfn) = pages[idx];
            assert_eq!(s.access(va(vpn)).pfn, Some(pfn));
        }
        let st = s.stats();
        assert!(st.walks as f64 > 0.3 * st.accesses as f64, "unexpectedly effective: {st:?}");
    }

    #[test]
    fn range_hits_cost_eight_cycles() {
        // A large chunk deliberately misaligned for 2 MB pages, so the L2
        // can only cache 4 KB entries and the far page must hit the range.
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(3),
            PhysFrameNum::new(1001),
            600,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = RmmScheme::new(Arc::clone(&map), LatencyModel::default());
        let first = map.chunks().next().unwrap().vpn;
        s.access(va(first));
        // A far page of the same chunk: L1 and L2 miss, range hit.
        let r = s.access(va(first + 300));
        assert_eq!(r.path, TranslationPath::CoalescedHit);
        assert_eq!(r.cycles, Cycles::new(8));
        assert_eq!(r.pfn, Some(PhysFrameNum::new(1301)));
    }

    #[test]
    fn singleton_chunks_do_not_enter_range_tlb() {
        let mut m = AddressSpaceMap::new();
        m.map_range(
            VirtPageNum::new(0),
            PhysFrameNum::new(100),
            1,
            hytlb_types::Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let mut s = RmmScheme::new(Arc::clone(&map), LatencyModel::default());
        s.access(va(VirtPageNum::new(0)));
        assert_eq!(s.cached_ranges(), 0);
    }

    use hytlb_types::PhysFrameNum;

    #[test]
    fn flush_clears_ranges_too() {
        // Footprint large enough that chunks exceed the >2MB range
        // threshold.
        let map = Arc::new(Scenario::MaxContiguity.generate(4096, 4));
        let mut s = RmmScheme::new(Arc::clone(&map), LatencyModel::default());
        touch_all(&mut s, &map, 1);
        assert!(s.cached_ranges() > 0);
        s.flush();
        assert_eq!(s.cached_ranges(), 0);
    }
}
