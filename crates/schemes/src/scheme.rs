//! The common scheme interface and the Table 3 latency model.

use hytlb_tlb::TlbGeometry;
use hytlb_types::{Cycles, PhysFrameNum, VirtAddr};

/// The timing model of the paper's Table 3.
///
/// L1 TLB hits are free (the L1 TLB is accessed in parallel with the L1
/// cache); regular L2 hits cost 7 cycles; coalesced hits (anchor, cluster or
/// range TLB) cost 8; a page-table walk costs 50.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LatencyModel {
    /// Regular L2 TLB hit latency.
    pub l2_hit: Cycles,
    /// Anchor / cluster / range TLB hit latency.
    pub coalesced_hit: Cycles,
    /// Page-table walk latency.
    pub walk: Cycles,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            l2_hit: Cycles::new(7),
            coalesced_hit: Cycles::new(8),
            walk: Cycles::new(50),
        }
    }
}

/// Which structure resolved (or failed to resolve) one translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TranslationPath {
    /// Hit in the L1 TLB (latency hidden).
    L1Hit,
    /// Hit on a regular (4 KB or 2 MB) L2 entry.
    L2RegularHit,
    /// Hit on a coalesced entry: anchor, cluster or range.
    CoalescedHit,
    /// L2 miss resolved by a page-table walk.
    Walk,
    /// The address is not mapped at all (should not occur in well-formed
    /// experiments; counted separately so it can never masquerade as data).
    Fault,
}

/// The outcome of a single address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The structure that produced the translation.
    pub path: TranslationPath,
    /// Cycles charged for this access.
    pub cycles: Cycles,
    /// The translated frame, `None` on fault.
    pub pfn: Option<PhysFrameNum>,
}

/// Per-scheme accumulated statistics.
///
/// The paper's headline metric, "TLB misses", is [`SchemeStats::walks`]:
/// translations that had to walk the page table. Table 5's breakdown of L2
/// accesses is `l2_regular_hits` / `coalesced_hits` / `walks` over
/// [`SchemeStats::l2_accesses`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SchemeStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Resolved by the L1 TLB.
    pub l1_hits: u64,
    /// Resolved by a regular (4 KB / 2 MB) L2 entry.
    pub l2_regular_hits: u64,
    /// Resolved by a coalesced entry (anchor / cluster / range).
    pub coalesced_hits: u64,
    /// Resolved by a page-table walk — the paper's "TLB misses".
    pub walks: u64,
    /// Unmapped addresses encountered.
    pub faults: u64,
    /// Total translation cycles.
    pub cycles: Cycles,
}

impl SchemeStats {
    /// Accesses that reached the L2 structures (= L1 misses).
    #[must_use]
    pub fn l2_accesses(&self) -> u64 {
        self.accesses - self.l1_hits
    }

    /// Fraction of L2 accesses resolved by regular entries (Table 5
    /// "R.hit").
    #[must_use]
    pub fn l2_regular_hit_rate(&self) -> f64 {
        ratio(self.l2_regular_hits, self.l2_accesses())
    }

    /// Fraction of L2 accesses resolved by coalesced entries (Table 5
    /// "A.hit" for the anchor scheme).
    #[must_use]
    pub fn l2_coalesced_hit_rate(&self) -> f64 {
        ratio(self.coalesced_hits, self.l2_accesses())
    }

    /// Fraction of L2 accesses that missed everything (Table 5 "L2 miss").
    #[must_use]
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.walks + self.faults, self.l2_accesses())
    }

    /// Records one access outcome.
    pub fn record(&mut self, result: AccessResult) {
        self.accesses += 1;
        self.cycles += result.cycles;
        match result.path {
            TranslationPath::L1Hit => self.l1_hits += 1,
            TranslationPath::L2RegularHit => self.l2_regular_hits += 1,
            TranslationPath::CoalescedHit => self.coalesced_hits += 1,
            TranslationPath::Walk => self.walks += 1,
            TranslationPath::Fault => self.faults += 1,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An unmapped address hit inside [`TranslationScheme::access_batch`].
///
/// Identifies the first faulting access so the engine can surface the same
/// error the scalar path would have produced at that point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchFault {
    /// Position of the faulting address within the batch slice.
    pub index: usize,
    /// The virtual address that failed to translate.
    pub vaddr: VirtAddr,
}

/// Drives a batch of accesses through a *concrete* scheme type.
///
/// Generic over `S` so the per-access `access` call is statically dispatched
/// (and inlinable) instead of going through the `dyn TranslationScheme`
/// vtable; scheme impls forward `access_batch` here to devirtualize their
/// inner loop. Stops at the first fault, reporting its batch position.
pub fn run_batch<S: TranslationScheme + ?Sized>(
    scheme: &mut S,
    vaddrs: &[VirtAddr],
) -> Result<(), BatchFault> {
    for (index, &vaddr) in vaddrs.iter().enumerate() {
        let result = scheme.access(vaddr);
        if result.pfn.is_none() {
            return Err(BatchFault { index, vaddr });
        }
    }
    Ok(())
}

/// A complete address-translation scheme: L1 TLB + L2 structures + walker.
///
/// Implementations own their TLB state and their view of the page table;
/// the simulation engine drives them with raw virtual addresses. Schemes
/// are `Send` so experiment matrices can run cells on worker threads.
pub trait TranslationScheme: Send {
    /// Short scheme label as used in the paper's figures ("Base", "THP",
    /// "Cluster", "Cluster-2MB", "RMM", "Dynamic", "Static Ideal").
    fn name(&self) -> &str;

    /// Translates one virtual address, updating TLB state and statistics.
    fn access(&mut self, vaddr: VirtAddr) -> AccessResult;

    /// Translates a batch of virtual addresses, stopping at the first
    /// unmapped one. Statistics accumulate exactly as if each address had
    /// been passed to [`TranslationScheme::access`] in order — the batch
    /// form only exists so concrete schemes can run their inner loop
    /// without a per-access virtual call (see [`run_batch`]). The default
    /// loops scalar `access`.
    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), BatchFault> {
        for (index, &vaddr) in vaddrs.iter().enumerate() {
            let result = self.access(vaddr);
            if result.pfn.is_none() {
                return Err(BatchFault { index, vaddr });
            }
        }
        Ok(())
    }

    /// Accumulated statistics.
    fn stats(&self) -> &SchemeStats;

    /// Notifies the scheme that an epoch boundary passed (the paper checks
    /// memory mappings every billion instructions). Only the dynamic anchor
    /// scheme reacts; the default is a no-op.
    fn on_epoch(&mut self) {}

    /// Flushes all TLB state (context switch / shootdown).
    fn flush(&mut self);

    /// The anchor distance currently in effect, for schemes that have one
    /// (Table 6 reports it). Non-anchor schemes return `None`.
    fn anchor_distance(&self) -> Option<u64> {
        None
    }

    /// Geometries of every TLB structure this scheme instantiates, so
    /// `hytlb-audit -- invariants` can verify the architectural constraints
    /// (power-of-two set counts, index masks covering the index bits)
    /// without reaching into scheme internals. Default: no structures.
    fn geometries(&self) -> Vec<TlbGeometry> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_match_table3() {
        let m = LatencyModel::default();
        assert_eq!(m.l2_hit, Cycles::new(7));
        assert_eq!(m.coalesced_hit, Cycles::new(8));
        assert_eq!(m.walk, Cycles::new(50));
    }

    #[test]
    fn stats_record_and_rates() {
        let mut s = SchemeStats::default();
        let mk = |path, cyc| AccessResult {
            path,
            cycles: Cycles::new(cyc),
            pfn: Some(PhysFrameNum::new(0)),
        };
        s.record(mk(TranslationPath::L1Hit, 0));
        s.record(mk(TranslationPath::L2RegularHit, 7));
        s.record(mk(TranslationPath::CoalescedHit, 8));
        s.record(mk(TranslationPath::Walk, 50));
        assert_eq!(s.accesses, 4);
        assert_eq!(s.l2_accesses(), 3);
        assert!((s.l2_regular_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.l2_coalesced_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.l2_miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.cycles, Cycles::new(65));
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = SchemeStats::default();
        assert_eq!(s.l2_miss_rate(), 0.0);
        assert_eq!(s.l2_regular_hit_rate(), 0.0);
    }
}
