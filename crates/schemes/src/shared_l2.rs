//! The shared, mixed-entry L2 TLB array.
//!
//! One physical set-associative array holds 4 KB, 2 MB and anchor entries
//! simultaneously (paper Table 3, "4KB/2MB/Anchor (shared): 1024 entry,
//! 8 way"). Each entry kind probes the array with its own set-index and tag
//! derivation:
//!
//! * 4 KB: index = low VPN bits, tag = VPN.
//! * 2 MB: index = low bits of VPN ≫ 9, tag = huge-page head.
//! * anchor: index = bits `[d, d+N)` of the VPN (paper Figure 6) so that
//!   consecutive anchors — whose low `d` VPN bits are all zero — spread over
//!   *all* sets; tag = AVPN. The naive alternative (index from the low VPN
//!   bits) piles every anchor into the sets whose index bits are zero and is
//!   provided only as an ablation.

use crate::scheme::LatencyModel;
use hytlb_tlb::SetAssocTlb;
use hytlb_types::{PhysFrameNum, VirtPageNum, HUGE_PAGE_PAGES};

/// How anchor entries are indexed into the shared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum AnchorIndexing {
    /// The paper's Figure 6 scheme: index bits start above the anchor
    /// distance, so anchors use every set.
    #[default]
    Fig6,
    /// Naive low-VPN-bit indexing — anchors collide into few sets. Ablation
    /// only.
    NaiveLowBits,
}

/// Entry kinds, packed into the high bits of the tag so kinds never alias.
const KIND_4K: u64 = 1 << 60;
const KIND_2M: u64 = 2 << 60;
const KIND_ANCHOR: u64 = 3 << 60;

/// Payload stored per entry: frame plus (for anchors) the contiguity field.
#[derive(Debug, Clone, Copy)]
struct Payload {
    pfn: u64,
    contiguity: u64,
}

/// An anchor-entry hit: everything needed to finish the translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnchorHit {
    /// The anchor's VPN.
    pub avpn: VirtPageNum,
    /// The anchor's frame (`APPN`).
    pub appn: PhysFrameNum,
    /// Pages covered starting at `avpn`.
    pub contiguity: u64,
}

impl AnchorHit {
    /// `true` when `vpn` lies within the anchor's contiguous block — the
    /// paper's "contiguity match" comparator of Figure 6.
    #[must_use]
    pub fn covers(&self, vpn: VirtPageNum) -> bool {
        vpn >= self.avpn && (vpn - self.avpn) < self.contiguity
    }

    /// `APPN + (VPN − AVPN)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `vpn` is not covered.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> PhysFrameNum {
        debug_assert!(self.covers(vpn));
        self.appn + (vpn - self.avpn)
    }
}

/// The shared 4 KB / 2 MB / anchor L2 array.
///
/// # Examples
///
/// ```
/// use hytlb_schemes::SharedL2;
/// use hytlb_types::{PhysFrameNum, VirtPageNum};
///
/// let mut l2 = SharedL2::new(128, 8);
/// l2.insert_4k(VirtPageNum::new(10), PhysFrameNum::new(99));
/// assert_eq!(l2.lookup_4k(VirtPageNum::new(10)), Some(PhysFrameNum::new(99)));
/// ```
#[derive(Debug, Clone)]
pub struct SharedL2 {
    tlb: SetAssocTlb<Payload>,
    set_mask: u64,
}

impl SharedL2 {
    /// Creates a shared array of `sets` × `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        let tlb = SetAssocTlb::new(sets, ways);
        SharedL2 { set_mask: (sets - 1) as u64, tlb }
    }

    /// The paper's L2: 1024 entries, 8-way (128 sets).
    #[must_use]
    pub fn paper_default() -> Self {
        SharedL2::new(128, 8)
    }

    /// Entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.tlb.capacity()
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tlb.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tlb.is_empty()
    }

    /// Geometry of the shared array, for invariant auditing.
    #[must_use]
    pub fn geometry(&self) -> hytlb_tlb::TlbGeometry {
        self.tlb.geometry("L2 shared")
    }

    fn set_4k(&self, vpn: VirtPageNum) -> usize {
        vpn.index_bits(0, self.set_mask)
    }

    fn set_2m(&self, head: VirtPageNum) -> usize {
        head.index_bits(9, self.set_mask)
    }

    fn set_anchor(&self, avpn: VirtPageNum, distance_log2: u32, indexing: AnchorIndexing) -> usize {
        match indexing {
            AnchorIndexing::Fig6 => avpn.index_bits(distance_log2, self.set_mask),
            AnchorIndexing::NaiveLowBits => avpn.index_bits(0, self.set_mask),
        }
    }

    /// Looks up a 4 KB entry.
    pub fn lookup_4k(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let set = self.set_4k(vpn);
        self.tlb.lookup(set, KIND_4K | vpn.as_u64()).map(|p| PhysFrameNum::new(p.pfn))
    }

    /// Inserts a 4 KB entry.
    pub fn insert_4k(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum) {
        let set = self.set_4k(vpn);
        self.tlb.insert(set, KIND_4K | vpn.as_u64(), Payload { pfn: pfn.as_u64(), contiguity: 0 });
    }

    /// Looks up the 2 MB entry covering `vpn`, returning the frame for
    /// `vpn` itself.
    pub fn lookup_2m(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let head = vpn.align_down(HUGE_PAGE_PAGES);
        let set = self.set_2m(head);
        self.tlb
            .lookup(set, KIND_2M | head.as_u64())
            .map(|p| PhysFrameNum::new(p.pfn) + (vpn - head))
    }

    /// Inserts a 2 MB entry.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `head`/`head_pfn` are not 2 MB-aligned.
    pub fn insert_2m(&mut self, head: VirtPageNum, head_pfn: PhysFrameNum) {
        debug_assert!(head.is_aligned(HUGE_PAGE_PAGES));
        debug_assert!(head_pfn.is_aligned(HUGE_PAGE_PAGES));
        let set = self.set_2m(head);
        self.tlb.insert(
            set,
            KIND_2M | head.as_u64(),
            Payload { pfn: head_pfn.as_u64(), contiguity: 0 },
        );
    }

    /// Looks up the anchor entry for `vpn` under anchor distance
    /// `1 << distance_log2`. A hit returns the anchor's data whether or not
    /// the contiguity covers `vpn` — the caller implements the Table 2
    /// decision (a hit with a failed contiguity match still walks).
    pub fn lookup_anchor(
        &mut self,
        vpn: VirtPageNum,
        distance_log2: u32,
        indexing: AnchorIndexing,
    ) -> Option<AnchorHit> {
        let avpn = vpn.align_down(1 << distance_log2);
        let set = self.set_anchor(avpn, distance_log2, indexing);
        self.tlb.lookup(set, KIND_ANCHOR | avpn.as_u64()).map(|p| AnchorHit {
            avpn,
            appn: PhysFrameNum::new(p.pfn),
            contiguity: p.contiguity,
        })
    }

    /// Inserts an anchor entry.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `avpn` is not aligned to the anchor distance.
    pub fn insert_anchor(
        &mut self,
        avpn: VirtPageNum,
        appn: PhysFrameNum,
        contiguity: u64,
        distance_log2: u32,
        indexing: AnchorIndexing,
    ) {
        debug_assert!(avpn.is_aligned(1 << distance_log2));
        let set = self.set_anchor(avpn, distance_log2, indexing);
        self.tlb.insert(
            set,
            KIND_ANCHOR | avpn.as_u64(),
            Payload { pfn: appn.as_u64(), contiguity },
        );
    }

    /// Flushes the whole array (shootdown; also used on anchor-distance
    /// changes, §3.3 "we will invalidate the entire TLB").
    pub fn flush(&mut self) {
        self.tlb.flush();
    }

    /// The latency a hit in this array costs under `model`, by entry kind:
    /// regular entries 7 cycles, anchors 8 (extra comparator stage).
    #[must_use]
    pub fn hit_latency(model: &LatencyModel, is_anchor: bool) -> hytlb_types::Cycles {
        if is_anchor {
            model.coalesced_hit
        } else {
            model.l2_hit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_do_not_alias() {
        let mut l2 = SharedL2::new(4, 8);
        // VPN 0 as a 4K entry, as a 2M head and as an anchor: all coexist.
        l2.insert_4k(VirtPageNum::new(0), PhysFrameNum::new(1));
        l2.insert_2m(VirtPageNum::new(0), PhysFrameNum::new(512));
        l2.insert_anchor(VirtPageNum::new(0), PhysFrameNum::new(99), 16, 3, AnchorIndexing::Fig6);
        assert_eq!(l2.lookup_4k(VirtPageNum::new(0)), Some(PhysFrameNum::new(1)));
        assert_eq!(l2.lookup_2m(VirtPageNum::new(0)), Some(PhysFrameNum::new(512)));
        let a = l2.lookup_anchor(VirtPageNum::new(0), 3, AnchorIndexing::Fig6).unwrap();
        assert_eq!(a.appn, PhysFrameNum::new(99));
        assert_eq!(l2.len(), 3);
    }

    #[test]
    fn huge_lookup_offsets_within_page() {
        let mut l2 = SharedL2::paper_default();
        l2.insert_2m(VirtPageNum::new(1024), PhysFrameNum::new(4096));
        assert_eq!(l2.lookup_2m(VirtPageNum::new(1024 + 100)), Some(PhysFrameNum::new(4196)));
        assert_eq!(l2.lookup_2m(VirtPageNum::new(2048)), None);
    }

    #[test]
    fn anchor_hit_covers_and_translates() {
        let mut l2 = SharedL2::paper_default();
        let avpn = VirtPageNum::new(64);
        l2.insert_anchor(avpn, PhysFrameNum::new(1000), 10, 4, AnchorIndexing::Fig6);
        let hit = l2.lookup_anchor(VirtPageNum::new(70), 4, AnchorIndexing::Fig6).unwrap();
        assert!(hit.covers(VirtPageNum::new(70)));
        assert_eq!(hit.translate(VirtPageNum::new(70)), PhysFrameNum::new(1006));
        // Offset 10..16 is inside the anchor region but beyond contiguity.
        let hit = l2.lookup_anchor(VirtPageNum::new(75), 4, AnchorIndexing::Fig6).unwrap();
        assert!(!hit.covers(VirtPageNum::new(75)));
    }

    #[test]
    fn fig6_indexing_spreads_anchors_across_sets() {
        let mut fig6 = SharedL2::new(128, 8);
        let mut naive = SharedL2::new(128, 8);
        let d_log = 9u32; // distance 512
                          // 1024 consecutive anchors + immediate re-probe.
        let mut fig6_present = 0;
        let mut naive_present = 0;
        for i in 0..1024u64 {
            let avpn = VirtPageNum::new(i << d_log);
            fig6.insert_anchor(avpn, PhysFrameNum::new(i), 512, d_log, AnchorIndexing::Fig6);
            naive.insert_anchor(
                avpn,
                PhysFrameNum::new(i),
                512,
                d_log,
                AnchorIndexing::NaiveLowBits,
            );
        }
        for i in 0..1024u64 {
            let vpn = VirtPageNum::new(i << d_log);
            if fig6.lookup_anchor(vpn, d_log, AnchorIndexing::Fig6).is_some() {
                fig6_present += 1;
            }
            if naive.lookup_anchor(vpn, d_log, AnchorIndexing::NaiveLowBits).is_some() {
                naive_present += 1;
            }
        }
        // Fig6 retains the full working set (1024 anchors in 1024 entries);
        // naive indexing crams every anchor into set 0 and keeps only 8.
        assert_eq!(fig6_present, 1024);
        assert_eq!(naive_present, 8);
    }

    #[test]
    fn capacity_matches_paper() {
        assert_eq!(SharedL2::paper_default().capacity(), 1024);
    }

    #[test]
    fn mixed_kinds_compete_for_the_same_ways() {
        // One set, eight ways: 4 KB, 2 MB and anchor entries share the
        // physical storage (Table 3: one shared array), so nine entries
        // mapping to the same set evict the LRU one across kinds.
        let mut l2 = SharedL2::new(1, 8);
        for i in 0..8u64 {
            l2.insert_4k(VirtPageNum::new(i), PhysFrameNum::new(i));
        }
        assert_eq!(l2.len(), 8);
        // Touch everything except VPN 0 so it becomes LRU.
        for i in 1..8u64 {
            let _ = l2.lookup_4k(VirtPageNum::new(i));
        }
        l2.insert_anchor(VirtPageNum::new(64), PhysFrameNum::new(640), 8, 3, AnchorIndexing::Fig6);
        assert_eq!(l2.len(), 8, "anchor evicted a 4K way");
        assert_eq!(l2.lookup_4k(VirtPageNum::new(0)), None);
        assert!(l2.lookup_anchor(VirtPageNum::new(65), 3, AnchorIndexing::Fig6).is_some());
    }

    #[test]
    fn anchor_lookup_respects_distance_alignment() {
        let mut l2 = SharedL2::paper_default();
        l2.insert_anchor(VirtPageNum::new(32), PhysFrameNum::new(320), 16, 4, AnchorIndexing::Fig6);
        // A lookup under a different distance computes a different AVPN
        // and must miss.
        assert!(l2.lookup_anchor(VirtPageNum::new(40), 4, AnchorIndexing::Fig6).is_some());
        assert!(l2.lookup_anchor(VirtPageNum::new(40), 6, AnchorIndexing::Fig6).is_none());
    }

    #[test]
    fn flush_clears() {
        let mut l2 = SharedL2::paper_default();
        l2.insert_4k(VirtPageNum::new(3), PhysFrameNum::new(4));
        l2.flush();
        assert!(l2.is_empty());
        assert_eq!(l2.lookup_4k(VirtPageNum::new(3)), None);
    }
}
