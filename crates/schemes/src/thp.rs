//! Transparent huge pages: 4 KB + 2 MB entries in the shared L2.

use crate::scheme::{AccessResult, LatencyModel, SchemeStats, TranslationPath, TranslationScheme};
use crate::shared_l2::SharedL2;
use hytlb_mem::AddressSpaceMap;
use hytlb_pagetable::{PageTable, PageWalker};
use hytlb_tlb::L1Tlb;
use hytlb_types::{Cycles, PageSize, VirtAddr};
use std::sync::Arc;

/// The paper's `THP` configuration: the OS maps 2 MB-shaped regions with
/// huge PTEs (Linux transparent huge pages), and both page sizes share the
/// 1024-entry 8-way L2 (Table 3, "Baseline/THP").
#[derive(Debug)]
pub struct ThpScheme {
    l1: L1Tlb,
    l2: SharedL2,
    table: PageTable,
    walker: PageWalker,
    latency: LatencyModel,
    stats: SchemeStats,
    _map: Arc<AddressSpaceMap>,
}

impl ThpScheme {
    /// Builds the THP MMU over a mapping: every huge-page-shaped 2 MB
    /// region becomes a 2 MB leaf.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, latency: LatencyModel) -> Self {
        ThpScheme {
            l1: L1Tlb::paper_default(),
            l2: SharedL2::paper_default(),
            table: PageTable::from_map(&map, true),
            walker: PageWalker::default(),
            latency,
            stats: SchemeStats::default(),
            _map: map,
        }
    }

    /// Number of 2 MB leaves the OS installed for this mapping.
    #[must_use]
    pub fn huge_leaves(&self) -> u64 {
        self.table.mapped_huge_pages()
    }
}

impl TranslationScheme for ThpScheme {
    fn name(&self) -> &str {
        "THP"
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.l2.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.l2.lookup_2m(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Huge2M);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else {
            let walk = self.walker.walk(&self.table, vpn);
            match walk.leaf {
                Some(leaf) => {
                    let pfn = leaf.pfn_for(vpn);
                    match leaf.size {
                        PageSize::Base4K => self.l2.insert_4k(vpn, pfn),
                        PageSize::Huge2M => self.l2.insert_2m(leaf.head_vpn, leaf.head_pfn),
                        // audit:allow(panic): invariant — from_map never
                        // builds 1 GB leaves for this scheme.
                        PageSize::Giant1G => unreachable!("no 1GB leaves here"),
                    }
                    self.l1.insert(vpn, pfn, leaf.size);
                    AccessResult {
                        path: TranslationPath::Walk,
                        cycles: walk.cycles,
                        pfn: Some(pfn),
                    }
                }
                None => {
                    AccessResult { path: TranslationPath::Fault, cycles: walk.cycles, pfn: None }
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), crate::scheme::BatchFault> {
        crate::scheme::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.l2.geometry());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BaselineScheme;
    use hytlb_mem::Scenario;
    use hytlb_types::VirtPageNum;

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    #[test]
    fn huge_shaped_mapping_needs_one_walk_per_2mb() {
        // A max-contiguity mapping is fully huge-page-shaped (modulo edge
        // remainders), so touching all 2048 pages costs ~4 walks.
        let map = Arc::new(Scenario::MaxContiguity.generate(2048, 1));
        let mut s = ThpScheme::new(Arc::clone(&map), LatencyModel::default());
        assert!(s.huge_leaves() >= 2);
        for (vpn, pfn) in map.iter_pages() {
            assert_eq!(s.access(va(vpn)).pfn, Some(pfn));
        }
        let walks = s.stats().walks;
        assert!(walks <= 32, "walks = {walks}");
    }

    #[test]
    fn thp_beats_baseline_on_demand_mapping() {
        let map = Arc::new(Scenario::DemandPaging.generate(8192, 2));
        let mut thp = ThpScheme::new(Arc::clone(&map), LatencyModel::default());
        let mut base = BaselineScheme::new(Arc::clone(&map), LatencyModel::default());
        for (vpn, _) in map.iter_pages() {
            thp.access(va(vpn));
            base.access(va(vpn));
        }
        assert!(thp.stats().walks < base.stats().walks);
    }

    #[test]
    fn thp_useless_on_low_contiguity() {
        let map = Arc::new(Scenario::LowContiguity.generate(4096, 3));
        let s = ThpScheme::new(Arc::clone(&map), LatencyModel::default());
        assert_eq!(s.huge_leaves(), 0);
    }

    #[test]
    fn translations_match_the_map() {
        let map = Arc::new(Scenario::DemandPaging.generate(2048, 4));
        let mut s = ThpScheme::new(Arc::clone(&map), LatencyModel::default());
        for (vpn, pfn) in map.iter_pages() {
            assert_eq!(s.access(va(vpn)).pfn, Some(pfn), "at {vpn}");
        }
    }

    #[test]
    fn l1_caches_huge_translations() {
        let map = Arc::new(Scenario::MaxContiguity.generate(4096, 5));
        let mut s = ThpScheme::new(Arc::clone(&map), LatencyModel::default());
        let head = map.chunks().next().unwrap().vpn;
        s.access(va(head));
        // A different page of the same huge page: L1 hit.
        let r = s.access(va(head + 17));
        assert_eq!(r.path, TranslationPath::L1Hit);
    }
}
