//! THP with 1 GB giant pages — the page-size-scalability extension.
//!
//! §2.1 of the paper: "the latest architecture can support both 4KB and
//! 2MB pages in the L2 TLBs without requiring separate TLBs for each page
//! size, although the 1GB pages use a separate and smaller 1GB page L2
//! TLB" — and argues that the coverage of fixed page sizes "will be
//! eventually limited". This scheme models exactly that hardware: the
//! shared 4 KB/2 MB L2 plus a separate 16-entry 4-way 1 GB TLB, with the
//! OS installing 1 GB leaves wherever the mapping is giant-page-shaped.
//! Comparing it against the anchor TLB quantifies the paper's scalability
//! argument: 16 giant entries cover 16 GB — but only in 1 GB-aligned,
//! fully-contiguous units, which fragmented mappings never provide.

use crate::scheme::{AccessResult, LatencyModel, SchemeStats, TranslationPath, TranslationScheme};
use crate::shared_l2::SharedL2;
use hytlb_mem::AddressSpaceMap;
use hytlb_pagetable::{PageTable, PageWalker};
use hytlb_tlb::{L1Tlb, SetAssocTlb};
use hytlb_types::{
    Cycles, PageSize, PhysFrameNum, VirtAddr, VirtPageNum, GIANT_PAGE_PAGES, HUGE_PAGE_PAGES,
};
use std::sync::Arc;

/// THP extended with 1 GB pages and their separate small L2 TLB.
#[derive(Debug)]
pub struct Thp1GScheme {
    l1: L1Tlb,
    l2: SharedL2,
    /// The separate 1 GB-page L2 TLB: 16 entries, 4-way (Skylake-class).
    giant: SetAssocTlb<u64>,
    table: PageTable,
    walker: PageWalker,
    latency: LatencyModel,
    stats: SchemeStats,
    _map: Arc<AddressSpaceMap>,
}

impl Thp1GScheme {
    /// Builds the MMU: giant-page-shaped 1 GB regions become 1 GB leaves,
    /// remaining huge-page-shaped regions become 2 MB leaves, the rest
    /// 4 KB.
    #[must_use]
    pub fn new(map: Arc<AddressSpaceMap>, latency: LatencyModel) -> Self {
        let mut table = PageTable::new();
        for chunk in map.chunks() {
            let mut vpn = chunk.vpn;
            let end = chunk.end_vpn();
            while vpn < end {
                // Giant/huge candidacy is decided chunk-locally: `vpn` is
                // aligned and inside this chunk with `end - vpn` pages to
                // spare, which is everything `map.giant_page_at(vpn) ==
                // Some(vpn)` would check except PFN alignment — so only
                // that remains, with no `BTreeMap` probe per region.
                // audit:allow(panic): invariant — `vpn < end`, so it lies
                // inside `chunk` and always translates.
                let pfn = chunk.translate(vpn).expect("inside");
                if vpn.is_aligned(GIANT_PAGE_PAGES)
                    && end - vpn >= GIANT_PAGE_PAGES
                    && pfn.is_aligned(GIANT_PAGE_PAGES)
                {
                    table.map_giant(vpn, pfn, chunk.perms);
                    vpn += GIANT_PAGE_PAGES;
                } else if vpn.is_aligned(HUGE_PAGE_PAGES)
                    && end - vpn >= HUGE_PAGE_PAGES
                    && pfn.is_aligned(HUGE_PAGE_PAGES)
                {
                    table.map_huge(vpn, pfn, chunk.perms);
                    vpn += HUGE_PAGE_PAGES;
                } else {
                    table.map(vpn, pfn, chunk.perms);
                    vpn += 1;
                }
            }
        }
        Thp1GScheme {
            l1: L1Tlb::paper_default(),
            l2: SharedL2::paper_default(),
            giant: SetAssocTlb::new(4, 4),
            table,
            walker: PageWalker::default(),
            latency,
            stats: SchemeStats::default(),
            _map: map,
        }
    }

    /// Number of 1 GB leaves the OS installed.
    #[must_use]
    pub fn giant_leaves(&self) -> u64 {
        self.table.mapped_giant_pages()
    }

    fn giant_set(&self, head: VirtPageNum) -> usize {
        head.index_bits(18, (self.giant.sets() as u64) - 1)
    }

    fn lookup_giant(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let head = vpn.align_down(GIANT_PAGE_PAGES);
        let set = self.giant_set(head);
        self.giant.lookup(set, head.as_u64()).map(|&pfn| PhysFrameNum::new(pfn) + (vpn - head))
    }
}

impl TranslationScheme for Thp1GScheme {
    fn name(&self) -> &str {
        "THP-1G"
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        let vpn = vaddr.page_number();
        let result = if let Some(pfn) = self.l1.lookup(vpn) {
            AccessResult { path: TranslationPath::L1Hit, cycles: Cycles::ZERO, pfn: Some(pfn) }
        } else if let Some(pfn) = self.l2.lookup_4k(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Base4K);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.l2.lookup_2m(vpn) {
            self.l1.insert(vpn, pfn, PageSize::Huge2M);
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else if let Some(pfn) = self.lookup_giant(vpn) {
            // The separate 1 GB TLB is probed in parallel with the shared
            // L2; a hit costs the same 7 cycles.
            AccessResult {
                path: TranslationPath::L2RegularHit,
                cycles: self.latency.l2_hit,
                pfn: Some(pfn),
            }
        } else {
            let walk = self.walker.walk(&self.table, vpn);
            match walk.leaf {
                Some(leaf) => {
                    let pfn = leaf.pfn_for(vpn);
                    match leaf.size {
                        PageSize::Base4K => self.l2.insert_4k(vpn, pfn),
                        PageSize::Huge2M => self.l2.insert_2m(leaf.head_vpn, leaf.head_pfn),
                        PageSize::Giant1G => {
                            let set = self.giant_set(leaf.head_vpn);
                            self.giant.insert(set, leaf.head_vpn.as_u64(), leaf.head_pfn.as_u64());
                        }
                    }
                    self.l1.insert(vpn, pfn, leaf.size);
                    AccessResult {
                        path: TranslationPath::Walk,
                        cycles: walk.cycles,
                        pfn: Some(pfn),
                    }
                }
                None => {
                    AccessResult { path: TranslationPath::Fault, cycles: walk.cycles, pfn: None }
                }
            }
        };
        self.stats.record(result);
        result
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), crate::scheme::BatchFault> {
        crate::scheme::run_batch(self, vaddrs)
    }

    fn stats(&self) -> &SchemeStats {
        &self.stats
    }

    fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.giant.flush();
    }

    fn geometries(&self) -> Vec<hytlb_tlb::TlbGeometry> {
        let mut g = self.l1.geometries();
        g.push(self.l2.geometry());
        g.push(self.giant.geometry("L2 1GB"));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_types::Permissions;

    fn va(vpn: VirtPageNum) -> VirtAddr {
        vpn.base_addr()
    }

    fn giant_map(giants: u64) -> Arc<AddressSpaceMap> {
        let mut m = AddressSpaceMap::new();
        // 1 GB-aligned VA and PA.
        m.map_range(
            VirtPageNum::new(GIANT_PAGE_PAGES * 4),
            PhysFrameNum::new(GIANT_PAGE_PAGES * 8),
            GIANT_PAGE_PAGES * giants,
            Permissions::READ_WRITE,
        );
        Arc::new(m)
    }

    #[test]
    fn giant_shaped_mapping_installs_giant_leaves() {
        let map = giant_map(2);
        let s = Thp1GScheme::new(Arc::clone(&map), LatencyModel::default());
        assert_eq!(s.giant_leaves(), 2);
    }

    #[test]
    fn one_walk_serves_a_whole_gigabyte() {
        let map = giant_map(1);
        let mut s = Thp1GScheme::new(Arc::clone(&map), LatencyModel::default());
        let head = map.chunks().next().unwrap().vpn;
        assert_eq!(s.access(va(head)).path, TranslationPath::Walk);
        // A page 900 MB away: giant-TLB hit (1 GB pages have no L1 array).
        let far = head + 230_000;
        let r = s.access(va(far));
        assert_eq!(r.path, TranslationPath::L2RegularHit);
        assert_eq!(r.pfn, Some(PhysFrameNum::new(GIANT_PAGE_PAGES * 8 + 230_000)));
    }

    #[test]
    fn misaligned_gigabyte_falls_back_to_huge_pages() {
        let mut m = AddressSpaceMap::new();
        // 1 GB of memory, 2 MB-aligned but NOT 1 GB-aligned physically.
        m.map_range(
            VirtPageNum::new(GIANT_PAGE_PAGES),
            PhysFrameNum::new(GIANT_PAGE_PAGES + HUGE_PAGE_PAGES),
            GIANT_PAGE_PAGES,
            Permissions::READ_WRITE,
        );
        let map = Arc::new(m);
        let s = Thp1GScheme::new(Arc::clone(&map), LatencyModel::default());
        assert_eq!(s.giant_leaves(), 0);
        assert_eq!(s.table.mapped_huge_pages(), 512);
    }

    #[test]
    fn translations_match_map() {
        let map = giant_map(1);
        let mut s = Thp1GScheme::new(Arc::clone(&map), LatencyModel::default());
        for (vpn, pfn) in map.iter_pages().step_by(40_961) {
            assert_eq!(s.access(va(vpn)).pfn, Some(pfn), "at {vpn}");
        }
    }

    #[test]
    fn giant_tlb_capacity_is_sixteen() {
        let s = Thp1GScheme::new(giant_map(1), LatencyModel::default());
        assert_eq!(s.giant.capacity(), 16);
    }

    #[test]
    fn flush_clears_giant_tlb() {
        let map = giant_map(1);
        let mut s = Thp1GScheme::new(Arc::clone(&map), LatencyModel::default());
        let head = map.chunks().next().unwrap().vpn;
        s.access(va(head));
        s.flush();
        assert_eq!(s.access(va(head + 7)).path, TranslationPath::Walk);
    }
}
