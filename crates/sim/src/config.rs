//! Evaluation configuration and the scheme registry.

use hytlb_core::{AnchorConfig, AnchorScheme};
use hytlb_mem::AddressSpaceMap;
use hytlb_schemes::{
    BaselineScheme, ClusterScheme, ColtScheme, LatencyModel, RmmScheme, Thp1GScheme, ThpScheme,
    TranslationScheme,
};
use std::sync::Arc;

/// The paper's evaluation configuration (Table 3 plus trace parameters).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaperConfig {
    /// Latency model (7 / 8 / 50 cycles).
    pub latency: LatencyModel,
    /// Accesses simulated per run. The paper replays 12 B instructions; we
    /// default to 2 M memory accesses, which reaches steady state for every
    /// structure modelled (≤ 1056 entries).
    pub accesses: u64,
    /// Memory accesses per instruction (used to convert cycles into the
    /// translation-CPI figures; ~1/3 of instructions touch memory).
    pub mem_ops_per_instruction: f64,
    /// Instructions per OS epoch check. The paper uses 1 B; scaled to the
    /// shorter traces here.
    pub epoch_instructions: u64,
    /// Master seed; every generator derives from it.
    pub seed: u64,
    /// Right-shift applied to each workload's default footprint (0 = paper
    /// scale; 3 = 8× smaller for quick runs). Footprints never drop below
    /// 2^13 pages so they always exceed the L2 reach.
    pub footprint_shift: u32,
    /// Worker threads for the matrix driver
    /// ([`matrix::run_matrix`](crate::matrix::run_matrix)). `None` defers
    /// to the `HYTLB_THREADS` environment variable, then to the machine's
    /// available parallelism. Never affects results, only wall-clock.
    pub threads: Option<usize>,
}

impl Default for PaperConfig {
    fn default() -> Self {
        PaperConfig {
            latency: LatencyModel::default(),
            accesses: 2_000_000,
            mem_ops_per_instruction: 1.0 / 3.0,
            epoch_instructions: 1_000_000,
            seed: 42,
            footprint_shift: 0,
            threads: None,
        }
    }
}

impl PaperConfig {
    /// A configuration for quick smoke runs (small traces, 8× smaller
    /// footprints).
    #[must_use]
    pub fn quick() -> Self {
        PaperConfig { accesses: 300_000, footprint_shift: 3, ..Self::default() }
    }

    /// Instructions represented by this run's trace.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        (self.accesses as f64 / self.mem_ops_per_instruction).round() as u64
    }

    /// The footprint (pages) to simulate for a workload under this config.
    #[must_use]
    pub fn footprint_for(&self, workload: hytlb_trace::WorkloadKind) -> u64 {
        (workload.default_footprint_pages() >> self.footprint_shift).max(1 << 13)
    }

    /// Accesses between epoch checks.
    #[must_use]
    pub fn epoch_accesses(&self) -> u64 {
        ((self.epoch_instructions as f64 * self.mem_ops_per_instruction).round() as u64).max(1)
    }

    /// A fingerprint of every field that determines generated mappings and
    /// traces (`seed`, `accesses`, `footprint_shift`). Two configs with the
    /// same fingerprint generate bit-identical inputs, so matrix caches key
    /// on it. Deliberately excludes fields that only shape measurement or
    /// scheduling (latencies, epoch length, `threads`).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        // FNV-1a over the generation-relevant fields.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for word in [self.seed, self.accesses, u64::from(self.footprint_shift)] {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// The translation schemes compared in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SchemeKind {
    /// 4 KB pages only.
    Baseline,
    /// Transparent huge pages (4 KB + 2 MB).
    Thp,
    /// THP plus 1 GB giant pages with their separate small L2 TLB (§2.1
    /// page-size-scalability extension; not in the paper's figure set).
    Thp1G,
    /// Cluster TLB without large pages.
    Cluster,
    /// Cluster TLB with 2 MB pages in the regular partition.
    Cluster2Mb,
    /// CoLT-SA (Pham et al., MICRO'12): contiguity-run HW coalescing —
    /// the ablation partner of the cluster TLB (not in the paper's figure
    /// set).
    Colt,
    /// Redundant memory mapping (range TLB).
    Rmm,
    /// Hybrid coalescing with dynamic distance selection (the paper's
    /// `Dynamic`).
    AnchorDynamic,
    /// Hybrid coalescing at a fixed anchor distance (one point of the
    /// `Static Ideal` sweep).
    AnchorStatic(u64),
    /// The §4.2 multi-region extension with the given region budget.
    AnchorMultiRegion(usize),
}

impl SchemeKind {
    /// The six schemes of Figures 7–9, in figure order (static-ideal is a
    /// sweep, produced separately by
    /// [`experiment::static_ideal`](crate::experiment::static_ideal)).
    #[must_use]
    pub fn paper_set() -> [SchemeKind; 6] {
        [
            SchemeKind::Baseline,
            SchemeKind::Thp,
            SchemeKind::Cluster,
            SchemeKind::Cluster2Mb,
            SchemeKind::Rmm,
            SchemeKind::AnchorDynamic,
        ]
    }

    /// Label as used in the paper's legends.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            SchemeKind::Baseline => "Base".to_owned(),
            SchemeKind::Thp => "THP".to_owned(),
            SchemeKind::Thp1G => "THP-1G".to_owned(),
            SchemeKind::Cluster => "Cluster".to_owned(),
            SchemeKind::Cluster2Mb => "Cluster-2MB".to_owned(),
            SchemeKind::Colt => "CoLT".to_owned(),
            SchemeKind::Rmm => "RMM".to_owned(),
            SchemeKind::AnchorDynamic => "Dynamic".to_owned(),
            SchemeKind::AnchorStatic(d) => format!("Anchor-d{d}"),
            SchemeKind::AnchorMultiRegion(n) => format!("Anchor-region{n}"),
        }
    }

    /// Builds the scheme over a mapping.
    #[must_use]
    pub fn build(
        self,
        map: &Arc<AddressSpaceMap>,
        config: &PaperConfig,
    ) -> Box<dyn TranslationScheme> {
        let latency = config.latency;
        match self {
            SchemeKind::Baseline => Box::new(BaselineScheme::new(Arc::clone(map), latency)),
            SchemeKind::Thp => Box::new(ThpScheme::new(Arc::clone(map), latency)),
            SchemeKind::Thp1G => Box::new(Thp1GScheme::new(Arc::clone(map), latency)),
            SchemeKind::Cluster => Box::new(ClusterScheme::new(Arc::clone(map), latency, false)),
            SchemeKind::Cluster2Mb => Box::new(ClusterScheme::new(Arc::clone(map), latency, true)),
            SchemeKind::Colt => Box::new(ColtScheme::new(Arc::clone(map), latency)),
            SchemeKind::Rmm => Box::new(RmmScheme::new(Arc::clone(map), latency)),
            SchemeKind::AnchorDynamic => {
                let cfg = AnchorConfig { latency, ..AnchorConfig::dynamic() };
                Box::new(AnchorScheme::new(Arc::clone(map), cfg))
            }
            SchemeKind::AnchorStatic(d) => {
                let cfg = AnchorConfig { latency, ..AnchorConfig::static_distance(d) };
                Box::new(AnchorScheme::new(Arc::clone(map), cfg))
            }
            SchemeKind::AnchorMultiRegion(n) => {
                let cfg = AnchorConfig { latency, ..AnchorConfig::multi_region(n) };
                Box::new(AnchorScheme::new(Arc::clone(map), cfg))
            }
        }
    }
}

impl core::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;

    #[test]
    fn config_arithmetic() {
        let c = PaperConfig::default();
        assert_eq!(c.instructions(), 6_000_000);
        assert!(c.epoch_accesses() > 0);
        let q = PaperConfig::quick();
        assert!(
            q.footprint_for(hytlb_trace::WorkloadKind::Gups)
                < c.footprint_for(hytlb_trace::WorkloadKind::Gups)
        );
        assert!(q.footprint_for(hytlb_trace::WorkloadKind::Omnetpp) >= 1 << 13);
    }

    #[test]
    fn paper_set_labels() {
        let labels: Vec<_> = SchemeKind::paper_set().iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["Base", "THP", "Cluster", "Cluster-2MB", "RMM", "Dynamic"]);
        assert_eq!(SchemeKind::AnchorStatic(64).label(), "Anchor-d64");
    }

    #[test]
    fn every_scheme_builds_and_translates() {
        let config = PaperConfig::quick();
        let map = Arc::new(Scenario::MediumContiguity.generate(2048, 7));
        let mut kinds = vec![
            SchemeKind::AnchorStatic(16),
            SchemeKind::AnchorMultiRegion(4),
            SchemeKind::Colt,
            SchemeKind::Thp1G,
        ];
        kinds.extend(SchemeKind::paper_set());
        for kind in kinds {
            let mut s = kind.build(&map, &config);
            for (vpn, pfn) in map.iter_pages().take(200) {
                assert_eq!(s.access(vpn.base_addr()).pfn, Some(pfn), "{kind}");
            }
        }
    }
}
