//! Enum dispatch over the concrete translation schemes.
//!
//! The simulation hot loop historically drove a `Box<dyn TranslationScheme>`,
//! paying a vtable call per simulated access. [`SchemeDispatch`] replaces the
//! box with an enum of the concrete scheme types: the engine's batched inner
//! loop matches *once per chunk*, and within the selected arm every
//! `access` call is statically dispatched (and inlinable) through each
//! scheme's monomorphized `access_batch`. A `Boxed` escape hatch keeps the
//! engine usable with caller-supplied scheme objects (ablations, tests).

use crate::config::{PaperConfig, SchemeKind};
use hytlb_core::{AnchorConfig, AnchorScheme};
use hytlb_mem::AddressSpaceMap;
use hytlb_schemes::{
    AccessResult, BaselineScheme, BatchFault, ClusterScheme, ColtScheme, RmmScheme, SchemeStats,
    Thp1GScheme, ThpScheme, TranslationScheme,
};
use hytlb_tlb::TlbGeometry;
use hytlb_types::VirtAddr;
use std::sync::Arc;

/// A translation scheme held by value, dispatched with one `match` instead
/// of a per-access vtable call. See the module docs.
pub enum SchemeDispatch {
    /// [`BaselineScheme`] (4 KB only).
    Baseline(BaselineScheme),
    /// [`ThpScheme`] (4 KB + 2 MB).
    Thp(ThpScheme),
    /// [`Thp1GScheme`] (4 KB + 2 MB + 1 GB).
    Thp1G(Thp1GScheme),
    /// [`ClusterScheme`], with or without 2 MB pages.
    Cluster(ClusterScheme),
    /// [`ColtScheme`].
    Colt(ColtScheme),
    /// [`RmmScheme`].
    Rmm(RmmScheme),
    /// [`AnchorScheme`] in any distance mode.
    Anchor(AnchorScheme),
    /// A caller-supplied scheme object (keeps the engine open to scheme
    /// impls outside this registry; still one virtual call per access).
    Boxed(Box<dyn TranslationScheme>),
}

impl std::fmt::Debug for SchemeDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `Box<dyn TranslationScheme>` has no `Debug` bound, so derive is
        // unavailable; the scheme's display name identifies it just as well.
        f.debug_struct("SchemeDispatch").field("scheme", &self.name()).finish()
    }
}

impl SchemeDispatch {
    /// Builds the scheme for `kind` over a mapping, mirroring
    /// [`SchemeKind::build`] but returning the concrete variant.
    #[must_use]
    pub fn build(kind: SchemeKind, map: &Arc<AddressSpaceMap>, config: &PaperConfig) -> Self {
        let latency = config.latency;
        match kind {
            SchemeKind::Baseline => {
                SchemeDispatch::Baseline(BaselineScheme::new(Arc::clone(map), latency))
            }
            SchemeKind::Thp => SchemeDispatch::Thp(ThpScheme::new(Arc::clone(map), latency)),
            SchemeKind::Thp1G => SchemeDispatch::Thp1G(Thp1GScheme::new(Arc::clone(map), latency)),
            SchemeKind::Cluster => {
                SchemeDispatch::Cluster(ClusterScheme::new(Arc::clone(map), latency, false))
            }
            SchemeKind::Cluster2Mb => {
                SchemeDispatch::Cluster(ClusterScheme::new(Arc::clone(map), latency, true))
            }
            SchemeKind::Colt => SchemeDispatch::Colt(ColtScheme::new(Arc::clone(map), latency)),
            SchemeKind::Rmm => SchemeDispatch::Rmm(RmmScheme::new(Arc::clone(map), latency)),
            SchemeKind::AnchorDynamic => {
                let cfg = AnchorConfig { latency, ..AnchorConfig::dynamic() };
                SchemeDispatch::Anchor(AnchorScheme::new(Arc::clone(map), cfg))
            }
            SchemeKind::AnchorStatic(d) => {
                let cfg = AnchorConfig { latency, ..AnchorConfig::static_distance(d) };
                SchemeDispatch::Anchor(AnchorScheme::new(Arc::clone(map), cfg))
            }
            SchemeKind::AnchorMultiRegion(n) => {
                let cfg = AnchorConfig { latency, ..AnchorConfig::multi_region(n) };
                SchemeDispatch::Anchor(AnchorScheme::new(Arc::clone(map), cfg))
            }
        }
    }
}

/// Forwards every trait method to the concrete scheme. `access_batch` is the
/// hot one: a single `match` selects the arm, then the whole chunk runs
/// through the scheme's own monomorphized batch loop.
impl TranslationScheme for SchemeDispatch {
    fn name(&self) -> &str {
        match self {
            SchemeDispatch::Baseline(s) => s.name(),
            SchemeDispatch::Thp(s) => s.name(),
            SchemeDispatch::Thp1G(s) => s.name(),
            SchemeDispatch::Cluster(s) => s.name(),
            SchemeDispatch::Colt(s) => s.name(),
            SchemeDispatch::Rmm(s) => s.name(),
            SchemeDispatch::Anchor(s) => s.name(),
            SchemeDispatch::Boxed(s) => s.name(),
        }
    }

    fn access(&mut self, vaddr: VirtAddr) -> AccessResult {
        match self {
            SchemeDispatch::Baseline(s) => s.access(vaddr),
            SchemeDispatch::Thp(s) => s.access(vaddr),
            SchemeDispatch::Thp1G(s) => s.access(vaddr),
            SchemeDispatch::Cluster(s) => s.access(vaddr),
            SchemeDispatch::Colt(s) => s.access(vaddr),
            SchemeDispatch::Rmm(s) => s.access(vaddr),
            SchemeDispatch::Anchor(s) => s.access(vaddr),
            SchemeDispatch::Boxed(s) => s.access(vaddr),
        }
    }

    fn access_batch(&mut self, vaddrs: &[VirtAddr]) -> Result<(), BatchFault> {
        match self {
            SchemeDispatch::Baseline(s) => s.access_batch(vaddrs),
            SchemeDispatch::Thp(s) => s.access_batch(vaddrs),
            SchemeDispatch::Thp1G(s) => s.access_batch(vaddrs),
            SchemeDispatch::Cluster(s) => s.access_batch(vaddrs),
            SchemeDispatch::Colt(s) => s.access_batch(vaddrs),
            SchemeDispatch::Rmm(s) => s.access_batch(vaddrs),
            SchemeDispatch::Anchor(s) => s.access_batch(vaddrs),
            SchemeDispatch::Boxed(s) => s.access_batch(vaddrs),
        }
    }

    fn stats(&self) -> &SchemeStats {
        match self {
            SchemeDispatch::Baseline(s) => s.stats(),
            SchemeDispatch::Thp(s) => s.stats(),
            SchemeDispatch::Thp1G(s) => s.stats(),
            SchemeDispatch::Cluster(s) => s.stats(),
            SchemeDispatch::Colt(s) => s.stats(),
            SchemeDispatch::Rmm(s) => s.stats(),
            SchemeDispatch::Anchor(s) => s.stats(),
            SchemeDispatch::Boxed(s) => s.stats(),
        }
    }

    fn on_epoch(&mut self) {
        match self {
            SchemeDispatch::Baseline(s) => s.on_epoch(),
            SchemeDispatch::Thp(s) => s.on_epoch(),
            SchemeDispatch::Thp1G(s) => s.on_epoch(),
            SchemeDispatch::Cluster(s) => s.on_epoch(),
            SchemeDispatch::Colt(s) => s.on_epoch(),
            SchemeDispatch::Rmm(s) => s.on_epoch(),
            SchemeDispatch::Anchor(s) => s.on_epoch(),
            SchemeDispatch::Boxed(s) => s.on_epoch(),
        }
    }

    fn flush(&mut self) {
        match self {
            SchemeDispatch::Baseline(s) => s.flush(),
            SchemeDispatch::Thp(s) => s.flush(),
            SchemeDispatch::Thp1G(s) => s.flush(),
            SchemeDispatch::Cluster(s) => s.flush(),
            SchemeDispatch::Colt(s) => s.flush(),
            SchemeDispatch::Rmm(s) => s.flush(),
            SchemeDispatch::Anchor(s) => s.flush(),
            SchemeDispatch::Boxed(s) => s.flush(),
        }
    }

    fn anchor_distance(&self) -> Option<u64> {
        match self {
            SchemeDispatch::Baseline(s) => s.anchor_distance(),
            SchemeDispatch::Thp(s) => s.anchor_distance(),
            SchemeDispatch::Thp1G(s) => s.anchor_distance(),
            SchemeDispatch::Cluster(s) => s.anchor_distance(),
            SchemeDispatch::Colt(s) => s.anchor_distance(),
            SchemeDispatch::Rmm(s) => s.anchor_distance(),
            SchemeDispatch::Anchor(s) => s.anchor_distance(),
            SchemeDispatch::Boxed(s) => s.anchor_distance(),
        }
    }

    fn geometries(&self) -> Vec<TlbGeometry> {
        match self {
            SchemeDispatch::Baseline(s) => s.geometries(),
            SchemeDispatch::Thp(s) => s.geometries(),
            SchemeDispatch::Thp1G(s) => s.geometries(),
            SchemeDispatch::Cluster(s) => s.geometries(),
            SchemeDispatch::Colt(s) => s.geometries(),
            SchemeDispatch::Rmm(s) => s.geometries(),
            SchemeDispatch::Anchor(s) => s.geometries(),
            SchemeDispatch::Boxed(s) => s.geometries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;

    #[test]
    fn dispatch_matches_boxed_build_on_every_kind() {
        let config = PaperConfig::quick();
        let map = Arc::new(Scenario::MediumContiguity.generate(2048, 7));
        let mut kinds = vec![
            SchemeKind::AnchorStatic(16),
            SchemeKind::AnchorMultiRegion(4),
            SchemeKind::Colt,
            SchemeKind::Thp1G,
        ];
        kinds.extend(SchemeKind::paper_set());
        for kind in kinds {
            let mut fast = SchemeDispatch::build(kind, &map, &config);
            let mut reference = kind.build(&map, &config);
            assert_eq!(fast.name(), reference.name(), "{kind}");
            for (vpn, _) in map.iter_pages().take(300) {
                assert_eq!(
                    fast.access(vpn.base_addr()),
                    reference.access(vpn.base_addr()),
                    "{kind} at {vpn}"
                );
            }
            assert_eq!(fast.stats(), reference.stats(), "{kind}");
            assert_eq!(fast.anchor_distance(), reference.anchor_distance(), "{kind}");
            assert_eq!(fast.geometries().len(), reference.geometries().len(), "{kind}");
        }
    }

    #[test]
    fn batch_equals_scalar_through_dispatch() {
        let config = PaperConfig::quick();
        let map = Arc::new(Scenario::LowContiguity.generate(2048, 3));
        let vaddrs: Vec<VirtAddr> =
            map.iter_pages().take(500).map(|(vpn, _)| vpn.base_addr()).collect();
        for kind in SchemeKind::paper_set() {
            let mut batched = SchemeDispatch::build(kind, &map, &config);
            let mut scalar = SchemeDispatch::build(kind, &map, &config);
            batched.access_batch(&vaddrs).expect("mapped addresses");
            for &va in &vaddrs {
                scalar.access(va);
            }
            assert_eq!(batched.stats(), scalar.stats(), "{kind}");
        }
    }
}
