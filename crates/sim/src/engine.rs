//! The machine: a translation scheme driven by a logical-address trace.

use crate::config::{PaperConfig, SchemeKind};
use crate::dispatch::SchemeDispatch;
use crate::error::SimError;
use hytlb_mem::{AddressSpaceMap, PageIndex};
use hytlb_schemes::{SchemeStats, TranslationScheme};
use hytlb_types::{VirtAddr, PAGE_SIZE_U64};
use std::sync::Arc;

/// Accesses per chunk of the batched resolved-trace loop: large enough to
/// amortize the per-chunk dispatch and epoch/flush bookkeeping, small enough
/// that a chunk's addresses stay cache-resident.
const RESOLVED_BATCH: u64 = 4096;

/// Translation-CPI contributions, as stacked in Figures 10–11.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct CpiBreakdown {
    /// Regular L2 hits (7 cycles each).
    pub l2_hit: f64,
    /// Anchor / cluster / range hits (8 cycles each).
    pub coalesced_hit: f64,
    /// Page-table walks (50 cycles each).
    pub walk: f64,
}

impl CpiBreakdown {
    /// Total translation CPI.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.l2_hit + self.coalesced_hit + self.walk
    }
}

/// Everything measured by one simulation run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Scheme label.
    pub scheme: String,
    /// Accesses simulated.
    pub accesses: u64,
    /// Instructions represented (accesses / mem-op ratio).
    pub instructions: u64,
    /// The MMU counters.
    pub stats: SchemeStats,
    /// Cycle cost of each structure per instruction.
    pub cpi: CpiBreakdown,
    /// Anchor distance in effect at the end of the run (anchor schemes).
    pub anchor_distance: Option<u64>,
}

impl RunStats {
    /// The paper's headline metric: page walks ("TLB misses").
    #[must_use]
    pub fn tlb_misses(&self) -> u64 {
        self.stats.walks
    }

    /// Total translation CPI.
    #[must_use]
    pub fn translation_cpi(&self) -> f64 {
        self.cpi.total()
    }

    /// Misses relative to a baseline run, in percent (Figures 2 and 7–9).
    ///
    /// A baseline with zero walks has nothing to improve on, so such cells
    /// report 100.0 (parity) rather than 0.0 — otherwise a scheme would
    /// appear to eliminate misses that never existed and drag every
    /// suite-level mean toward zero.
    #[must_use]
    pub fn relative_misses_pct(&self, baseline: &RunStats) -> f64 {
        if baseline.tlb_misses() == 0 {
            return 100.0;
        }
        self.tlb_misses() as f64 / baseline.tlb_misses() as f64 * 100.0
    }
}

/// A scheme plus the placement layer that turns logical trace addresses
/// into virtual addresses of the mapping under test.
pub struct Machine {
    scheme: SchemeDispatch,
    index: Arc<PageIndex>,
    config: PaperConfig,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("scheme", &self.scheme.name())
            .field("mapped_pages", &self.index.len())
            .finish()
    }
}

impl Machine {
    /// Builds a machine running `kind` over `map`. The map is shared with
    /// the scheme by reference count — no copy of the address-space data is
    /// made, so a matrix of machines over one mapping costs one mapping.
    #[must_use]
    pub fn for_scheme(kind: SchemeKind, map: &Arc<AddressSpaceMap>, config: &PaperConfig) -> Self {
        Machine {
            scheme: SchemeDispatch::build(kind, map, config),
            index: Arc::new(map.page_index()),
            config: *config,
        }
    }

    /// Like [`Machine::for_scheme`], but reuses a pre-built [`PageIndex`]
    /// as well, so every machine of a matrix cell shares both the mapping
    /// and its placement index.
    ///
    /// # Panics
    ///
    /// Panics if `index` was not built from `map` (detected by length).
    #[must_use]
    pub fn for_scheme_indexed(
        kind: SchemeKind,
        map: &Arc<AddressSpaceMap>,
        index: &Arc<PageIndex>,
        config: &PaperConfig,
    ) -> Self {
        assert_eq!(index.len(), map.mapped_pages(), "page index does not match the mapping");
        Machine {
            scheme: SchemeDispatch::build(kind, map, config),
            index: Arc::clone(index),
            config: *config,
        }
    }

    /// Builds a machine around an existing scheme (used for ablations that
    /// construct schemes with custom configs).
    #[must_use]
    pub fn from_scheme(
        scheme: Box<dyn TranslationScheme>,
        map: &Arc<AddressSpaceMap>,
        config: &PaperConfig,
    ) -> Self {
        Machine {
            scheme: SchemeDispatch::Boxed(scheme),
            index: Arc::new(map.page_index()),
            config: *config,
        }
    }

    /// The underlying scheme.
    #[must_use]
    pub fn scheme(&self) -> &dyn TranslationScheme {
        &self.scheme
    }

    /// Drives a logical-address trace through the MMU. Logical addresses
    /// must lie within `mapped_pages × 4096` (generators built with the
    /// same footprint guarantee this).
    ///
    /// # Panics
    ///
    /// Panics if a trace address exceeds the mapping's footprint, or if the
    /// MMU mistranslates (cross-checked against nothing at runtime — the
    /// schemes assert internally — but faults on mapped-only traces are a
    /// harness bug and do panic). Use [`Machine::try_run`] for the
    /// non-panicking variant.
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, trace: I) -> RunStats {
        self.run_with_flush_period(trace, u64::MAX)
    }

    /// Like [`Machine::run`], but reports a fault as a typed
    /// [`SimError::TraceFault`] naming the scheme and the address instead
    /// of panicking, so matrix drivers can attribute the failure to a cell.
    pub fn try_run<I: IntoIterator<Item = u64>>(&mut self, trace: I) -> Result<RunStats, SimError> {
        self.try_run_with_flush_period(trace, u64::MAX)
    }

    /// Like [`Machine::run`], but flushes all TLB state every
    /// `flush_period` accesses — modelling context switches, which flush
    /// the TLB on native x86 Linux (paper §3.3). Coalesced schemes refill
    /// their reach with far fewer walks than the baseline, so frequent
    /// switches *widen* their advantage.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Machine::run`].
    pub fn run_with_flush_period<I: IntoIterator<Item = u64>>(
        &mut self,
        trace: I,
        flush_period: u64,
    ) -> RunStats {
        // audit:allow(panic): invariant — the panicking wrapper exists for
        // the many quick-experiment callers; the error already names the
        // scheme and address, and matrix cells use the try_ variant.
        self.try_run_with_flush_period(trace, flush_period).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The non-panicking core of [`Machine::run_with_flush_period`]: a
    /// fault on a mapped-only trace surfaces as [`SimError::TraceFault`].
    /// Checked in release builds too — a silent mistranslation would
    /// corrupt every figure downstream.
    pub fn try_run_with_flush_period<I: IntoIterator<Item = u64>>(
        &mut self,
        trace: I,
        flush_period: u64,
    ) -> Result<RunStats, SimError> {
        let epoch_every = self.config.epoch_accesses();
        let mut since_epoch = 0u64;
        let mut since_flush = 0u64;
        let mut accesses = 0u64;
        for logical in trace {
            let page = logical / PAGE_SIZE_U64;
            let offset = logical % PAGE_SIZE_U64;
            let vpn = self.index.nth_page(page);
            let va = VirtAddr::new(vpn.base_addr().as_u64() + offset);
            let result = self.scheme.access(va);
            // A fault here means the placement layer or a scheme's walk
            // path is broken: traces only ever touch mapped pages.
            if result.pfn.is_none() {
                return Err(SimError::TraceFault {
                    scheme: self.scheme.name().to_owned(),
                    vaddr: va,
                });
            }
            accesses += 1;
            since_epoch += 1;
            since_flush += 1;
            if since_epoch >= epoch_every {
                self.scheme.on_epoch();
                since_epoch = 0;
            }
            if since_flush >= flush_period {
                self.scheme.flush();
                since_flush = 0;
            }
        }
        Ok(self.finish(accesses))
    }

    /// Drives a *pre-resolved* virtual-address trace through the MMU in
    /// chunks, skipping the per-access placement math of [`Machine::run`]
    /// (see [`hytlb_mem::PageIndex::resolve`]) and the per-access virtual
    /// call (each chunk runs through the scheme's monomorphized batch
    /// loop). Bit-identical to `run` over the logical trace that produced
    /// `resolved`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Machine::run`].
    pub fn run_resolved(&mut self, resolved: &[VirtAddr]) -> RunStats {
        self.run_resolved_with_flush_period(resolved, u64::MAX)
    }

    /// [`Machine::run_resolved`] with periodic TLB flushes, the batched
    /// counterpart of [`Machine::run_with_flush_period`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Machine::run`].
    pub fn run_resolved_with_flush_period(
        &mut self,
        resolved: &[VirtAddr],
        flush_period: u64,
    ) -> RunStats {
        // The panicking wrapper exists for the many quick-experiment
        // callers; the error already names the scheme and address, and
        // matrix cells use the try_ variant.
        self.try_run_resolved_with_flush_period(resolved, flush_period)
            // audit:allow(panic): invariant — see the wrapper comment above.
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`Machine::run_resolved`].
    pub fn try_run_resolved(&mut self, resolved: &[VirtAddr]) -> Result<RunStats, SimError> {
        self.try_run_resolved_with_flush_period(resolved, u64::MAX)
    }

    /// The non-panicking core of the batched hot loop. Chunks are cut so
    /// that every epoch and flush boundary lands exactly on a chunk end,
    /// which makes `on_epoch`/`flush` fire at exactly the same access
    /// counts as the scalar reference loop — bit-identical stats by
    /// construction.
    pub fn try_run_resolved_with_flush_period(
        &mut self,
        resolved: &[VirtAddr],
        flush_period: u64,
    ) -> Result<RunStats, SimError> {
        let epoch_every = self.config.epoch_accesses();
        let mut since_epoch = 0u64;
        let mut since_flush = 0u64;
        let mut pos = 0usize;
        while pos < resolved.len() {
            let remaining = (resolved.len() - pos) as u64;
            // `since_epoch < epoch_every` is a loop invariant (reset on
            // fire), so this cannot underflow. The flush gap is clamped to
            // one access so a `flush_period` of 0 — which the scalar loop
            // services after every access — still makes progress.
            let until_epoch = epoch_every - since_epoch;
            let until_flush = flush_period.saturating_sub(since_flush).max(1);
            let take = RESOLVED_BATCH.min(remaining).min(until_epoch).min(until_flush);
            let end = pos + take as usize;
            if let Err(fault) = self.scheme.access_batch(&resolved[pos..end]) {
                return Err(SimError::TraceFault {
                    scheme: self.scheme.name().to_owned(),
                    vaddr: fault.vaddr,
                });
            }
            pos = end;
            since_epoch += take;
            since_flush += take;
            if since_epoch >= epoch_every {
                self.scheme.on_epoch();
                since_epoch = 0;
            }
            if since_flush >= flush_period {
                self.scheme.flush();
                since_flush = 0;
            }
        }
        Ok(self.finish(resolved.len() as u64))
    }

    fn finish(&self, accesses: u64) -> RunStats {
        let stats = *self.scheme.stats();
        let instructions =
            (accesses as f64 / self.config.mem_ops_per_instruction).round().max(1.0) as u64;
        let lat = self.config.latency;
        let cpi = CpiBreakdown {
            l2_hit: (stats.l2_regular_hits * lat.l2_hit.as_u64()) as f64 / instructions as f64,
            coalesced_hit: (stats.coalesced_hits * lat.coalesced_hit.as_u64()) as f64
                / instructions as f64,
            walk: ((stats.walks + stats.faults) * lat.walk.as_u64()) as f64 / instructions as f64,
        };
        RunStats {
            scheme: self.scheme.name().to_owned(),
            accesses,
            instructions,
            stats,
            cpi,
            anchor_distance: self.scheme.anchor_distance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_mem::Scenario;
    use hytlb_trace::WorkloadKind;

    fn quick() -> PaperConfig {
        PaperConfig { accesses: 20_000, ..PaperConfig::quick() }
    }

    #[test]
    fn run_counts_accesses_and_cpi() {
        let config = quick();
        let map = Arc::new(Scenario::MediumContiguity.generate(4096, 1));
        let mut m = Machine::for_scheme(SchemeKind::Baseline, &map, &config);
        let stats = m.run(WorkloadKind::Canneal.generator(4096, 1).take(20_000));
        assert_eq!(stats.accesses, 20_000);
        assert_eq!(stats.stats.accesses, 20_000);
        assert!(stats.translation_cpi() > 0.0);
        assert_eq!(stats.scheme, "Base");
        assert_eq!(stats.anchor_distance, None);
    }

    #[test]
    fn anchor_machine_reports_distance() {
        let config = quick();
        let map = Arc::new(Scenario::LowContiguity.generate(4096, 2));
        let mut m = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config);
        let stats = m.run(WorkloadKind::Gups.generator(4096, 2).take(5_000));
        let d = stats.anchor_distance.expect("anchor scheme has a distance");
        assert!(d.is_power_of_two());
        assert!(d <= 16, "low contiguity should select a small distance, got {d}");
    }

    #[test]
    fn flush_period_increases_walks() {
        let config = quick();
        let map = Arc::new(Scenario::MediumContiguity.generate(4096, 5));
        let trace: Vec<u64> = WorkloadKind::Canneal.generator(4096, 5).take(30_000).collect();
        let calm = Machine::for_scheme(SchemeKind::Baseline, &map, &config)
            .run_with_flush_period(trace.iter().copied(), u64::MAX);
        let churned = Machine::for_scheme(SchemeKind::Baseline, &map, &config)
            .run_with_flush_period(trace.iter().copied(), 1_000);
        assert!(churned.tlb_misses() > calm.tlb_misses());
        assert_eq!(churned.accesses, calm.accesses);
    }

    #[test]
    fn coalescing_recovers_faster_from_flushes() {
        let config = quick();
        let map = Arc::new(Scenario::MediumContiguity.generate(8192, 6));
        let trace: Vec<u64> = WorkloadKind::Canneal.generator(8192, 6).take(50_000).collect();
        let walks = |kind| {
            Machine::for_scheme(kind, &map, &config)
                .run_with_flush_period(trace.iter().copied(), 5_000)
                .tlb_misses()
        };
        assert!(walks(SchemeKind::AnchorDynamic) < walks(SchemeKind::Baseline));
    }

    #[test]
    fn try_run_names_the_faulting_scheme_and_address() {
        let config = quick();
        // The scheme only knows a 64-page mapping, but the placement layer
        // uses a 4096-page one: the trace soon leaves the scheme's map.
        let small = Arc::new(Scenario::MediumContiguity.generate(64, 7));
        let big = Arc::new(Scenario::MediumContiguity.generate(4096, 7));
        let scheme = SchemeKind::Baseline.build(&small, &config);
        let mut m = Machine::from_scheme(scheme, &big, &config);
        let err = m
            .try_run(WorkloadKind::Gups.generator(4096, 7).take(5_000))
            .expect_err("mismatched maps must fault");
        match err {
            crate::SimError::TraceFault { scheme, .. } => assert_eq!(scheme, "Base"),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn resolved_run_matches_scalar_reference() {
        // Small epoch so boundaries land mid-chunk, plus a flush period
        // coprime with the batch size.
        let config =
            PaperConfig { accesses: 30_000, epoch_instructions: 9_000, ..PaperConfig::quick() };
        let map = Arc::new(Scenario::MediumContiguity.generate(4096, 5));
        let index = Arc::new(map.page_index());
        let trace: Vec<u64> = WorkloadKind::Canneal.generator(4096, 5).take(30_000).collect();
        let resolved = index.resolve(&trace);
        for flush_period in [u64::MAX, 7_777] {
            let scalar =
                Machine::for_scheme_indexed(SchemeKind::AnchorDynamic, &map, &index, &config)
                    .run_with_flush_period(trace.iter().copied(), flush_period);
            let batched =
                Machine::for_scheme_indexed(SchemeKind::AnchorDynamic, &map, &index, &config)
                    .run_resolved_with_flush_period(&resolved, flush_period);
            assert_eq!(scalar, batched, "flush_period {flush_period}");
        }
    }

    #[test]
    fn resolved_run_names_the_faulting_scheme() {
        let config = quick();
        let small = Arc::new(Scenario::MediumContiguity.generate(64, 7));
        let big = Arc::new(Scenario::MediumContiguity.generate(4096, 7));
        let scheme = SchemeKind::Baseline.build(&small, &config);
        let mut m = Machine::from_scheme(scheme, &big, &config);
        let trace: Vec<u64> = WorkloadKind::Gups.generator(4096, 7).take(5_000).collect();
        let resolved = Arc::new(big.page_index()).resolve(&trace);
        let err = m.try_run_resolved(&resolved).expect_err("mismatched maps must fault");
        match err {
            crate::SimError::TraceFault { scheme, .. } => assert_eq!(scheme, "Base"),
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn relative_misses_math() {
        let config = quick();
        let map = Arc::new(Scenario::MaxContiguity.generate(1 << 13, 3));
        let trace: Vec<u64> = WorkloadKind::Milc.generator(1 << 13, 3).take(30_000).collect();
        let base =
            Machine::for_scheme(SchemeKind::Baseline, &map, &config).run(trace.iter().copied());
        let anchor = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config)
            .run(trace.iter().copied());
        let rel = anchor.relative_misses_pct(&base);
        assert!(rel < 30.0, "anchor at {rel}% of baseline misses");
        assert!((base.relative_misses_pct(&base) - 100.0).abs() < 1e-9);
    }
}
