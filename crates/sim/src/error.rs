//! Typed simulation errors.
//!
//! The paper harness used to `panic!` from deep inside a worker thread,
//! which on a malformed configuration reported a bare assertion with no
//! hint of *which* (scenario, workload, scheme) cell died. Every fallible
//! path now returns a [`SimError`]; the matrix driver wraps worker
//! failures in [`SimError::Cell`] so the failing cell is named in the
//! error itself.

use hytlb_types::VirtAddr;

/// Everything that can go wrong while driving a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A trace address faulted. Traces only ever touch mapped pages, so
    /// this means the placement layer or a scheme's walk path is broken.
    TraceFault {
        /// Label of the scheme that faulted.
        scheme: String,
        /// The virtual address that failed to translate.
        vaddr: VirtAddr,
    },
    /// A table renderer was handed an empty suite list.
    NoSuites,
    /// Suites passed to a cross-suite renderer disagree on their workload
    /// rows.
    SuiteMisaligned {
        /// Row index where the disagreement was found.
        row: usize,
        /// Workload label the first suite has at that row.
        expected: String,
        /// Workload label the offending suite has there.
        found: String,
    },
    /// An anchor-distance column was requested from a scheme that has no
    /// anchor distance.
    NotAnAnchorColumn {
        /// Label of the scheme column.
        scheme: String,
        /// Workload row where the lookup failed.
        workload: String,
    },
    /// Serialization of a result failed.
    Serialize {
        /// The serializer's error message.
        detail: String,
    },
    /// Loading a recorded trace from a corpus store failed (corrupt
    /// file, unreadable manifest, I/O failure).
    Corpus {
        /// The trace-file layer's error message.
        detail: String,
    },
    /// A matrix cell failed; names the cell and carries the underlying
    /// error.
    Cell {
        /// Scenario label of the failing cell.
        scenario: String,
        /// Workload label of the failing cell.
        workload: String,
        /// Scheme label of the failing cell.
        scheme: String,
        /// What actually went wrong inside the cell.
        source: Box<SimError>,
    },
}

impl SimError {
    /// Wraps this error with the identity of the matrix cell it occurred
    /// in.
    #[must_use]
    pub fn in_cell(self, scenario: &str, workload: &str, scheme: &str) -> Self {
        SimError::Cell {
            scenario: scenario.to_owned(),
            workload: workload.to_owned(),
            scheme: scheme.to_owned(),
            source: Box::new(self),
        }
    }
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::TraceFault { scheme, vaddr } => {
                write!(f, "scheme {scheme} faulted on a mapped-only trace at {vaddr}")
            }
            SimError::NoSuites => write!(f, "no suites to render"),
            SimError::SuiteMisaligned { row, expected, found } => {
                write!(f, "suites disagree at row {row}: expected {expected}, found {found}")
            }
            SimError::NotAnAnchorColumn { scheme, workload } => {
                write!(f, "scheme column {scheme} has no anchor distance (workload {workload})")
            }
            SimError::Serialize { detail } => write!(f, "serialization failed: {detail}"),
            SimError::Corpus { detail } => write!(f, "trace corpus replay failed: {detail}"),
            SimError::Cell { scenario, workload, scheme, source } => {
                write!(f, "cell ({scenario}, {workload}, {scheme}) failed: {source}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Cell { source, .. } => Some(source.as_ref()),
            SimError::TraceFault { .. }
            | SimError::NoSuites
            | SimError::SuiteMisaligned { .. }
            | SimError::NotAnAnchorColumn { .. }
            | SimError::Serialize { .. }
            | SimError::Corpus { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_wrapper_names_the_cell() {
        let inner =
            SimError::TraceFault { scheme: "Base".to_owned(), vaddr: VirtAddr::new(0x1000) };
        let wrapped = inner.clone().in_cell("low", "gups", "Base");
        let msg = wrapped.to_string();
        assert!(msg.contains("(low, gups, Base)"), "{msg}");
        assert!(msg.contains("0x1000"), "{msg}");
        let source = std::error::Error::source(&wrapped).expect("cell has a source");
        assert_eq!(source.to_string(), inner.to_string());
    }

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<SimError> = vec![
            SimError::NoSuites,
            SimError::SuiteMisaligned { row: 2, expected: "gups".into(), found: "mcf".into() },
            SimError::NotAnAnchorColumn { scheme: "Base".into(), workload: "gups".into() },
            SimError::Serialize { detail: "boom".into() },
            SimError::Corpus { detail: "manifest.json is unreadable".into() },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }
    }
}
