//! The evaluation matrix: workload × mapping scenario × scheme.
//!
//! Each *suite* fixes a scenario, generates one mapping and one trace per
//! workload, and replays the identical trace through every scheme — the
//! same methodology as the paper, which replays one Pin trace per benchmark
//! against different pagemap snapshots.

use crate::config::{PaperConfig, SchemeKind};
use crate::engine::{Machine, RunStats};
use hytlb_mem::{AddressSpaceMap, AllocationProfile, FragmentationLevel, Scenario};
use hytlb_trace::WorkloadKind;
use std::sync::Arc;

/// Results of one workload under one scenario, across schemes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadRow {
    /// The workload.
    pub workload: WorkloadKind,
    /// One result per scheme, in the order the suite was asked to run.
    pub runs: Vec<RunStats>,
}

/// Results of a whole suite (one scenario, many workloads × schemes).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SuiteResult {
    /// The mapping scenario.
    pub scenario: Scenario,
    /// Scheme labels, in column order.
    pub schemes: Vec<String>,
    /// One row per workload.
    pub rows: Vec<WorkloadRow>,
}

impl SuiteResult {
    /// Mean relative TLB misses (%) per scheme, versus the first scheme in
    /// the suite (which must be the baseline). This is the figure-9 metric.
    ///
    /// # Panics
    ///
    /// Panics if the suite is empty.
    #[must_use]
    pub fn mean_relative_misses(&self) -> Vec<f64> {
        assert!(!self.rows.is_empty(), "empty suite");
        let n = self.schemes.len();
        let mut acc = vec![0.0; n];
        for row in &self.rows {
            let base = &row.runs[0];
            for (i, run) in row.runs.iter().enumerate() {
                acc[i] += run.relative_misses_pct(base);
            }
        }
        acc.iter_mut().for_each(|v| *v /= self.rows.len() as f64);
        acc
    }
}

/// Deterministic per-(workload, scenario) seed derivation.
fn cell_seed(config: &PaperConfig, workload: WorkloadKind, scenario: Scenario) -> u64 {
    let w = workload as u64;
    let s = scenario.label().bytes().fold(0u64, |a, b| a.wrapping_mul(31).wrapping_add(b.into()));
    config.seed ^ w.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ s.rotate_left(17)
}

/// How each benchmark asks the OS for memory — the VMA-size profile used
/// by the demand/eager scenarios. The paper's real mappings show this
/// spectrum directly (Table 6, demand/eager columns): `omnetpp`,
/// `xalancbmk`, `sphinx3`, `soplex` and `astar` allocate fine-grained
/// objects and never see large contiguity even with THP on, while
/// `gups`/`graph500`/`mcf` back their footprints with giant allocations.
#[must_use]
pub fn allocation_profile_for(workload: WorkloadKind) -> AllocationProfile {
    match workload {
        WorkloadKind::Omnetpp | WorkloadKind::Xalancbmk => AllocationProfile::units(16),
        WorkloadKind::SoplexPds | WorkloadKind::Sphinx3 => AllocationProfile::units(32),
        WorkloadKind::AstarBiglake => AllocationProfile::units(128),
        WorkloadKind::Canneal | WorkloadKind::Milc | WorkloadKind::CactusAdm => {
            AllocationProfile::units(4096)
        }
        WorkloadKind::GemsFdtd | WorkloadKind::Mummer | WorkloadKind::Tigr => {
            AllocationProfile::units(16_384)
        }
        WorkloadKind::Gups | WorkloadKind::Graph500 | WorkloadKind::Mcf => {
            AllocationProfile::contiguous()
        }
    }
}

/// Generates the mapping a workload sees under a scenario. Returned
/// shared, ready to be handed to any number of schemes without copying
/// the address-space data.
#[must_use]
pub fn mapping_for(
    workload: WorkloadKind,
    scenario: Scenario,
    config: &PaperConfig,
) -> Arc<AddressSpaceMap> {
    let footprint = config.footprint_for(workload);
    Arc::new(scenario.generate_profiled(
        footprint,
        cell_seed(config, workload, scenario),
        FragmentationLevel::Moderate,
        allocation_profile_for(workload),
    ))
}

/// Generates the trace a workload replays (independent of the scenario,
/// like a Pin trace).
#[must_use]
pub fn trace_for(workload: WorkloadKind, config: &PaperConfig) -> Vec<u64> {
    workload
        .generator(config.footprint_for(workload), config.seed)
        .take(config.accesses as usize)
        .collect()
}

/// Runs one (workload, scenario, scheme) cell from scratch.
#[must_use]
pub fn run_cell(
    workload: WorkloadKind,
    scenario: Scenario,
    kind: SchemeKind,
    config: &PaperConfig,
) -> RunStats {
    let map = mapping_for(workload, scenario, config);
    let trace = trace_for(workload, config);
    Machine::for_scheme(kind, &map, config).run(trace)
}

/// Runs a full suite: every workload × every scheme under one scenario,
/// sharing the mapping and trace across schemes. Cells run on the matrix
/// worker pool (see [`crate::matrix`]); results are bit-identical to
/// [`run_suite_serial`] because each cell is deterministic.
#[must_use]
pub fn run_suite(
    scenario: Scenario,
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> SuiteResult {
    crate::matrix::run_matrix(&[scenario], workloads, kinds, config)
        .pop()
        .expect("one scenario in, one suite out")
}

/// The single-threaded reference implementation of [`run_suite`]: plain
/// nested loops, no cache, no worker pool. The matrix driver is validated
/// cell-for-cell against this.
#[must_use]
pub fn run_suite_serial(
    scenario: Scenario,
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> SuiteResult {
    let rows = workloads
        .iter()
        .map(|&workload| {
            let map = mapping_for(workload, scenario, config);
            // One placement index per mapping: every scheme of the row
            // shares it instead of re-deriving it per machine.
            let index = Arc::new(map.page_index());
            let trace = trace_for(workload, config);
            let runs = kinds
                .iter()
                .map(|&kind| {
                    Machine::for_scheme_indexed(kind, &map, &index, config)
                        .run(trace.iter().copied())
                })
                .collect();
            WorkloadRow { workload, runs }
        })
        .collect();
    SuiteResult { scenario, schemes: kinds.iter().map(|k| k.label()).collect(), rows }
}

/// The `Static Ideal` scheme: exhaustively sweeps anchor distances for one
/// (workload, scenario) and returns the run with the fewest TLB misses,
/// mirroring the paper's "one optimal distance ... by exhaustive evaluation
/// of all possible distances".
#[must_use]
pub fn static_ideal(
    workload: WorkloadKind,
    scenario: Scenario,
    candidates: &[u64],
    config: &PaperConfig,
) -> RunStats {
    assert!(!candidates.is_empty(), "need at least one candidate distance");
    let map = mapping_for(workload, scenario, config);
    let index = Arc::new(map.page_index());
    let trace = trace_for(workload, config);
    candidates
        .iter()
        .map(|&d| {
            Machine::for_scheme_indexed(SchemeKind::AnchorStatic(d), &map, &index, config)
                .run(trace.iter().copied())
        })
        .min_by_key(RunStats::tlb_misses)
        .expect("candidates nonempty")
}

/// The distance sweep used for `Static Ideal` when exhaustive search is too
/// slow: every power of two from 4 to 64 K in steps of 4×.
#[must_use]
pub fn default_static_sweep() -> Vec<u64> {
    (1..=8).map(|i| 1u64 << (2 * i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PaperConfig {
        PaperConfig { accesses: 10_000, footprint_shift: 5, ..PaperConfig::default() }
    }

    #[test]
    fn suite_shapes_are_consistent() {
        let config = tiny();
        let kinds = [SchemeKind::Baseline, SchemeKind::AnchorDynamic];
        let suite = run_suite(
            Scenario::MediumContiguity,
            &[WorkloadKind::Gups, WorkloadKind::Omnetpp],
            &kinds,
            &config,
        );
        assert_eq!(suite.rows.len(), 2);
        assert_eq!(suite.schemes, ["Base", "Dynamic"]);
        for row in &suite.rows {
            assert_eq!(row.runs.len(), 2);
            assert_eq!(row.runs[0].accesses, 10_000);
        }
        let means = suite.mean_relative_misses();
        assert!((means[0] - 100.0).abs() < 1e-9, "baseline is 100% of itself");
        assert!(means[1] <= 100.0 + 1e-9, "anchor no worse than baseline on medium");
    }

    #[test]
    fn cells_are_reproducible() {
        let config = tiny();
        let a =
            run_cell(WorkloadKind::Milc, Scenario::LowContiguity, SchemeKind::Baseline, &config);
        let b =
            run_cell(WorkloadKind::Milc, Scenario::LowContiguity, SchemeKind::Baseline, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_scenarios_give_different_mappings() {
        let config = tiny();
        let low = mapping_for(WorkloadKind::Mcf, Scenario::LowContiguity, &config);
        let max = mapping_for(WorkloadKind::Mcf, Scenario::MaxContiguity, &config);
        assert_eq!(low.mapped_pages(), max.mapped_pages());
        assert!(low.chunk_count() > max.chunk_count());
    }

    #[test]
    fn static_ideal_is_no_worse_than_any_candidate() {
        let config = tiny();
        let candidates = [4u64, 64, 4096];
        let best =
            static_ideal(WorkloadKind::Canneal, Scenario::MediumContiguity, &candidates, &config);
        for d in candidates {
            let run = run_cell(
                WorkloadKind::Canneal,
                Scenario::MediumContiguity,
                SchemeKind::AnchorStatic(d),
                &config,
            );
            assert!(best.tlb_misses() <= run.tlb_misses(), "d={d}");
        }
    }

    #[test]
    fn default_sweep_is_powers_of_four() {
        assert_eq!(default_static_sweep(), vec![4, 16, 64, 256, 1024, 4096, 16384, 65536]);
    }
}
