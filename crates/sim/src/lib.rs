//! Trace-driven simulation engine and experiment harness.
//!
//! This crate ties everything together:
//!
//! * [`PaperConfig`] — the evaluation configuration of Table 3 (latencies,
//!   epoch length, trace length, seeds).
//! * [`SchemeKind`] — the registry of translation schemes compared in the
//!   paper, each buildable against any mapping.
//! * [`Machine`] — a scheme plus the logical-address placement layer;
//!   drives a trace through the MMU and collects [`RunStats`].
//! * [`experiment`] — the evaluation matrix building blocks (mapping and
//!   trace generation, suites, static-ideal sweeps) plus the serial
//!   reference driver.
//! * [`matrix`] — the parallel, zero-copy matrix driver: memoized
//!   mapping/trace generation and a bounded worker pool over every
//!   (scenario, workload, scheme) cell, bit-identical to the serial
//!   reference.
//! * [`report`] — text renderers that print the same rows/series as the
//!   paper's figures and tables, plus JSON output.
//!
//! # Examples
//!
//! ```
//! use hytlb_sim::{Machine, PaperConfig, SchemeKind};
//! use hytlb_mem::Scenario;
//! use hytlb_trace::WorkloadKind;
//!
//! let config = PaperConfig::default();
//! let map = std::sync::Arc::new(Scenario::MediumContiguity.generate(4096, config.seed));
//! let mut machine = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config);
//! let trace = WorkloadKind::Canneal.generator(4096, config.seed).take(50_000);
//! let stats = machine.run(trace);
//! assert_eq!(stats.accesses, 50_000);
//! assert!(stats.translation_cpi() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dispatch;
mod engine;
mod error;
pub mod experiment;
pub mod matrix;
pub mod report;

pub use config::{PaperConfig, SchemeKind};
pub use dispatch::SchemeDispatch;
pub use engine::{CpiBreakdown, Machine, RunStats};
pub use error::SimError;
pub use matrix::{run_matrix, try_run_matrix, MatrixCache};
