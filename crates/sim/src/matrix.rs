//! Parallel, zero-copy evaluation-matrix driver.
//!
//! The paper's figures are all slices of one big matrix: *scenario ×
//! workload × scheme* (plus a static-distance sweep for the `Static
//! Ideal` column). The serial harness regenerated the mapping and the
//! trace for every slice; this module generates each exactly once, shares
//! them by reference count, and fans the cells out over a bounded worker
//! pool.
//!
//! Guarantees:
//!
//! * **Bit-identical to serial.** Every cell is a pure function of
//!   `(workload, scenario, scheme, config)`; the pool only changes *when*
//!   a cell runs, never its inputs. [`run_matrix`] equals
//!   [`run_suite_serial`](crate::experiment::run_suite_serial)
//!   cell-for-cell, and the static-ideal fold replicates
//!   [`static_ideal`](crate::experiment::static_ideal)'s first-minimum
//!   tie-breaking.
//! * **Exactly-once generation.** Mappings are keyed by `(workload,
//!   scenario, config fingerprint)` and traces by `(workload,
//!   fingerprint)` — traces are scenario-independent, like the paper's
//!   Pin traces. Concurrent requests for the same key block on one
//!   [`OnceLock`]; [`MatrixCache::stats`] exposes build counters so tests
//!   can assert the exactly-once property.
//! * **Zero per-scheme copies.** Each cell hands `Arc` clones of the
//!   mapping and its [`PageIndex`] to the machine; no `AddressSpaceMap`
//!   is ever deep-cloned.
//!
//! Worker count comes from [`PaperConfig::threads`], else the
//! `HYTLB_THREADS` environment variable, else the machine's available
//! parallelism.

use crate::config::{PaperConfig, SchemeKind};
use crate::engine::{Machine, RunStats};
use crate::error::SimError;
use crate::experiment::{mapping_for, trace_for, SuiteResult, WorkloadRow};
use hytlb_mem::{AddressSpaceMap, PageIndex, Scenario};
use hytlb_trace::WorkloadKind;
use hytlb_tracefile::TraceStore;
use hytlb_types::VirtAddr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A mapping plus its placement index, shared across every scheme of a
/// cell.
#[derive(Debug, Clone)]
pub struct SharedMapping {
    /// The address-space map, shared with each scheme.
    pub map: Arc<AddressSpaceMap>,
    /// The logical-page placement index, shared with each machine.
    pub index: Arc<PageIndex>,
}

/// Build counters for the memoization layer (see [`MatrixCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Mappings generated (one per distinct `(workload, scenario,
    /// fingerprint)` requested).
    pub mapping_builds: usize,
    /// Traces generated (one per distinct `(workload, fingerprint)`
    /// requested that the corpus could not serve).
    pub trace_builds: usize,
    /// Traces replayed from the corpus store instead of generated.
    pub trace_loads: usize,
    /// Resolved virtual-address traces computed (one per distinct
    /// `(workload, scenario, fingerprint)` requested).
    pub resolved_builds: usize,
}

type MappingKey = (WorkloadKind, Scenario, u64);
type TraceKey = (WorkloadKind, u64);
type MemoTable<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Memoizes mapping and trace generation across matrix cells.
///
/// Cheap to create; hold one across several [`run_matrix_with`] calls to
/// share inputs between figures that cover the same cells.
#[derive(Debug, Default)]
pub struct MatrixCache {
    mappings: MemoTable<MappingKey, SharedMapping>,
    traces: MemoTable<TraceKey, Result<Arc<Vec<u64>>, SimError>>,
    resolved: MemoTable<MappingKey, Result<Arc<Vec<VirtAddr>>, SimError>>,
    corpus: Option<Arc<TraceStore>>,
    mapping_builds: AtomicUsize,
    trace_builds: AtomicUsize,
    trace_loads: AtomicUsize,
    resolved_builds: AtomicUsize,
}

impl MatrixCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that replays traces from a recorded corpus.
    ///
    /// When a trace is first requested, the corpus is consulted for a
    /// recording keyed `(workload label, footprint, seed)` with at least
    /// `config.accesses` accesses; its prefix is loaded instead of
    /// running the generator (generators are deterministic streams, so
    /// the prefix of a longer recording is bit-identical to a fresh
    /// generation). Keys the corpus lacks fall back to generation, so a
    /// partial corpus accelerates what it has without limiting the
    /// matrix. A corrupt recording is *not* silently regenerated — it
    /// surfaces as [`SimError::Corpus`], because bad bytes on disk
    /// should be noticed, not papered over.
    #[must_use]
    pub fn with_corpus(store: Arc<TraceStore>) -> Self {
        MatrixCache { corpus: Some(store), ..Self::default() }
    }

    /// The mapping (and its page index) for a cell, generating it if this
    /// is the first request for the key. Blocks if another worker is
    /// already generating the same key, so generation happens exactly
    /// once.
    pub fn mapping(
        &self,
        workload: WorkloadKind,
        scenario: Scenario,
        config: &PaperConfig,
    ) -> SharedMapping {
        let key = (workload, scenario, config.fingerprint());
        let slot = Arc::clone(
            self.mappings.lock().expect("mapping table poisoned").entry(key).or_default(),
        );
        slot.get_or_init(|| {
            self.mapping_builds.fetch_add(1, Ordering::Relaxed);
            let map = mapping_for(workload, scenario, config);
            let index = Arc::new(map.page_index());
            SharedMapping { map, index }
        })
        .clone()
    }

    /// The trace a workload replays, generating it on first request.
    /// Scenario-independent, exactly like the paper's per-benchmark Pin
    /// traces.
    ///
    /// # Panics
    ///
    /// Panics if a corpus replay fails; use [`MatrixCache::try_trace`]
    /// to handle [`SimError::Corpus`] instead.
    pub fn trace(&self, workload: WorkloadKind, config: &PaperConfig) -> Arc<Vec<u64>> {
        self.try_trace(workload, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`MatrixCache::trace`]: serves from the corpus
    /// store when one is attached and has a long-enough recording,
    /// generating otherwise. The outcome (including a corpus failure)
    /// is memoized, so the store is consulted at most once per key.
    pub fn try_trace(
        &self,
        workload: WorkloadKind,
        config: &PaperConfig,
    ) -> Result<Arc<Vec<u64>>, SimError> {
        let key = (workload, config.fingerprint());
        let slot =
            Arc::clone(self.traces.lock().expect("trace table poisoned").entry(key).or_default());
        slot.get_or_init(|| {
            if let Some(store) = &self.corpus {
                match store.load_prefix(
                    workload.label(),
                    config.footprint_for(workload),
                    config.seed,
                    config.accesses,
                ) {
                    Ok(Some(addresses)) => {
                        self.trace_loads.fetch_add(1, Ordering::Relaxed);
                        return Ok(Arc::new(addresses));
                    }
                    Ok(None) => {} // not recorded (or too short): generate
                    Err(e) => return Err(SimError::Corpus { detail: e.to_string() }),
                }
            }
            self.trace_builds.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(trace_for(workload, config)))
        })
        .clone()
    }

    /// Records every trace of `workloads` under `config` into `store`,
    /// so later runs can attach it via [`MatrixCache::with_corpus`] and
    /// replay instead of regenerate. Traces already cached in memory are
    /// spilled as-is; missing ones are generated first. Keys the store
    /// already holds with enough accesses are skipped. Returns how many
    /// traces were written.
    pub fn spill_traces(
        &self,
        store: &mut TraceStore,
        workloads: &[WorkloadKind],
        config: &PaperConfig,
    ) -> Result<usize, SimError> {
        let mut written = 0;
        for &workload in workloads {
            let footprint_pages = config.footprint_for(workload);
            if store
                .find(workload.label(), footprint_pages, config.seed)
                .is_some_and(|e| e.accesses >= config.accesses)
            {
                continue;
            }
            let trace = self.try_trace(workload, config)?;
            store
                .record(workload.label(), footprint_pages, config.seed, trace.iter().copied())
                .map_err(|e| SimError::Corpus { detail: e.to_string() })?;
            written += 1;
        }
        Ok(written)
    }

    /// The fully-resolved virtual-address trace for a cell: the logical
    /// trace placed onto the cell's mapping (see
    /// [`PageIndex::resolve`](hytlb_mem::PageIndex::resolve)), computed on
    /// first request and shared by every scheme of the cell afterwards.
    /// This hoists the per-access div/mod + placement lookup of the scalar
    /// loop out of the schemes dimension entirely — with the paper set it
    /// is paid once instead of six times per cell.
    ///
    /// # Panics
    ///
    /// Panics if a corpus replay fails; use
    /// [`MatrixCache::try_resolved_trace`] to handle
    /// [`SimError::Corpus`] instead.
    pub fn resolved_trace(
        &self,
        workload: WorkloadKind,
        scenario: Scenario,
        config: &PaperConfig,
    ) -> Arc<Vec<VirtAddr>> {
        self.try_resolved_trace(workload, scenario, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Non-panicking [`MatrixCache::resolved_trace`].
    pub fn try_resolved_trace(
        &self,
        workload: WorkloadKind,
        scenario: Scenario,
        config: &PaperConfig,
    ) -> Result<Arc<Vec<VirtAddr>>, SimError> {
        let key = (workload, scenario, config.fingerprint());
        let slot = Arc::clone(
            self.resolved.lock().expect("resolved table poisoned").entry(key).or_default(),
        );
        slot.get_or_init(|| {
            self.resolved_builds.fetch_add(1, Ordering::Relaxed);
            let shared = self.mapping(workload, scenario, config);
            let trace = self.try_trace(workload, config)?;
            Ok(Arc::new(shared.index.resolve(&trace)))
        })
        .clone()
    }

    /// How many mappings, traces and resolved traces this cache has
    /// generated so far, and how many traces were replayed from the
    /// corpus instead.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            mapping_builds: self.mapping_builds.load(Ordering::Relaxed),
            trace_builds: self.trace_builds.load(Ordering::Relaxed),
            trace_loads: self.trace_loads.load(Ordering::Relaxed),
            resolved_builds: self.resolved_builds.load(Ordering::Relaxed),
        }
    }
}

/// Resolves the worker-pool size: `config.threads`, else `HYTLB_THREADS`,
/// else available parallelism. Always at least 1.
#[must_use]
pub fn worker_count(config: &PaperConfig) -> usize {
    config
        .threads
        .or_else(|| std::env::var("HYTLB_THREADS").ok().and_then(|v| v.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Runs every `(scenario, workload, scheme)` cell of the matrix on a
/// bounded worker pool, one suite per scenario in input order. Inputs are
/// generated exactly once via a fresh [`MatrixCache`].
///
/// # Panics
///
/// Panics if a cell fails; the message names the failing cell. Use
/// [`try_run_matrix`] to handle the failure instead.
#[must_use]
pub fn run_matrix(
    scenarios: &[Scenario],
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> Vec<SuiteResult> {
    run_matrix_with(&MatrixCache::new(), scenarios, workloads, kinds, config)
}

/// Non-panicking [`run_matrix`]: a failing cell surfaces as
/// [`SimError::Cell`] naming its `(scenario, workload, scheme)`.
pub fn try_run_matrix(
    scenarios: &[Scenario],
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> Result<Vec<SuiteResult>, SimError> {
    try_run_matrix_with(&MatrixCache::new(), scenarios, workloads, kinds, config)
}

/// [`run_matrix`] against a caller-owned cache, so consecutive matrices
/// (e.g. several figures in one process) reuse mappings and traces.
///
/// # Panics
///
/// Panics if a cell fails; the message names the failing cell. Use
/// [`try_run_matrix_with`] to handle the failure instead.
#[must_use]
pub fn run_matrix_with(
    cache: &MatrixCache,
    scenarios: &[Scenario],
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> Vec<SuiteResult> {
    try_run_matrix_with(cache, scenarios, workloads, kinds, config)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`run_matrix_with`]: a failing cell surfaces as
/// [`SimError::Cell`] naming its `(scenario, workload, scheme)`.
pub fn try_run_matrix_with(
    cache: &MatrixCache,
    scenarios: &[Scenario],
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> Result<Vec<SuiteResult>, SimError> {
    let cells: Vec<(usize, usize, usize)> = (0..scenarios.len())
        .flat_map(|s| {
            (0..workloads.len()).flat_map(move |w| (0..kinds.len()).map(move |k| (s, w, k)))
        })
        .collect();
    let results = run_cells(cache, &cells, scenarios, workloads, kinds, config);

    let mut results = results.into_iter();
    scenarios
        .iter()
        .map(|&scenario| {
            Ok(SuiteResult {
                scenario,
                schemes: kinds.iter().map(|k| k.label()).collect(),
                rows: workloads
                    .iter()
                    .map(|&workload| {
                        Ok(WorkloadRow {
                            workload,
                            runs: (0..kinds.len())
                                .map(|_| results.next().expect("one run per cell"))
                                .collect::<Result<Vec<RunStats>, SimError>>()?,
                        })
                    })
                    .collect::<Result<Vec<WorkloadRow>, SimError>>()?,
            })
        })
        .collect()
}

/// [`run_matrix_with`] plus a trailing `Static Ideal` column: the sweep's
/// `AnchorStatic` candidates join the scheme dimension of the pool, and
/// each cell's winner is folded out afterwards with the same
/// first-minimum tie-breaking as
/// [`static_ideal`](crate::experiment::static_ideal).
///
/// # Panics
///
/// Panics if `sweep` is empty.
#[must_use]
pub fn run_matrix_with_static_ideal(
    cache: &MatrixCache,
    scenarios: &[Scenario],
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    sweep: &[u64],
    config: &PaperConfig,
) -> Vec<SuiteResult> {
    assert!(!sweep.is_empty(), "need at least one candidate distance");
    let mut all_kinds: Vec<SchemeKind> = kinds.to_vec();
    all_kinds.extend(sweep.iter().map(|&d| SchemeKind::AnchorStatic(d)));
    let mut suites = run_matrix_with(cache, scenarios, workloads, &all_kinds, config);
    for suite in &mut suites {
        suite.schemes.truncate(kinds.len());
        suite.schemes.push("Static Ideal".to_owned());
        for row in &mut suite.rows {
            let candidates = row.runs.split_off(kinds.len());
            let best =
                candidates.into_iter().min_by_key(RunStats::tlb_misses).expect("sweep nonempty");
            row.runs.push(best);
        }
    }
    suites
}

/// Runs the given cells on the worker pool and returns one result per
/// cell, in input order. A failing cell's error is wrapped in
/// [`SimError::Cell`] naming the cell's coordinates.
fn run_cells(
    cache: &MatrixCache,
    cells: &[(usize, usize, usize)],
    scenarios: &[Scenario],
    workloads: &[WorkloadKind],
    kinds: &[SchemeKind],
    config: &PaperConfig,
) -> Vec<Result<RunStats, SimError>> {
    let slots: Vec<OnceLock<Result<RunStats, SimError>>> =
        cells.iter().map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let threads = worker_count(config).min(cells.len()).max(1);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(s, w, k)) = cells.get(i) else { break };
                let run = cache
                    .try_resolved_trace(workloads[w], scenarios[s], config)
                    .and_then(|resolved| {
                        let shared = cache.mapping(workloads[w], scenarios[s], config);
                        Machine::for_scheme_indexed(kinds[k], &shared.map, &shared.index, config)
                            .try_run_resolved(&resolved)
                    })
                    .map_err(|e| {
                        e.in_cell(scenarios[s].label(), workloads[w].label(), &kinds[k].label())
                    });
                slots[i].set(run).expect("each cell claimed once");
            });
        }
    });
    slots.into_iter().map(|slot| slot.into_inner().expect("pool ran every cell")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_suite_serial;

    fn tiny() -> PaperConfig {
        PaperConfig { accesses: 8_000, footprint_shift: 5, ..PaperConfig::default() }
    }

    #[test]
    fn matrix_matches_serial_reference() {
        let config = PaperConfig { threads: Some(4), ..tiny() };
        let scenarios = [Scenario::LowContiguity, Scenario::MaxContiguity];
        let workloads = [WorkloadKind::Gups, WorkloadKind::Omnetpp];
        let kinds = [SchemeKind::Baseline, SchemeKind::Thp, SchemeKind::AnchorDynamic];
        let parallel = run_matrix(&scenarios, &workloads, &kinds, &config);
        let serial: Vec<SuiteResult> =
            scenarios.iter().map(|&s| run_suite_serial(s, &workloads, &kinds, &config)).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn cache_generates_inputs_exactly_once() {
        let config = PaperConfig { threads: Some(8), ..tiny() };
        let cache = MatrixCache::new();
        let scenarios = [Scenario::LowContiguity, Scenario::HighContiguity];
        let workloads = [WorkloadKind::Gups, WorkloadKind::Mcf];
        let kinds = [SchemeKind::Baseline, SchemeKind::Rmm];
        let _ = run_matrix_with(&cache, &scenarios, &workloads, &kinds, &config);
        let stats = cache.stats();
        assert_eq!(stats.mapping_builds, scenarios.len() * workloads.len());
        assert_eq!(stats.trace_builds, workloads.len());
        assert_eq!(stats.resolved_builds, scenarios.len() * workloads.len());
        // A second matrix over the same cells generates nothing new.
        let _ = run_matrix_with(&cache, &scenarios, &workloads, &kinds, &config);
        assert_eq!(cache.stats(), stats);
    }

    #[test]
    fn static_ideal_column_matches_serial_fold() {
        let config = PaperConfig { threads: Some(4), ..tiny() };
        let sweep = [4u64, 64, 4096];
        let kinds = [SchemeKind::Baseline, SchemeKind::AnchorDynamic];
        let suites = run_matrix_with_static_ideal(
            &MatrixCache::new(),
            &[Scenario::MediumContiguity],
            &[WorkloadKind::Canneal],
            &kinds,
            &sweep,
            &config,
        );
        assert_eq!(suites.len(), 1);
        let suite = &suites[0];
        assert_eq!(suite.schemes, ["Base", "Dynamic", "Static Ideal"]);
        let best = crate::experiment::static_ideal(
            WorkloadKind::Canneal,
            Scenario::MediumContiguity,
            &sweep,
            &config,
        );
        assert_eq!(suite.rows[0].runs[2], best);
    }

    #[test]
    fn corpus_replay_is_bit_identical_and_skips_generation() {
        let config = PaperConfig { threads: Some(2), ..tiny() };
        let workloads = [WorkloadKind::Gups, WorkloadKind::Mcf];
        let root = std::env::temp_dir().join(format!("hytlb_matrix_corpus_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();

        // Generate once, spill to the store.
        let fresh = MatrixCache::new();
        let mut store = TraceStore::open_or_create(&root).unwrap();
        let written = fresh.spill_traces(&mut store, &workloads, &config).unwrap();
        assert_eq!(written, 2);
        assert_eq!(fresh.spill_traces(&mut store, &workloads, &config).unwrap(), 0, "idempotent");

        // Replay from the store: same bytes, zero generator runs.
        let replay = MatrixCache::with_corpus(Arc::new(store));
        for &w in &workloads {
            assert_eq!(replay.trace(w, &config), fresh.trace(w, &config), "{w:?}");
        }
        let stats = replay.stats();
        assert_eq!(stats.trace_loads, 2);
        assert_eq!(stats.trace_builds, 0);

        // A workload the corpus lacks falls back to generation.
        let _ = replay.trace(WorkloadKind::Milc, &config);
        assert_eq!(replay.stats().trace_builds, 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_corpus_surfaces_as_corpus_error() {
        let config = PaperConfig { threads: Some(1), ..tiny() };
        let root =
            std::env::temp_dir().join(format!("hytlb_matrix_badcorpus_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let mut store = TraceStore::open_or_create(&root).unwrap();
        MatrixCache::new().spill_traces(&mut store, &[WorkloadKind::Gups], &config).unwrap();
        // Flip a byte in the middle of the recorded file.
        let path = root.join(store.entries()[0].path.clone());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let replay = MatrixCache::with_corpus(Arc::new(store));
        let err = replay.try_trace(WorkloadKind::Gups, &config).unwrap_err();
        assert!(matches!(err, SimError::Corpus { .. }), "{err}");
        // The failure is memoized and also reaches matrix cells as a
        // named Cell error.
        let cell_err = try_run_matrix_with(
            &replay,
            &[Scenario::LowContiguity],
            &[WorkloadKind::Gups],
            &[SchemeKind::Baseline],
            &config,
        )
        .unwrap_err();
        assert!(matches!(cell_err, SimError::Cell { .. }), "{cell_err}");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn worker_count_resolution_order() {
        let mut config = tiny();
        config.threads = Some(3);
        assert_eq!(worker_count(&config), 3);
        config.threads = Some(0); // nonsense values fall through
        assert!(worker_count(&config) >= 1);
        config.threads = None;
        assert!(worker_count(&config) >= 1);
    }

    #[test]
    fn single_thread_pool_still_covers_all_cells() {
        let config = PaperConfig { threads: Some(1), ..tiny() };
        let suites = run_matrix(
            &[Scenario::EagerPaging],
            &[WorkloadKind::Milc],
            &[SchemeKind::Baseline, SchemeKind::Cluster],
            &config,
        );
        assert_eq!(suites[0].rows[0].runs.len(), 2);
        assert_eq!(suites[0].rows[0].runs[0].accesses, config.accesses);
    }
}
