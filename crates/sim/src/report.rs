//! Text and JSON renderers that reproduce the paper's figure/table rows.

use crate::error::SimError;
use crate::experiment::SuiteResult;
use std::fmt::Write as _;

/// Renders a generic aligned table.
///
/// `rows` pairs a row label with its cell strings; `cols` are the column
/// headers (excluding the leading row-label column).
#[must_use]
pub fn render_table(title: &str, cols: &[String], rows: &[(String, Vec<String>)]) -> String {
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once(title.len()))
        .max()
        .unwrap_or(8)
        .max(8);
    let col_ws: Vec<usize> = cols
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .filter_map(|(_, cells)| cells.get(i).map(String::len))
                .chain(std::iter::once(c.len()))
                .max()
                .unwrap_or(6)
        })
        .collect();
    let mut out = String::new();
    let _ = write!(out, "{title:<label_w$}");
    for (c, w) in cols.iter().zip(&col_ws) {
        let _ = write!(out, "  {c:>w$}");
    }
    out.push('\n');
    let total: usize = label_w + col_ws.iter().map(|w| w + 2).sum::<usize>();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for (label, cells) in rows {
        let _ = write!(out, "{label:<label_w$}");
        for (cell, w) in cells.iter().zip(&col_ws) {
            let _ = write!(out, "  {cell:>w$}");
        }
        out.push('\n');
    }
    out
}

/// Relative-TLB-miss table for one suite (the bar heights of Figures 7/8):
/// one row per workload plus a `mean` row; values in percent of the first
/// scheme (the baseline).
#[must_use]
pub fn relative_miss_table(suite: &SuiteResult) -> String {
    let mut rows: Vec<(String, Vec<String>)> = suite
        .rows
        .iter()
        .map(|row| {
            let base = &row.runs[0];
            let cells =
                row.runs.iter().map(|r| format!("{:.1}", r.relative_misses_pct(base))).collect();
            (row.workload.label().to_owned(), cells)
        })
        .collect();
    let means = suite.mean_relative_misses();
    rows.push(("mean".to_owned(), means.iter().map(|m| format!("{m:.1}")).collect()));
    render_table(&format!("rel.misses% [{}]", suite.scenario.label()), &suite.schemes, &rows)
}

/// Table 5-style L2 access breakdown for one scheme column of a suite:
/// regular-hit / coalesced-hit / miss rates of L2 accesses.
///
/// # Panics
///
/// Panics if `scheme_index` is out of range for the suite.
#[must_use]
pub fn l2_breakdown_table(suite: &SuiteResult, scheme_index: usize) -> String {
    let cols = vec!["R.hit".to_owned(), "A.hit".to_owned(), "L2 miss".to_owned()];
    let rows: Vec<(String, Vec<String>)> = suite
        .rows
        .iter()
        .map(|row| {
            let s = &row.runs[scheme_index].stats;
            (
                row.workload.label().to_owned(),
                vec![
                    format!("{:.0} %", s.l2_regular_hit_rate() * 100.0),
                    format!("{:.0} %", s.l2_coalesced_hit_rate() * 100.0),
                    format!("{:.0} %", s.l2_miss_rate() * 100.0),
                ],
            )
        })
        .collect();
    render_table(
        &format!("L2 breakdown [{} / {}]", suite.scenario.label(), suite.schemes[scheme_index]),
        &cols,
        &rows,
    )
}

/// Table 6-style anchor-distance table: workloads × scenarios, showing the
/// distance the dynamic algorithm selected in each suite. All suites must
/// contain the same workloads in the same order and include an anchor
/// scheme run; a violation is reported as a [`SimError`] naming the
/// offending row and column instead of a bare panic.
pub fn distance_table(suites: &[&SuiteResult], scheme_index: usize) -> Result<String, SimError> {
    let first = suites.first().ok_or(SimError::NoSuites)?;
    let cols: Vec<String> = suites.iter().map(|s| s.scenario.label().to_owned()).collect();
    let rows: Vec<(String, Vec<String>)> = first
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let cells = suites
                .iter()
                .map(|s| {
                    if s.rows[i].workload != row.workload {
                        return Err(SimError::SuiteMisaligned {
                            row: i,
                            expected: row.workload.label().to_owned(),
                            found: s.rows[i].workload.label().to_owned(),
                        });
                    }
                    let d = s.rows[i].runs[scheme_index].anchor_distance.ok_or_else(|| {
                        SimError::NotAnAnchorColumn {
                            scheme: s.schemes[scheme_index].clone(),
                            workload: row.workload.label().to_owned(),
                        }
                    })?;
                    Ok(format_distance(d))
                })
                .collect::<Result<Vec<String>, SimError>>()?;
            Ok((row.workload.label().to_owned(), cells))
        })
        .collect::<Result<_, SimError>>()?;
    Ok(render_table("anchor distance", &cols, &rows))
}

/// Formats a distance the way Table 6 does (4, 32, 1K, 64K, ...).
#[must_use]
pub fn format_distance(d: u64) -> String {
    if d >= 1024 && d.is_multiple_of(1024) {
        format!("{}K", d / 1024)
    } else {
        d.to_string()
    }
}

/// Translation-CPI breakdown table (Figures 10/11): per workload and
/// scheme, `L2hit + coalesced + walk = total` CPI.
#[must_use]
pub fn cpi_table(suite: &SuiteResult) -> String {
    let rows: Vec<(String, Vec<String>)> = suite
        .rows
        .iter()
        .map(|row| {
            let cells = row
                .runs
                .iter()
                .map(|r| {
                    format!(
                        "{:.3} ({:.3}+{:.3}+{:.3})",
                        r.cpi.total(),
                        r.cpi.l2_hit,
                        r.cpi.coalesced_hit,
                        r.cpi.walk
                    )
                })
                .collect();
            (row.workload.label().to_owned(), cells)
        })
        .collect();
    render_table(
        &format!("translation CPI [{}] (total = l2+coal+walk)", suite.scenario.label()),
        &suite.schemes,
        &rows,
    )
}

/// Renders grouped horizontal ASCII bars — the textual analogue of the
/// paper's bar figures. One group per row label; one bar per series, drawn
/// to a shared scale with its numeric value appended.
///
/// ```
/// use hytlb_sim::report::render_bars;
/// let s = render_bars(
///     "relative misses %",
///     &["Base".into(), "Dynamic".into()],
///     &[("gups".into(), vec![100.0, 25.0])],
///     100.0,
/// );
/// assert!(s.contains("gups"));
/// assert!(s.contains("Dynamic"));
/// ```
///
/// # Panics
///
/// Panics if `full_scale` is not a positive, finite number or a row's
/// value count differs from the series count.
#[must_use]
pub fn render_bars(
    title: &str,
    series: &[String],
    rows: &[(String, Vec<f64>)],
    full_scale: f64,
) -> String {
    assert!(full_scale > 0.0 && full_scale.is_finite(), "bad scale");
    const WIDTH: usize = 40;
    let name_w = series.iter().map(String::len).max().unwrap_or(4).max(4);
    let mut out = format!("{title}  (bar = {full_scale} at full width)\n");
    for (label, values) in rows {
        assert_eq!(values.len(), series.len(), "row {label} has wrong arity");
        out.push_str(label);
        out.push('\n');
        for (name, &v) in series.iter().zip(values) {
            let clamped = v.clamp(0.0, full_scale);
            let cells = ((clamped / full_scale) * WIDTH as f64).round() as usize;
            let _ = writeln!(
                out,
                "  {name:<name_w$} |{}{} {v:.1}",
                "#".repeat(cells),
                " ".repeat(WIDTH - cells),
            );
        }
    }
    out
}

/// Bar view of a suite's mean relative misses (Figure 9 row).
#[must_use]
pub fn suite_bars(suite: &SuiteResult) -> String {
    let means = suite.mean_relative_misses();
    render_bars(
        &format!("mean relative misses, {}", suite.scenario.label()),
        &suite.schemes,
        &[(suite.scenario.label().to_owned(), means)],
        100.0,
    )
}

/// Serializes any result to pretty JSON for downstream tooling.
///
/// # Panics
///
/// Panics if serialization fails (the types here cannot fail to serialize).
#[must_use]
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    try_to_json(value).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`to_json`]: a serializer failure surfaces as
/// [`SimError::Serialize`] carrying the serializer's message.
pub fn try_to_json<T: serde::Serialize>(value: &T) -> Result<String, SimError> {
    serde_json::to_string_pretty(value).map_err(|e| SimError::Serialize { detail: e.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PaperConfig, SchemeKind};
    use crate::experiment::run_suite;
    use hytlb_mem::Scenario;
    use hytlb_trace::WorkloadKind;

    fn small_suite() -> SuiteResult {
        let config = PaperConfig { accesses: 5_000, footprint_shift: 5, ..PaperConfig::default() };
        run_suite(
            Scenario::MediumContiguity,
            &[WorkloadKind::Gups, WorkloadKind::Canneal],
            &[SchemeKind::Baseline, SchemeKind::AnchorDynamic],
            &config,
        )
    }

    #[test]
    fn tables_render_every_row_and_column() {
        let suite = small_suite();
        let t = relative_miss_table(&suite);
        assert!(t.contains("gups"));
        assert!(t.contains("canneal"));
        assert!(t.contains("mean"));
        assert!(t.contains("Dynamic"));
        let b = l2_breakdown_table(&suite, 1);
        assert!(b.contains("R.hit") && b.contains("A.hit"));
        let c = cpi_table(&suite);
        assert!(c.contains("translation CPI"));
    }

    #[test]
    fn distance_table_renders_k_suffixes() {
        assert_eq!(format_distance(4), "4");
        assert_eq!(format_distance(1024), "1K");
        assert_eq!(format_distance(65536), "64K");
        assert_eq!(format_distance(1536), "1536");
        let suite = small_suite();
        let t = distance_table(&[&suite], 1).expect("anchor column renders");
        assert!(t.contains("gups"));
        assert!(t.contains("medium"));
    }

    #[test]
    fn distance_table_reports_bad_inputs_by_name() {
        assert_eq!(distance_table(&[], 0), Err(SimError::NoSuites));
        let suite = small_suite();
        // Column 0 is the baseline: no anchor distance to report.
        let err = distance_table(&[&suite], 0).expect_err("baseline has no distance");
        let msg = err.to_string();
        assert!(msg.contains("Base") && msg.contains("gups"), "{msg}");
    }

    #[test]
    fn bars_scale_and_clamp() {
        let s = render_bars(
            "t",
            &["a".to_owned(), "b".to_owned()],
            &[("row".to_owned(), vec![50.0, 250.0])],
            100.0,
        );
        let lines: Vec<&str> = s.lines().collect();
        // 50% of a 40-cell bar = 20 hashes; 250 clamps to 40.
        assert_eq!(lines[2].matches('#').count(), 20);
        assert_eq!(lines[3].matches('#').count(), 40);
        assert!(lines[2].contains("50.0"));
        assert!(lines[3].contains("250.0"));
    }

    #[test]
    fn suite_bars_include_every_scheme() {
        let suite = small_suite();
        let s = suite_bars(&suite);
        assert!(s.contains("Base"));
        assert!(s.contains("Dynamic"));
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn bars_reject_nonpositive_scale() {
        let _ = render_bars("t", &[], &[], 0.0);
    }

    #[test]
    fn json_roundtrips() {
        let suite = small_suite();
        let json = to_json(&suite);
        let back: SuiteResult = serde_json::from_str(&json).unwrap();
        // Floats may lose a ULP through decimal JSON; compare the exact
        // integer payloads and structure.
        assert_eq!(back.scenario, suite.scenario);
        assert_eq!(back.schemes, suite.schemes);
        for (br, sr) in back.rows.iter().zip(&suite.rows) {
            assert_eq!(br.workload, sr.workload);
            for (b, s) in br.runs.iter().zip(&sr.runs) {
                assert_eq!(b.stats, s.stats);
                assert_eq!(b.anchor_distance, s.anchor_distance);
            }
        }
    }

    #[test]
    fn render_table_alignment_is_stable() {
        let t = render_table(
            "t",
            &["a".to_owned(), "bb".to_owned()],
            &[("row".to_owned(), vec!["1".to_owned(), "2".to_owned()])],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
