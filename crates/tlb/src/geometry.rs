//! Structural self-description of TLB arrays.
//!
//! Every hardware structure in the model can report its geometry — set
//! count, associativity and the index mask it expects callers to use — so
//! that `hytlb-audit -- invariants` can statically verify the architectural
//! constraints the paper's comparisons rely on (power-of-two set counts,
//! index masks that exactly cover the index bits) without reaching into
//! private fields.

/// The shape of one TLB array, as reported by the structure itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbGeometry {
    /// Human-readable structure name ("L2 shared", "L1 4KB", ...).
    pub label: &'static str,
    /// Number of sets (1 for fully-associative structures).
    pub sets: usize,
    /// Ways per set (the full capacity for fully-associative structures).
    pub ways: usize,
    /// The low-bit mask callers apply to derive a set index
    /// (`sets - 1` for set-associative arrays, 0 for fully-associative).
    pub index_mask: u64,
}

impl TlbGeometry {
    /// Total entry capacity.
    #[must_use]
    pub const fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    /// `true` when the geometry satisfies the simulator's architectural
    /// invariants: a power-of-two set count, at least one way, and an
    /// index mask that exactly covers the set-index bits.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        self.sets.is_power_of_two() && self.ways > 0 && self.index_mask == (self.sets as u64) - 1
    }
}

impl core::fmt::Display for TlbGeometry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {} sets x {} ways ({} entries), index mask {:#x}",
            self.label,
            self.sets,
            self.ways,
            self.capacity(),
            self.index_mask
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_geometry() {
        let g = TlbGeometry { label: "t", sets: 128, ways: 8, index_mask: 127 };
        assert!(g.is_well_formed());
        assert_eq!(g.capacity(), 1024);
        assert!(g.to_string().contains("128 sets"));
    }

    #[test]
    fn malformed_geometries_are_rejected() {
        let bad_sets = TlbGeometry { label: "t", sets: 96, ways: 8, index_mask: 95 };
        assert!(!bad_sets.is_well_formed());
        let bad_mask = TlbGeometry { label: "t", sets: 128, ways: 8, index_mask: 63 };
        assert!(!bad_mask.is_well_formed());
        let no_ways = TlbGeometry { label: "t", sets: 128, ways: 0, index_mask: 127 };
        assert!(!no_ways.is_well_formed());
    }

    #[test]
    fn fully_associative_shape() {
        let fa = TlbGeometry { label: "range", sets: 1, ways: 32, index_mask: 0 };
        assert!(fa.is_well_formed());
        assert_eq!(fa.capacity(), 32);
    }
}
