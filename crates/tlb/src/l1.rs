//! The split first-level TLB shared by every scheme.
//!
//! Table 3, "Common L1": 64-entry 4-way for 4 KB pages and 32-entry 4-way
//! for 2 MB pages. Its access latency is hidden (the L1 TLB is probed in
//! parallel with the L1 cache), so it contributes no cycles; its job in the
//! model is to filter which accesses reach the L2 structures.

use crate::SetAssocTlb;
use hytlb_types::{PageSize, PhysFrameNum, VirtPageNum, HUGE_PAGE_PAGES};

/// A translation cached in the L1 TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Entry {
    head_pfn: PhysFrameNum,
    size: PageSize,
}

/// The split 4 KB / 2 MB first-level TLB.
///
/// # Examples
///
/// ```
/// use hytlb_tlb::L1Tlb;
/// use hytlb_types::{PageSize, PhysFrameNum, VirtPageNum};
///
/// let mut l1 = L1Tlb::paper_default();
/// let vpn = VirtPageNum::new(0x1234);
/// assert_eq!(l1.lookup(vpn), None);
/// l1.insert(vpn, PhysFrameNum::new(7), PageSize::Base4K);
/// assert_eq!(l1.lookup(vpn), Some(PhysFrameNum::new(7)));
/// ```
#[derive(Debug, Clone)]
pub struct L1Tlb {
    base: SetAssocTlb<L1Entry>,
    huge: SetAssocTlb<L1Entry>,
}

impl L1Tlb {
    /// Builds an L1 with explicit geometry: `(sets, ways)` per size class.
    ///
    /// # Panics
    ///
    /// Panics if either set count is not a power of two or ways are zero.
    #[must_use]
    pub fn new(base_sets: usize, base_ways: usize, huge_sets: usize, huge_ways: usize) -> Self {
        L1Tlb {
            base: SetAssocTlb::new(base_sets, base_ways),
            huge: SetAssocTlb::new(huge_sets, huge_ways),
        }
    }

    /// The paper's configuration: 4 KB 64-entry 4-way, 2 MB 32-entry 4-way.
    #[must_use]
    pub fn paper_default() -> Self {
        L1Tlb::new(16, 4, 8, 4)
    }

    fn base_set(&self, vpn: VirtPageNum) -> usize {
        vpn.index_bits(0, (self.base.sets() as u64) - 1)
    }

    fn huge_set(&self, head: VirtPageNum) -> usize {
        head.index_bits(9, (self.huge.sets() as u64) - 1)
    }

    /// Geometries of both size-class arrays, for invariant auditing.
    #[must_use]
    pub fn geometries(&self) -> Vec<crate::TlbGeometry> {
        vec![self.base.geometry("L1 4KB"), self.huge.geometry("L1 2MB")]
    }

    /// Looks up `vpn` in both size classes, returning its backing frame.
    pub fn lookup(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        let set = self.base_set(vpn);
        if let Some(e) = self.base.lookup(set, vpn.as_u64()) {
            return Some(e.head_pfn);
        }
        let head = vpn.align_down(HUGE_PAGE_PAGES);
        let set = self.huge_set(head);
        self.huge.lookup(set, head.as_u64()).map(|e| e.head_pfn + (vpn - head))
    }

    /// Installs a translation. For [`PageSize::Huge2M`], `vpn`/`pfn` may be
    /// any page within the huge page — the entry is stored under its head.
    /// 1 GB pages have no array in this L1 (real parts keep a tiny separate
    /// structure); their translations simply are not cached here, so giant-
    /// mapped accesses always probe the L2.
    pub fn insert(&mut self, vpn: VirtPageNum, pfn: PhysFrameNum, size: PageSize) {
        match size {
            PageSize::Base4K => {
                let set = self.base_set(vpn);
                self.base.insert(set, vpn.as_u64(), L1Entry { head_pfn: pfn, size });
            }
            PageSize::Huge2M => {
                let head = vpn.align_down(HUGE_PAGE_PAGES);
                let head_pfn = PhysFrameNum::new(pfn.as_u64() - (vpn - head));
                let set = self.huge_set(head);
                self.huge.insert(set, head.as_u64(), L1Entry { head_pfn, size });
            }
            PageSize::Giant1G => {}
        }
    }

    /// Flushes both arrays (context switch / shootdown).
    pub fn flush(&mut self) {
        self.base.flush();
        self.huge.flush();
    }

    /// Live entries across both arrays.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len() + self.huge.len()
    }

    /// `true` when both arrays are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.huge.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_page_roundtrip() {
        let mut l1 = L1Tlb::paper_default();
        l1.insert(VirtPageNum::new(100), PhysFrameNum::new(7), PageSize::Base4K);
        assert_eq!(l1.lookup(VirtPageNum::new(100)), Some(PhysFrameNum::new(7)));
        assert_eq!(l1.lookup(VirtPageNum::new(101)), None);
    }

    #[test]
    fn huge_page_covers_whole_region() {
        let mut l1 = L1Tlb::paper_default();
        // Insert via an interior page; head math must normalise it.
        l1.insert(VirtPageNum::new(512 + 37), PhysFrameNum::new(2048 + 37), PageSize::Huge2M);
        assert_eq!(l1.lookup(VirtPageNum::new(512)), Some(PhysFrameNum::new(2048)));
        assert_eq!(l1.lookup(VirtPageNum::new(1023)), Some(PhysFrameNum::new(2559)));
        assert_eq!(l1.lookup(VirtPageNum::new(1024)), None);
    }

    #[test]
    fn capacity_matches_table3() {
        let l1 = L1Tlb::paper_default();
        assert_eq!(l1.base.capacity(), 64);
        assert_eq!(l1.huge.capacity(), 32);
    }

    #[test]
    fn flush_empties_both() {
        let mut l1 = L1Tlb::paper_default();
        l1.insert(VirtPageNum::new(1), PhysFrameNum::new(1), PageSize::Base4K);
        l1.insert(VirtPageNum::new(512), PhysFrameNum::new(512), PageSize::Huge2M);
        assert_eq!(l1.len(), 2);
        l1.flush();
        assert!(l1.is_empty());
    }

    #[test]
    fn conflict_misses_occur_beyond_associativity() {
        let mut l1 = L1Tlb::paper_default();
        // 5 pages mapping to the same set (stride = number of sets = 16).
        for i in 0..5u64 {
            l1.insert(VirtPageNum::new(i * 16), PhysFrameNum::new(i), PageSize::Base4K);
        }
        // The first-inserted page was evicted by LRU.
        assert_eq!(l1.lookup(VirtPageNum::new(0)), None);
        assert_eq!(l1.lookup(VirtPageNum::new(64)), Some(PhysFrameNum::new(4)));
    }
}
