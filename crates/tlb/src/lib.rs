//! TLB hardware models.
//!
//! The crate provides the building blocks every translation scheme in the
//! paper's evaluation is assembled from (Table 3):
//!
//! * [`SetAssocTlb`] — a generic set-associative array with true-LRU
//!   replacement. Schemes choose the payload type and compute set indices
//!   and tags themselves, because that is exactly the part the paper
//!   modifies (Figure 6 changes the *index bits* for anchor entries while
//!   reusing the same physical array).
//! * [`L1Tlb`] — the split per-size L1 (64-entry 4-way for 4 KB pages,
//!   32-entry 4-way for 2 MB pages), shared by every scheme.
//! * [`RangeTlb`] — the 32-entry fully-associative range TLB of RMM.
//! * [`TlbStats`] — hit/miss counters.
//!
//! # Examples
//!
//! ```
//! use hytlb_tlb::SetAssocTlb;
//!
//! // A 1024-entry, 8-way L2 TLB: 128 sets.
//! let mut l2: SetAssocTlb<u64> = SetAssocTlb::new(128, 8);
//! let vpn = hytlb_types::VirtPageNum::new(0xabcdef);
//! let set = vpn.index_bits(0, l2.geometry("L2").index_mask);
//! l2.insert(set, vpn.as_u64(), 42);
//! assert_eq!(l2.lookup(set, vpn.as_u64()), Some(&42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod l1;
mod range_tlb;
mod set_assoc;
mod stats;

pub use geometry::TlbGeometry;
pub use l1::L1Tlb;
pub use range_tlb::{RangeEntry, RangeTlb};
pub use set_assoc::SetAssocTlb;
pub use stats::TlbStats;
