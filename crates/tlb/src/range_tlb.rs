//! The fully-associative range TLB of Redundant Memory Mapping (RMM).
//!
//! RMM translates with variable-length *ranges*: `[start_vpn, start_vpn +
//! len)` maps to `[start_pfn, ...)` with a fixed offset. Because a lookup
//! must compare the incoming VPN against both bounds of every entry, the
//! structure is fully associative and therefore small — 32 entries in the
//! paper's configuration (Table 3, following Karakostas et al.).

use hytlb_types::{PhysFrameNum, VirtPageNum};

/// One range translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEntry {
    /// First virtual page of the range.
    pub start_vpn: VirtPageNum,
    /// Frame backing `start_vpn`.
    pub start_pfn: PhysFrameNum,
    /// Length in 4 KB pages.
    pub len: u64,
}

impl RangeEntry {
    /// `true` if `vpn` falls inside the range.
    #[must_use]
    pub fn covers(&self, vpn: VirtPageNum) -> bool {
        vpn >= self.start_vpn && (vpn - self.start_vpn) < self.len
    }

    /// Frame backing `vpn`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `vpn` is outside the range.
    #[must_use]
    pub fn translate(&self, vpn: VirtPageNum) -> PhysFrameNum {
        debug_assert!(self.covers(vpn));
        self.start_pfn + (vpn - self.start_vpn)
    }
}

/// A fully-associative, LRU-replaced array of range translations.
///
/// # Examples
///
/// ```
/// use hytlb_tlb::{RangeEntry, RangeTlb};
/// use hytlb_types::{PhysFrameNum, VirtPageNum};
///
/// let mut rt = RangeTlb::new(32);
/// rt.insert(RangeEntry {
///     start_vpn: VirtPageNum::new(100),
///     start_pfn: PhysFrameNum::new(500),
///     len: 50,
/// });
/// let pfn = rt.lookup(VirtPageNum::new(120)).unwrap();
/// assert_eq!(pfn, PhysFrameNum::new(520));
/// ```
#[derive(Debug, Clone)]
pub struct RangeTlb {
    entries: Vec<(RangeEntry, u64)>,
    capacity: usize,
    tick: u64,
}

impl RangeTlb {
    /// Creates a range TLB with the given entry capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "range TLB needs at least one entry");
        RangeTlb { entries: Vec::with_capacity(capacity), capacity, tick: 0 }
    }

    /// Entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Geometry of this fully-associative array: one set, `capacity`
    /// ways, no index bits.
    #[must_use]
    pub fn geometry(&self, label: &'static str) -> crate::TlbGeometry {
        crate::TlbGeometry { label, sets: 1, ways: self.capacity, index_mask: 0 }
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no range is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fully-associative lookup: returns the translation for `vpn` if some
    /// cached range covers it, refreshing that range's recency.
    pub fn lookup(&mut self, vpn: VirtPageNum) -> Option<PhysFrameNum> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|(e, _)| e.covers(vpn)).map(|(e, stamp)| {
            *stamp = tick;
            e.translate(vpn)
        })
    }

    /// Inserts a range, evicting the LRU entry when full. A range equal to
    /// an existing one only refreshes recency. Returns the evicted range,
    /// if any.
    pub fn insert(&mut self, entry: RangeEntry) -> Option<RangeEntry> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, stamp)) = self.entries.iter_mut().find(|(e, _)| *e == entry) {
            *stamp = tick;
            return None;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((entry, tick));
            return None;
        }
        let idx = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, (_, stamp))| *stamp)
            .map(|(i, _)| i)
            // audit:allow(panic): invariant — reached only when
            // `entries.len() == capacity >= 1`, so a minimum exists.
            .expect("full, hence nonempty");
        let victim = std::mem::replace(&mut self.entries[idx], (entry, tick));
        Some(victim.0)
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(start: u64, pfn: u64, len: u64) -> RangeEntry {
        RangeEntry { start_vpn: VirtPageNum::new(start), start_pfn: PhysFrameNum::new(pfn), len }
    }

    #[test]
    fn covers_and_translates() {
        let r = range(10, 100, 5);
        assert!(r.covers(VirtPageNum::new(10)));
        assert!(r.covers(VirtPageNum::new(14)));
        assert!(!r.covers(VirtPageNum::new(15)));
        assert!(!r.covers(VirtPageNum::new(9)));
        assert_eq!(r.translate(VirtPageNum::new(12)), PhysFrameNum::new(102));
    }

    #[test]
    fn lookup_scans_all_entries() {
        let mut rt = RangeTlb::new(4);
        rt.insert(range(0, 0, 10));
        rt.insert(range(100, 500, 10));
        rt.insert(range(1000, 900, 1));
        assert_eq!(rt.lookup(VirtPageNum::new(105)), Some(PhysFrameNum::new(505)));
        assert_eq!(rt.lookup(VirtPageNum::new(1000)), Some(PhysFrameNum::new(900)));
        assert_eq!(rt.lookup(VirtPageNum::new(50)), None);
    }

    #[test]
    fn lru_eviction() {
        let mut rt = RangeTlb::new(2);
        rt.insert(range(0, 0, 1));
        rt.insert(range(10, 10, 1));
        // Touch the first range so the second is LRU.
        assert!(rt.lookup(VirtPageNum::new(0)).is_some());
        let evicted = rt.insert(range(20, 20, 1));
        assert_eq!(evicted, Some(range(10, 10, 1)));
        assert!(rt.lookup(VirtPageNum::new(0)).is_some());
        assert!(rt.lookup(VirtPageNum::new(10)).is_none());
    }

    #[test]
    fn duplicate_insert_refreshes_instead_of_duplicating() {
        let mut rt = RangeTlb::new(2);
        rt.insert(range(0, 0, 4));
        rt.insert(range(0, 0, 4));
        assert_eq!(rt.len(), 1);
    }

    #[test]
    fn flush_empties() {
        let mut rt = RangeTlb::new(2);
        rt.insert(range(0, 0, 4));
        rt.flush();
        assert!(rt.is_empty());
        assert_eq!(rt.capacity(), 2);
    }

    #[test]
    fn huge_ranges_translate_far_offsets() {
        let mut rt = RangeTlb::new(1);
        rt.insert(range(0, 1 << 20, 1 << 24));
        assert_eq!(
            rt.lookup(VirtPageNum::new((1 << 24) - 1)),
            Some(PhysFrameNum::new((1 << 20) + (1 << 24) - 1))
        );
    }
}
