//! Generic set-associative TLB array with true-LRU replacement.

/// One way of a set: tag, payload and an LRU timestamp.
#[derive(Debug, Clone)]
struct Way<P> {
    tag: u64,
    payload: P,
    stamp: u64,
}

/// A set-associative array of translation entries.
///
/// The array knows nothing about address formats: callers compute the set
/// index and tag. This mirrors the paper's design point — hybrid coalescing
/// reuses the existing L2 TLB array unchanged and only alters which address
/// bits form the index and tag for anchor entries (Figure 6).
///
/// Replacement is true LRU per set, driven by a monotonically increasing
/// access stamp; both hits and insertions refresh recency.
#[derive(Debug, Clone)]
pub struct SetAssocTlb<P> {
    sets: Vec<Vec<Way<P>>>,
    ways: usize,
    tick: u64,
}

impl<P> SetAssocTlb<P> {
    /// Creates an array of `sets` sets × `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "associativity must be at least 1");
        SetAssocTlb { sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(), ways, tick: 0 }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// This array's [`TlbGeometry`] under the given display label.
    #[must_use]
    pub fn geometry(&self, label: &'static str) -> crate::TlbGeometry {
        crate::TlbGeometry {
            label,
            sets: self.sets.len(),
            ways: self.ways,
            index_mask: (self.sets.len() as u64) - 1,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// `true` when no entry is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Looks up `(set, tag)`, refreshing LRU recency on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn lookup(&mut self, set: usize, tag: u64) -> Option<&P> {
        self.tick += 1;
        let tick = self.tick;
        let ways = &mut self.sets[set];
        let idx = ways.iter().position(|w| w.tag == tag)?;
        ways[idx].stamp = tick;
        // Move-to-front so the MRU entry is found on the first probe next
        // time. Purely a scan-order change: recency is carried by `stamp`
        // (unique per op), so hit/miss/eviction behaviour is untouched.
        if idx != 0 {
            ways.swap(idx, 0);
        }
        Some(&ways[0].payload)
    }

    /// Looks up without touching LRU state — a "peek", useful for fills
    /// that must not perturb recency and for assertions in tests.
    #[must_use]
    pub fn peek(&self, set: usize, tag: u64) -> Option<&P> {
        self.sets[set].iter().find(|w| w.tag == tag).map(|w| &w.payload)
    }

    /// Inserts `(set, tag, payload)`, replacing an existing entry with the
    /// same tag or evicting the LRU way of a full set. Returns the evicted
    /// `(tag, payload)`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn insert(&mut self, set: usize, tag: u64, payload: P) -> Option<(u64, P)> {
        self.tick += 1;
        let tick = self.tick;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|w| w.tag == tag) {
            w.stamp = tick;
            let old = std::mem::replace(&mut w.payload, payload);
            return Some((tag, old));
        }
        if ways.len() < self.ways {
            ways.push(Way { tag, payload, stamp: tick });
            return None;
        }
        // audit:allow(panic): invariant — the set was just checked to be
        // full (`ways.len() >= self.ways >= 1`), so a victim always exists.
        let victim = ways.iter_mut().min_by_key(|w| w.stamp).expect("set is full, hence nonempty");
        let old_tag = victim.tag;
        let old_payload = std::mem::replace(&mut victim.payload, payload);
        victim.tag = tag;
        victim.stamp = tick;
        Some((old_tag, old_payload))
    }

    /// Removes the entry with `(set, tag)`, returning its payload.
    pub fn invalidate(&mut self, set: usize, tag: u64) -> Option<P> {
        let ways = &mut self.sets[set];
        let idx = ways.iter().position(|w| w.tag == tag)?;
        Some(ways.swap_remove(idx).payload)
    }

    /// Invalidates everything (TLB shootdown / full flush).
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Iterates over `(set, tag, payload)` of all live entries, in no
    /// particular recency order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &P)> {
        self.sets
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.iter().map(move |w| (i, w.tag, &w.payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_lookup() {
        let mut t: SetAssocTlb<&str> = SetAssocTlb::new(4, 2);
        assert!(t.is_empty());
        assert_eq!(t.insert(1, 100, "a"), None);
        assert_eq!(t.lookup(1, 100), Some(&"a"));
        assert_eq!(t.lookup(1, 101), None);
        assert_eq!(t.lookup(2, 100), None);
        assert_eq!(t.len(), 1);
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut t: SetAssocTlb<u32> = SetAssocTlb::new(1, 2);
        t.insert(0, 1, 10);
        t.insert(0, 2, 20);
        // Touch tag 1 so tag 2 becomes LRU.
        assert!(t.lookup(0, 1).is_some());
        let evicted = t.insert(0, 3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(t.peek(0, 1).is_some());
        assert!(t.peek(0, 3).is_some());
    }

    #[test]
    fn reinsert_same_tag_replaces_payload() {
        let mut t: SetAssocTlb<u32> = SetAssocTlb::new(1, 2);
        t.insert(0, 1, 10);
        let old = t.insert(0, 1, 11);
        assert_eq!(old, Some((1, 10)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.peek(0, 1), Some(&11));
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut t: SetAssocTlb<u32> = SetAssocTlb::new(1, 2);
        t.insert(0, 1, 10);
        t.insert(0, 2, 20);
        let _ = t.peek(0, 1); // must NOT protect tag 1
        let evicted = t.insert(0, 3, 30);
        assert_eq!(evicted, Some((1, 10)));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t: SetAssocTlb<u32> = SetAssocTlb::new(2, 2);
        t.insert(0, 1, 10);
        t.insert(1, 2, 20);
        assert_eq!(t.invalidate(0, 1), Some(10));
        assert_eq!(t.invalidate(0, 1), None);
        t.flush();
        assert!(t.is_empty());
    }

    #[test]
    fn sets_are_independent() {
        let mut t: SetAssocTlb<u32> = SetAssocTlb::new(2, 1);
        t.insert(0, 1, 10);
        t.insert(1, 1, 11);
        assert_eq!(t.lookup(0, 1), Some(&10));
        assert_eq!(t.lookup(1, 1), Some(&11));
    }

    #[test]
    fn iter_visits_all_entries() {
        let mut t: SetAssocTlb<u32> = SetAssocTlb::new(2, 2);
        t.insert(0, 1, 10);
        t.insert(1, 2, 20);
        let mut seen: Vec<_> = t.iter().map(|(s, tag, &p)| (s, tag, p)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 1, 10), (1, 2, 20)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        let _: SetAssocTlb<u32> = SetAssocTlb::new(3, 2);
    }

    #[test]
    fn stress_never_exceeds_capacity() {
        let mut t: SetAssocTlb<u64> = SetAssocTlb::new(8, 4);
        for i in 0..10_000u64 {
            let set = (i % 8) as usize;
            t.insert(set, i, i);
        }
        assert_eq!(t.len(), t.capacity());
    }
}
