//! Hit/miss counters.

use core::fmt;
use core::ops::{Add, AddAssign};

/// Accumulated hit/miss counts for one translation structure.
///
/// ```
/// use hytlb_tlb::TlbStats;
/// let mut s = TlbStats::default();
/// s.record_hit();
/// s.record_miss();
/// assert_eq!(s.accesses(), 2);
/// assert_eq!(s.hit_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TlbStats {
    hits: u64,
    misses: u64,
}

impl TlbStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss.
    pub fn record_miss(&mut self) {
        self.misses += 1;
    }

    /// Total hits.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits / accesses; 0.0 when untouched.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Misses / accesses; 0.0 when untouched.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl Add for TlbStats {
    type Output = TlbStats;
    fn add(self, rhs: TlbStats) -> TlbStats {
        TlbStats { hits: self.hits + rhs.hits, misses: self.misses + rhs.misses }
    }
}

impl AddAssign for TlbStats {
    fn add_assign(&mut self, rhs: TlbStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for TlbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.2}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = TlbStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        for _ in 0..3 {
            s.record_hit();
        }
        s.record_miss();
        assert_eq!(s.accesses(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn add_combines_counts() {
        let mut a = TlbStats::new();
        a.record_hit();
        let mut b = TlbStats::new();
        b.record_miss();
        let c = a + b;
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn display_mentions_rate() {
        let mut s = TlbStats::new();
        s.record_hit();
        assert!(s.to_string().contains("100.00%"));
    }
}
