//! Property test: `SetAssocTlb` against a naive reference LRU model.

use hytlb_tlb::SetAssocTlb;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A trivially-correct set-associative LRU cache.
#[derive(Debug, Default)]
struct RefSet {
    /// Most recent at the back; (tag, payload).
    ways: VecDeque<(u64, u32)>,
}

impl RefSet {
    fn lookup(&mut self, tag: u64) -> Option<u32> {
        let pos = self.ways.iter().position(|&(t, _)| t == tag)?;
        let e = self.ways.remove(pos).expect("position valid");
        self.ways.push_back(e);
        Some(e.1)
    }

    fn insert(&mut self, tag: u64, payload: u32, ways: usize) {
        if let Some(pos) = self.ways.iter().position(|&(t, _)| t == tag) {
            self.ways.remove(pos);
        } else if self.ways.len() == ways {
            self.ways.pop_front();
        }
        self.ways.push_back((tag, payload));
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Insert(u64, u32),
    Invalidate(u64),
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..40).prop_map(Op::Lookup),
        4 => (0u64..40, any::<u32>()).prop_map(|(t, p)| Op::Insert(t, p)),
        1 => (0u64..40).prop_map(Op::Invalidate),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_assoc_matches_reference_lru(
        ops in proptest::collection::vec(arb_op(), 1..300),
        sets_log in 0u32..3,
        ways in 1usize..5,
    ) {
        let sets = 1usize << sets_log;
        let mut dut: SetAssocTlb<u32> = SetAssocTlb::new(sets, ways);
        let mut reference: Vec<RefSet> = (0..sets).map(|_| RefSet::default()).collect();
        for op in ops {
            match op {
                Op::Lookup(tag) => {
                    let set = (tag as usize) % sets;
                    let got = dut.lookup(set, tag).copied();
                    let want = reference[set].lookup(tag);
                    prop_assert_eq!(got, want);
                }
                Op::Insert(tag, payload) => {
                    let set = (tag as usize) % sets;
                    dut.insert(set, tag, payload);
                    reference[set].insert(tag, payload, ways);
                }
                Op::Invalidate(tag) => {
                    let set = (tag as usize) % sets;
                    let got = dut.invalidate(set, tag);
                    let pos = reference[set].ways.iter().position(|&(t, _)| t == tag);
                    let want = pos.map(|p| reference[set].ways.remove(p).expect("valid").1);
                    prop_assert_eq!(got, want);
                }
                Op::Flush => {
                    dut.flush();
                    reference.iter_mut().for_each(|s| s.ways.clear());
                }
            }
            let ref_len: usize = reference.iter().map(|s| s.ways.len()).sum();
            prop_assert_eq!(dut.len(), ref_len);
        }
    }
}
