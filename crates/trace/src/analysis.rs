//! Trace-stream analysis: the measurements used to validate that each
//! workload model reproduces its benchmark's TLB-relevant behaviour.
//!
//! TLB miss rates are a function of the *page-level* reuse structure of an
//! access stream. [`TraceProfile`] summarizes a stream: distinct pages per
//! access window (the footprint curve), page-level spatial run lengths,
//! and a coarse reuse histogram. The workload tests assert each model's
//! profile against the character its benchmark is known for (e.g. `gups`
//! touches ~1 distinct page per access; `omnetpp`'s hot set saturates the
//! window curve early).

use hytlb_types::PAGE_SIZE_U64;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Summary statistics of a logical-address stream.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceProfile {
    /// Accesses analysed.
    pub accesses: u64,
    /// Distinct 4 KB pages touched.
    pub distinct_pages: u64,
    /// Mean number of consecutive accesses to the same page (spatial
    /// burst length).
    pub mean_burst: f64,
    /// Fraction of page *transitions* that move to the next page (+1) —
    /// the sequentiality of the stream.
    pub sequential_fraction: f64,
    /// Fraction of accesses that hit one of the 64 most-recently-used
    /// pages — an L1-TLB-reach locality proxy.
    pub mru64_hit_fraction: f64,
}

impl TraceProfile {
    /// Profiles the first `limit` accesses of a stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream yields no accesses.
    #[must_use]
    pub fn measure<I: IntoIterator<Item = u64>>(stream: I, limit: usize) -> TraceProfile {
        let mut accesses = 0u64;
        let mut distinct: HashMap<u64, u64> = HashMap::new();
        let mut bursts = 0u64;
        let mut transitions = 0u64;
        let mut sequential = 0u64;
        let mut mru: Vec<u64> = Vec::with_capacity(64);
        let mut mru_hits = 0u64;
        let mut prev_page: Option<u64> = None;
        for addr in stream.into_iter().take(limit) {
            let page = addr / PAGE_SIZE_U64;
            accesses += 1;
            match distinct.entry(page) {
                Entry::Occupied(mut e) => *e.get_mut() += 1,
                Entry::Vacant(e) => {
                    e.insert(1);
                }
            }
            if let Some(p) = prev_page {
                if p == page {
                    // same burst, no transition
                } else {
                    transitions += 1;
                    bursts += 1;
                    if page == p + 1 {
                        sequential += 1;
                    }
                }
            } else {
                bursts += 1;
            }
            // MRU-64 stack (exact, O(64)).
            if let Some(pos) = mru.iter().position(|&p| p == page) {
                mru_hits += 1;
                mru.remove(pos);
            } else if mru.len() == 64 {
                mru.pop();
            }
            mru.insert(0, page);
            prev_page = Some(page);
        }
        assert!(accesses > 0, "empty trace");
        TraceProfile {
            accesses,
            distinct_pages: distinct.len() as u64,
            mean_burst: accesses as f64 / bursts.max(1) as f64,
            sequential_fraction: if transitions == 0 {
                0.0
            } else {
                sequential as f64 / transitions as f64
            },
            mru64_hit_fraction: mru_hits as f64 / accesses as f64,
        }
    }

    /// Pages touched per access — 1.0 means no page-level reuse at all.
    #[must_use]
    pub fn pages_per_access(&self) -> f64 {
        self.distinct_pages as f64 / self.accesses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessPattern, TraceGenerator, WorkloadKind};

    fn profile(w: WorkloadKind) -> TraceProfile {
        TraceProfile::measure(w.generator(1 << 15, 7), 40_000)
    }

    #[test]
    fn gups_has_no_reuse() {
        let p = profile(WorkloadKind::Gups);
        assert!(p.pages_per_access() > 0.5, "{p:?}");
        assert!(p.mru64_hit_fraction < 0.05, "{p:?}");
        assert!(p.sequential_fraction < 0.05, "{p:?}");
    }

    #[test]
    fn omnetpp_hot_set_dominates() {
        let p = profile(WorkloadKind::Omnetpp);
        assert!(p.pages_per_access() < 0.2, "{p:?}");
        assert!(p.mru64_hit_fraction > 0.05, "{p:?}");
    }

    #[test]
    fn stream_workloads_are_more_sequential_than_random_ones() {
        // milc interleaves 8 streams, so only ~1/8 of page transitions are
        // +1 steps — still far above gups's ~0.
        let p = profile(WorkloadKind::Milc);
        let q = profile(WorkloadKind::Gups);
        assert!(p.sequential_fraction > 0.08, "{p:?}");
        assert!(p.sequential_fraction > 5.0 * q.sequential_fraction, "{p:?} vs {q:?}");
        // A single stream is almost perfectly sequential.
        let single = TraceProfile::measure(
            TraceGenerator::new(AccessPattern::Streams { streams: 1 }, 1 << 12, 3, 1),
            20_000,
        );
        assert!(single.sequential_fraction > 0.95, "{single:?}");
    }

    #[test]
    fn graph500_mixes_modes() {
        let p = profile(WorkloadKind::Graph500);
        assert!(p.sequential_fraction > 0.2 && p.sequential_fraction < 0.8, "{p:?}");
    }

    #[test]
    fn burst_parameter_shows_up_in_profile() {
        let bursty = TraceProfile::measure(
            TraceGenerator::new(AccessPattern::Uniform, 1 << 12, 3, 4),
            20_000,
        );
        let single = TraceProfile::measure(
            TraceGenerator::new(AccessPattern::Uniform, 1 << 12, 3, 1),
            20_000,
        );
        assert!(bursty.mean_burst > 1.5 * single.mean_burst, "{bursty:?} vs {single:?}");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_stream_panics() {
        let _ = TraceProfile::measure(std::iter::empty(), 10);
    }
}
