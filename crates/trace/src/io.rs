//! Trace (de)serialization.
//!
//! Pre-generated traces can be captured to disk and replayed, mirroring the
//! paper's Pin-capture-then-simulate workflow. The format is a small JSON
//! header (for tooling) followed by raw little-endian `u64` addresses.

use std::io::{self, Read, Write};

/// Magic string identifying the trace format.
const MAGIC: &[u8; 8] = b"HYTLBTR1";

/// Header describing a stored trace.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct Header {
    workload: String,
    footprint_pages: u64,
    accesses: u64,
    seed: u64,
}

/// Writes a trace: `addresses` are logical byte addresses as produced by a
/// [`crate::TraceGenerator`].
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
pub fn write_trace<W: Write>(
    mut writer: W,
    workload: &str,
    footprint_pages: u64,
    seed: u64,
    addresses: &[u64],
) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let header = Header {
        workload: workload.to_owned(),
        footprint_pages,
        accesses: addresses.len() as u64,
        seed,
    };
    let head = serde_json::to_vec(&header).map_err(io::Error::other)?;
    writer.write_all(&(head.len() as u32).to_le_bytes())?;
    writer.write_all(&head)?;
    for a in addresses {
        writer.write_all(&a.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`], returning
/// `(workload, footprint_pages, seed, addresses)`.
///
/// # Errors
///
/// Returns `InvalidData` if the magic or header is malformed, and
/// propagates I/O errors from `reader`.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<(String, u64, u64, Vec<u64>)> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a hytlb trace"));
    }
    let mut len = [0u8; 4];
    reader.read_exact(&mut len)?;
    let mut head = vec![0u8; u32::from_le_bytes(len) as usize];
    reader.read_exact(&mut head)?;
    let header: Header =
        serde_json::from_slice(&head).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut addresses = Vec::with_capacity(header.accesses as usize);
    let mut buf = [0u8; 8];
    for _ in 0..header.accesses {
        reader.read_exact(&mut buf)?;
        addresses.push(u64::from_le_bytes(buf));
    }
    Ok((header.workload, header.footprint_pages, header.seed, addresses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;

    #[test]
    fn roundtrip() {
        let addrs: Vec<u64> = WorkloadKind::Gups.generator(256, 1).take(1000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, "gups", 256, 1, &addrs).unwrap();
        let (w, fp, seed, back) = read_trace(buf.as_slice()).unwrap();
        assert_eq!(w, "gups");
        assert_eq!(fp, 256);
        assert_eq!(seed, 1);
        assert_eq!(back, addrs);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_trace(&b"NOTATRACE___"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, "empty", 1, 0, &[]).unwrap();
        let (_, _, _, back) = read_trace(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }
}
