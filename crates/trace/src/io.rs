//! Trace (de)serialization.
//!
//! Pre-generated traces can be captured to disk and replayed, mirroring the
//! paper's Pin-capture-then-simulate workflow. The format is a small JSON
//! header (for tooling) followed by raw little-endian `u64` addresses.
//!
//! This is the **legacy v1** (`HYTLBTR1`) format: simple, but 8 bytes per
//! access and without integrity checks. New recordings should use the
//! compressed, CRC-protected `HYTLBTR2` format in `hytlb-tracefile`;
//! `hytlb-tracectl convert` migrates v1 files. This module stays so old
//! captures remain readable (and convertible).

use std::io::{self, Read, Write};

/// Magic string identifying the trace format.
const MAGIC: &[u8; 8] = b"HYTLBTR1";

/// Upper bound on the JSON header, so a corrupt length prefix cannot drive
/// a giant allocation.
const MAX_HEADER: u32 = 1 << 20;

/// Addresses per chunk when writing, and the initial capacity cap when
/// reading: bounds memory independently of what the header claims.
const CHUNK: usize = 1 << 13;

/// Header describing a stored trace.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
struct Header {
    workload: String,
    footprint_pages: u64,
    accesses: u64,
    seed: u64,
}

/// Writes a trace: `addresses` are logical byte addresses as produced by a
/// [`crate::TraceGenerator`].
///
/// Addresses are serialized in chunks of [`CHUNK`], not one 8-byte
/// `write_all` each, so an unbuffered `File` writer does not pay one
/// syscall per access.
///
/// # Errors
///
/// Propagates any I/O error from `writer`.
pub fn write_trace<W: Write>(
    mut writer: W,
    workload: &str,
    footprint_pages: u64,
    seed: u64,
    addresses: &[u64],
) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    let header = Header {
        workload: workload.to_owned(),
        footprint_pages,
        accesses: addresses.len() as u64,
        seed,
    };
    let head = serde_json::to_vec(&header).map_err(io::Error::other)?;
    writer.write_all(&(head.len() as u32).to_le_bytes())?;
    writer.write_all(&head)?;
    let mut buf = Vec::with_capacity(CHUNK.min(addresses.len()) * 8);
    for chunk in addresses.chunks(CHUNK) {
        buf.clear();
        for a in chunk {
            buf.extend_from_slice(&a.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`], returning
/// `(workload, footprint_pages, seed, addresses)`.
///
/// The declared header length is bounded at 1 MiB and the address vector
/// grows incrementally, so a corrupt header cannot drive a huge
/// allocation: a trace whose payload runs short of its declared
/// `accesses` fails with `InvalidData` after reading only what exists.
///
/// # Errors
///
/// Returns `InvalidData` if the magic or header is malformed or the
/// payload is truncated, and propagates I/O errors from `reader`.
pub fn read_trace<R: Read>(mut reader: R) -> io::Result<(String, u64, u64, Vec<u64>)> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a hytlb trace"));
    }
    let mut len = [0u8; 4];
    reader.read_exact(&mut len)?;
    let head_len = u32::from_le_bytes(len);
    if head_len > MAX_HEADER {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("trace header declares {head_len} bytes, more than the 1 MiB bound"),
        ));
    }
    let mut head = vec![0u8; head_len as usize];
    reader.read_exact(&mut head)?;
    let header: Header =
        serde_json::from_slice(&head).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    // Capacity is capped: a lying header cannot reserve more than one
    // chunk up front, and growth only happens as real payload arrives.
    let declared = usize::try_from(header.accesses)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "access count overflows"))?;
    let mut addresses = Vec::with_capacity(declared.min(CHUNK));
    let mut buf = [0u8; 8];
    for n in 0..declared {
        if let Err(e) = reader.read_exact(&mut buf) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("trace truncated: payload ends after {n} of {declared} accesses"),
                ));
            }
            return Err(e);
        }
        addresses.push(u64::from_le_bytes(buf));
    }
    Ok((header.workload, header.footprint_pages, header.seed, addresses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;

    #[test]
    fn roundtrip() {
        let addrs: Vec<u64> = WorkloadKind::Gups.generator(256, 1).take(1000).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, "gups", 256, 1, &addrs).unwrap();
        let (w, fp, seed, back) = read_trace(buf.as_slice()).unwrap();
        assert_eq!(w, "gups");
        assert_eq!(fp, 256);
        assert_eq!(seed, 1);
        assert_eq!(back, addrs);
    }

    #[test]
    fn roundtrip_larger_than_one_chunk() {
        let addrs: Vec<u64> = (0..(CHUNK as u64 * 2 + 17)).map(|i| i * 8).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, "big", 4, 0, &addrs).unwrap();
        let (_, _, _, back) = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, addrs);
    }

    #[test]
    fn rejects_garbage() {
        let err = read_trace(&b"NOTATRACE___"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, "empty", 1, 0, &[]).unwrap();
        let (_, _, _, back) = read_trace(buf.as_slice()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn oversized_header_length_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(MAX_HEADER + 1).to_le_bytes());
        buf.extend_from_slice(&[b'x'; 128]);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn lying_access_count_is_invalid_data_not_oom() {
        // Header claims u64::MAX accesses over an empty payload: must
        // fail cleanly without attempting a 147-exabyte reservation.
        let json = format!(
            "{{\"workload\":\"liar\",\"footprint_pages\":1,\"accesses\":{},\"seed\":0}}",
            u64::MAX
        );
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(json.len() as u32).to_le_bytes());
        buf.extend_from_slice(json.as_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn truncated_payload_is_invalid_data() {
        let addrs: Vec<u64> = (0..100u64).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, "cut", 1, 0, &addrs).unwrap();
        buf.truncate(buf.len() - 12);
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("98 of 100"), "{err}");
    }
}
