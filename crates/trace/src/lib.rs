//! Synthetic workload trace generators.
//!
//! The paper drives its simulator with Pin-captured memory traces of 12 B
//! instructions from SPEC CPU2006, BioBench, graph500 and gups. Those traces
//! are not redistributable, so this crate implements deterministic, seeded
//! generators that reproduce each benchmark's *TLB-relevant* behaviour: the
//! footprint, the reuse distance distribution and the degree of spatial
//! locality of the virtual-page stream. That is the only property the
//! evaluation depends on — the simulator never executes instructions.
//!
//! Generators emit **logical addresses**: byte offsets into a footprint of
//! `footprint_pages × 4 KB`. The simulation engine places them onto the
//! mapping under test via `hytlb_mem::PageIndex` — so the same trace runs
//! unchanged against every mapping scenario, exactly like the paper re-runs
//! one Pin trace against different pagemap snapshots.
//!
//! # Examples
//!
//! ```
//! use hytlb_trace::WorkloadKind;
//!
//! let mut gen = WorkloadKind::Gups.generator(1024, 42);
//! let a: Vec<u64> = (&mut gen).take(3).collect();
//! let b: Vec<u64> = WorkloadKind::Gups.generator(1024, 42).take(3).collect();
//! assert_eq!(a, b); // seeded => reproducible
//! assert!(a.iter().all(|&x| x < 1024 * 4096));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod io;
mod patterns;
mod workloads;

pub use analysis::TraceProfile;
pub use io::{read_trace, write_trace};
pub use patterns::{AccessPattern, TraceGenerator};
pub use workloads::WorkloadKind;
