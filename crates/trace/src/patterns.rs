//! Composable access-pattern primitives.

use hytlb_types::PAGE_SIZE_U64;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The reuse/locality structure of a memory access stream.
///
/// Each variant captures one archetype observed across the paper's
/// benchmark suite; [`crate::WorkloadKind`] instantiates them with
/// per-benchmark parameters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AccessPattern {
    /// Uniform random pages — `gups`-style giant updates.
    Uniform,
    /// A hot subset absorbs most accesses; the cold rest is uniform.
    /// Models benchmarks with strong but imperfect locality (`canneal`,
    /// `omnetpp`, `xalancbmk`).
    HotCold {
        /// Fraction of the footprint that is hot.
        hot_fraction: f64,
        /// Probability an access goes to the hot set.
        hot_probability: f64,
    },
    /// `n` interleaved sequential streams (stencil/lattice sweeps:
    /// `milc`, `GemsFDTD`, `cactusADM`, `sphinx3` feature extraction).
    Streams {
        /// Number of concurrent sequential streams.
        streams: usize,
    },
    /// A random walk with heavy-tailed jumps (pointer chasing over trees
    /// and graphs: `mcf`, `mummer`, `tigr`, `astar`).
    Chase {
        /// Scale of the jump distribution, in pages. Larger = less local.
        jump_pages: u64,
    },
    /// Breadth-first-search-like: a sequential frontier scan interleaved
    /// with uniform-random neighbour lookups (`graph500`).
    Bfs {
        /// Fraction of accesses that are random neighbour lookups.
        random_fraction: f64,
    },
}

/// A deterministic, infinite iterator of logical byte addresses in
/// `[0, footprint_pages * 4096)`.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    pattern: AccessPattern,
    footprint_pages: u64,
    rng: SmallRng,
    /// Cursors for stateful patterns (stream positions / walk position).
    cursors: Vec<u64>,
    /// Remaining accesses in the current within-page burst.
    burst_left: u32,
    /// Page of the current burst.
    burst_page: u64,
    /// Mean accesses issued per distinct page touch (spatial locality).
    burst: u32,
}

impl TraceGenerator {
    /// Creates a generator over `footprint_pages` pages.
    ///
    /// `burst` is the mean number of consecutive accesses within one page
    /// before moving on — cache-line-level spatial locality that every real
    /// program exhibits.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages` or `burst` is zero, or if a pattern
    /// parameter is out of range (fractions must be in `[0, 1]`).
    #[must_use]
    pub fn new(pattern: AccessPattern, footprint_pages: u64, seed: u64, burst: u32) -> Self {
        assert!(footprint_pages > 0, "footprint must be non-empty");
        assert!(burst > 0, "burst must be at least 1");
        match &pattern {
            AccessPattern::HotCold { hot_fraction, hot_probability } => {
                assert!((0.0..=1.0).contains(hot_fraction), "hot_fraction in [0,1]");
                assert!((0.0..=1.0).contains(hot_probability), "hot_probability in [0,1]");
            }
            AccessPattern::Bfs { random_fraction } => {
                assert!((0.0..=1.0).contains(random_fraction), "random_fraction in [0,1]");
            }
            AccessPattern::Streams { streams } => assert!(*streams > 0, "at least one stream"),
            _ => {}
        }
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7ace_5eed);
        let cursors = match &pattern {
            AccessPattern::Streams { streams } => {
                // Spread stream starting points evenly over the footprint.
                (0..*streams).map(|i| i as u64 * footprint_pages / *streams as u64).collect()
            }
            AccessPattern::Chase { .. } => vec![rng.gen_range(0..footprint_pages)],
            AccessPattern::Bfs { .. } => vec![0],
            _ => Vec::new(),
        };
        TraceGenerator {
            pattern,
            footprint_pages,
            rng,
            cursors,
            burst_left: 0,
            burst_page: 0,
            burst: burst.max(1),
        }
    }

    /// The footprint in pages.
    #[must_use]
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Picks the next distinct page to touch, per the pattern.
    fn next_page(&mut self) -> u64 {
        let n = self.footprint_pages;
        match &self.pattern {
            AccessPattern::Uniform => self.rng.gen_range(0..n),
            AccessPattern::HotCold { hot_fraction, hot_probability } => {
                let hot_pages = ((n as f64 * hot_fraction) as u64).max(1);
                if self.rng.gen_bool(*hot_probability) {
                    self.rng.gen_range(0..hot_pages)
                } else {
                    self.rng.gen_range(0..n)
                }
            }
            AccessPattern::Streams { streams } => {
                let s = self.rng.gen_range(0..*streams);
                let page = self.cursors[s] % n;
                self.cursors[s] = (self.cursors[s] + 1) % n;
                page
            }
            AccessPattern::Chase { jump_pages } => {
                // Heavy-tailed jump: log-magnitude ~ u² so most jumps are
                // short pointer hops, with occasional cross-structure leaps
                // up to `jump_pages`.
                let u: f64 = self.rng.gen();
                let mag = ((*jump_pages as f64).powf(u * u)).round() as u64;
                let cur = self.cursors[0];
                let next = if self.rng.gen_bool(0.5) {
                    cur.wrapping_add(mag) % n
                } else {
                    cur.wrapping_add(n - mag % n) % n
                };
                self.cursors[0] = next;
                next
            }
            AccessPattern::Bfs { random_fraction } => {
                if self.rng.gen_bool(*random_fraction) {
                    self.rng.gen_range(0..n)
                } else {
                    let page = self.cursors[0] % n;
                    self.cursors[0] = (self.cursors[0] + 1) % n;
                    page
                }
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = u64;

    /// Never returns `None`; take as many accesses as the experiment needs.
    fn next(&mut self) -> Option<u64> {
        if self.burst_left == 0 {
            self.burst_page = self.next_page();
            self.burst_left = self.rng.gen_range(1..=self.burst * 2 - 1).max(1);
        }
        self.burst_left -= 1;
        let offset = self.rng.gen_range(0..PAGE_SIZE_U64);
        Some(self.burst_page * PAGE_SIZE_U64 + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn pages(pattern: AccessPattern, n: u64, take: usize) -> Vec<u64> {
        TraceGenerator::new(pattern, n, 1, 2).take(take).map(|a| a / PAGE_SIZE_U64).collect()
    }

    #[test]
    fn addresses_stay_in_footprint() {
        for pattern in [
            AccessPattern::Uniform,
            AccessPattern::HotCold { hot_fraction: 0.1, hot_probability: 0.9 },
            AccessPattern::Streams { streams: 4 },
            AccessPattern::Chase { jump_pages: 1000 },
            AccessPattern::Bfs { random_fraction: 0.5 },
        ] {
            let g = TraceGenerator::new(pattern.clone(), 500, 3, 3);
            for a in g.take(10_000) {
                assert!(a < 500 * PAGE_SIZE_U64, "{pattern:?} escaped: {a}");
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<_> = TraceGenerator::new(AccessPattern::Uniform, 100, 9, 2).take(100).collect();
        let b: Vec<_> = TraceGenerator::new(AccessPattern::Uniform, 100, 9, 2).take(100).collect();
        let c: Vec<_> = TraceGenerator::new(AccessPattern::Uniform, 100, 10, 2).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_covers_footprint() {
        let distinct: HashSet<_> = pages(AccessPattern::Uniform, 64, 10_000).into_iter().collect();
        assert!(distinct.len() > 60);
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let ps =
            pages(AccessPattern::HotCold { hot_fraction: 0.1, hot_probability: 0.9 }, 1000, 20_000);
        let hot = ps.iter().filter(|&&p| p < 100).count();
        assert!(hot as f64 > 0.85 * ps.len() as f64, "hot share {}", hot as f64 / ps.len() as f64);
    }

    #[test]
    fn streams_are_locally_sequential() {
        let ps = pages(AccessPattern::Streams { streams: 1 }, 1000, 64);
        // One stream, dedup bursts: strictly ascending (mod wrap).
        let dedup: Vec<_> = ps.windows(2).filter(|w| w[0] != w[1]).map(|w| w[1]).collect();
        for w in dedup.windows(2) {
            let delta = (w[1] + 1000 - w[0]) % 1000;
            assert_eq!(delta, 1, "non-sequential step {w:?}");
        }
    }

    #[test]
    fn chase_mostly_makes_short_jumps() {
        let ps = pages(AccessPattern::Chase { jump_pages: 10_000 }, 100_000, 20_000);
        let mut short = 0;
        let mut moves = 0;
        for w in ps.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            moves += 1;
            let d = w[0].abs_diff(w[1]);
            if d.min(100_000 - d) <= 100 {
                short += 1;
            }
        }
        assert!(short as f64 > 0.5 * moves as f64, "{short}/{moves}");
    }

    #[test]
    fn bfs_mixes_sequential_and_random() {
        let ps = pages(AccessPattern::Bfs { random_fraction: 0.3 }, 10_000, 20_000);
        let mut seq = 0;
        let mut moves = 0;
        for w in ps.windows(2) {
            if w[0] == w[1] {
                continue;
            }
            moves += 1;
            if w[1] == (w[0] + 1) % 10_000 {
                seq += 1;
            }
        }
        let frac = seq as f64 / moves as f64;
        assert!(frac > 0.3 && frac < 0.9, "sequential fraction {frac}");
    }

    #[test]
    fn burst_repeats_pages() {
        let ps = pages(AccessPattern::Uniform, 10_000, 10_000);
        let repeats = ps.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats > 1000, "bursts missing: {repeats}");
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn invalid_fraction_panics() {
        let _ = TraceGenerator::new(
            AccessPattern::HotCold { hot_fraction: 1.5, hot_probability: 0.5 },
            10,
            0,
            1,
        );
    }
}
