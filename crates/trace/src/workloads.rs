//! The paper's 14-benchmark suite as parameterized access-pattern models.
//!
//! Parameters are chosen so each model reproduces the benchmark's published
//! TLB character: footprints follow the paper (graph500/gups at 8 GB by
//! default, SPEC working sets at their reference sizes scaled to what a
//! 1024-entry L2 can or cannot cover), and pattern/locality settings follow
//! the qualitative descriptions in the paper's results (e.g. `omnetpp` and
//! `xalancbmk` have fine-grained reuse that only fine-grained coalescing
//! helps; `gups` is hostile to every scheme at medium contiguity).

use crate::patterns::{AccessPattern, TraceGenerator};

/// One benchmark of the evaluation suite.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[allow(missing_docs)] // variants are benchmark names; the table below documents them
pub enum WorkloadKind {
    AstarBiglake,
    CactusAdm,
    Canneal,
    GemsFdtd,
    Graph500,
    Gups,
    Mcf,
    Milc,
    Mummer,
    Omnetpp,
    SoplexPds,
    Sphinx3,
    Tigr,
    Xalancbmk,
}

impl WorkloadKind {
    /// All 14 workloads in the paper's figure order.
    #[must_use]
    pub fn all() -> [WorkloadKind; 14] {
        [
            WorkloadKind::GemsFdtd,
            WorkloadKind::AstarBiglake,
            WorkloadKind::CactusAdm,
            WorkloadKind::Canneal,
            WorkloadKind::Graph500,
            WorkloadKind::Gups,
            WorkloadKind::Mcf,
            WorkloadKind::Milc,
            WorkloadKind::Mummer,
            WorkloadKind::Omnetpp,
            WorkloadKind::SoplexPds,
            WorkloadKind::Sphinx3,
            WorkloadKind::Tigr,
            WorkloadKind::Xalancbmk,
        ]
    }

    /// Label as printed in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::AstarBiglake => "astar_biglake",
            WorkloadKind::CactusAdm => "cactusADM",
            WorkloadKind::Canneal => "canneal",
            WorkloadKind::GemsFdtd => "GemsFDTD",
            WorkloadKind::Graph500 => "graph500",
            WorkloadKind::Gups => "gups",
            WorkloadKind::Mcf => "mcf",
            WorkloadKind::Milc => "milc",
            WorkloadKind::Mummer => "mummer",
            WorkloadKind::Omnetpp => "omnetpp",
            WorkloadKind::SoplexPds => "soplex_pds",
            WorkloadKind::Sphinx3 => "sphinx3",
            WorkloadKind::Tigr => "tigr",
            WorkloadKind::Xalancbmk => "xalancbmk",
        }
    }

    /// Parses a figure label back into a workload.
    #[must_use]
    pub fn from_label(label: &str) -> Option<WorkloadKind> {
        WorkloadKind::all().into_iter().find(|w| w.label() == label)
    }

    /// Default footprint in 4 KB pages, at the paper's scale where
    /// tractable (graph500/gups: 8 GB working sets) and at SPEC reference
    /// scale otherwise.
    #[must_use]
    pub fn default_footprint_pages(self) -> u64 {
        match self {
            // 8 GB working sets, exactly as the paper sets them (§5.1).
            WorkloadKind::Graph500 | WorkloadKind::Gups => 1 << 21,
            // Large-footprint SPEC / bio workloads (hundreds of MB - 2 GB).
            WorkloadKind::Mcf | WorkloadKind::Mummer | WorkloadKind::Tigr => 1 << 19,
            WorkloadKind::GemsFdtd | WorkloadKind::Milc | WorkloadKind::CactusAdm => 1 << 17,
            WorkloadKind::Canneal | WorkloadKind::AstarBiglake => 1 << 17,
            WorkloadKind::SoplexPds | WorkloadKind::Sphinx3 => 1 << 16,
            // Small-footprint, fine-grained-reuse workloads.
            WorkloadKind::Omnetpp | WorkloadKind::Xalancbmk => 1 << 15,
        }
    }

    /// The benchmark's access-pattern model.
    #[must_use]
    pub fn pattern(self) -> AccessPattern {
        match self {
            // Giant updates: uniform random over the table.
            WorkloadKind::Gups => AccessPattern::Uniform,
            // BFS: frontier scans + random neighbour lookups.
            WorkloadKind::Graph500 => AccessPattern::Bfs { random_fraction: 0.55 },
            // Pointer chasing over network/suffix-tree structures.
            WorkloadKind::Mcf => AccessPattern::Chase { jump_pages: 50_000 },
            WorkloadKind::Mummer => AccessPattern::Chase { jump_pages: 120_000 },
            WorkloadKind::Tigr => AccessPattern::Chase { jump_pages: 80_000 },
            // Grid/lattice sweeps: interleaved sequential streams.
            WorkloadKind::GemsFdtd => AccessPattern::Streams { streams: 6 },
            WorkloadKind::Milc => AccessPattern::Streams { streams: 8 },
            WorkloadKind::CactusAdm => AccessPattern::Streams { streams: 24 },
            WorkloadKind::Sphinx3 => AccessPattern::Streams { streams: 3 },
            // Hot/cold mixtures.
            WorkloadKind::Canneal => {
                AccessPattern::HotCold { hot_fraction: 0.25, hot_probability: 0.55 }
            }
            WorkloadKind::AstarBiglake => {
                AccessPattern::HotCold { hot_fraction: 0.15, hot_probability: 0.7 }
            }
            WorkloadKind::SoplexPds => {
                AccessPattern::HotCold { hot_fraction: 0.2, hot_probability: 0.8 }
            }
            // Fine-grained object churn: strong reuse in a small hot set.
            WorkloadKind::Omnetpp => {
                AccessPattern::HotCold { hot_fraction: 0.08, hot_probability: 0.85 }
            }
            WorkloadKind::Xalancbmk => {
                AccessPattern::HotCold { hot_fraction: 0.12, hot_probability: 0.8 }
            }
        }
    }

    /// Mean accesses per distinct page touch (spatial locality knob).
    #[must_use]
    pub fn burst(self) -> u32 {
        match self {
            WorkloadKind::Gups => 1,
            WorkloadKind::Graph500 | WorkloadKind::Canneal => 2,
            WorkloadKind::Mcf | WorkloadKind::Mummer | WorkloadKind::Tigr => 2,
            _ => 4,
        }
    }

    /// Builds a trace generator at the given footprint.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_pages` is zero.
    #[must_use]
    pub fn generator(self, footprint_pages: u64, seed: u64) -> TraceGenerator {
        TraceGenerator::new(self.pattern(), footprint_pages, seed ^ self as u64, self.burst())
    }

    /// Builds a trace generator at the default footprint.
    #[must_use]
    pub fn default_generator(self, seed: u64) -> TraceGenerator {
        self.generator(self.default_footprint_pages(), seed)
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hytlb_types::PAGE_SIZE_U64;
    use std::collections::HashSet;

    #[test]
    fn fourteen_workloads_with_unique_labels() {
        let all = WorkloadKind::all();
        assert_eq!(all.len(), 14);
        let labels: HashSet<_> = all.iter().map(|w| w.label()).collect();
        assert_eq!(labels.len(), 14);
        for w in all {
            assert_eq!(WorkloadKind::from_label(w.label()), Some(w));
        }
        assert_eq!(WorkloadKind::from_label("nope"), None);
    }

    #[test]
    fn generators_stay_inside_footprint() {
        for w in WorkloadKind::all() {
            let fp = 4096;
            for a in w.generator(fp, 7).take(5_000) {
                assert!(a < fp * PAGE_SIZE_U64, "{w} escaped");
            }
        }
    }

    #[test]
    fn generators_are_reproducible() {
        for w in WorkloadKind::all() {
            let a: Vec<_> = w.generator(1024, 3).take(64).collect();
            let b: Vec<_> = w.generator(1024, 3).take(64).collect();
            assert_eq!(a, b, "{w}");
        }
    }

    #[test]
    fn workloads_differ_from_each_other() {
        let a: Vec<_> = WorkloadKind::Gups.generator(1024, 3).take(64).collect();
        let b: Vec<_> = WorkloadKind::Milc.generator(1024, 3).take(64).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn gups_has_the_worst_locality() {
        // Distinct pages touched in a fixed window: gups ≈ window size,
        // omnetpp far fewer.
        let distinct = |w: WorkloadKind| {
            w.generator(1 << 14, 5)
                .take(8_000)
                .map(|a| a / PAGE_SIZE_U64)
                .collect::<HashSet<_>>()
                .len()
        };
        let gups = distinct(WorkloadKind::Gups);
        let omnetpp = distinct(WorkloadKind::Omnetpp);
        assert!(gups > 2 * omnetpp, "gups {gups} vs omnetpp {omnetpp}");
    }

    #[test]
    fn default_footprints_exceed_l2_reach() {
        // Every workload's 4 KB working set must exceed 1024 L2 entries,
        // otherwise the baseline would not miss and the paper's problem
        // would not exist.
        for w in WorkloadKind::all() {
            assert!(w.default_footprint_pages() > 4096, "{w}");
        }
    }
}
