//! `hytlb-tracectl` — record, inspect, verify and convert trace files.
//!
//! ```text
//! hytlb-tracectl record  --workload gups --accesses 1000000 --out gups.htr2
//! hytlb-tracectl record  --workload mcf  --accesses 500000  --store corpus/
//! hytlb-tracectl info    gups.htr2
//! hytlb-tracectl verify  gups.htr2
//! hytlb-tracectl cat     gups.htr2 --limit 20
//! hytlb-tracectl convert legacy.trace gups.htr2
//! ```
//!
//! `verify` exits non-zero on any corruption, so it works as a CI
//! gate. `record --store` writes into a [`TraceStore`] corpus
//! directory (manifest + per-workload files) that the simulator can
//! replay from.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

use hytlb_trace::WorkloadKind;
use hytlb_tracefile::{verify, TraceFile, TraceMeta, TraceReader, TraceStore, TraceWriter};

const USAGE: &str = "\
hytlb-tracectl — record, inspect, verify and convert HYTLBTR2 trace files

USAGE:
  hytlb-tracectl record --workload <label> --accesses <n>
                        (--out <file> | --store <dir>)
                        [--footprint-pages <n>] [--seed <n>] [--block-accesses <n>]
  hytlb-tracectl info <file>
  hytlb-tracectl verify <file>
  hytlb-tracectl cat <file> [--limit <n>]
  hytlb-tracectl convert <legacy-v1-file> <out-v2-file> [--block-accesses <n>]

Workload labels are the simulator's (gups, mcf, graph500, …).
--footprint-pages and --seed default to the workload's defaults (seed 42).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Failed(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    /// Bad invocation: exit 2.
    Usage(String),
    /// The operation itself failed (I/O, corruption): exit 1.
    Failed(String),
}

impl From<hytlb_tracefile::TraceFileError> for CliError {
    fn from(e: hytlb_tracefile::TraceFileError) -> Self {
        CliError::Failed(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(e.to_string())
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no subcommand".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "record" => record(rest),
        "info" => info(rest),
        "verify" => verify_cmd(rest),
        "cat" => cat(rest),
        "convert" => convert_cmd(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// `--flag value` pairs pulled out of the argument list.
type Flags = Vec<(String, String)>;

/// Splits `args` into `--flag value` pairs and positional operands.
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), CliError> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            let Some(value) = args.get(i + 1) else {
                return Err(CliError::Usage(format!("--{name} needs a value")));
            };
            flags.push((name.to_string(), value.clone()));
            i += 2;
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

fn parse_u64(flags: &[(String, String)], name: &str) -> Result<Option<u64>, CliError> {
    match flag(flags, name) {
        None => Ok(None),
        Some(text) => text
            .parse::<u64>()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("--{name} wants an integer, got `{text}`"))),
    }
}

fn parse_block(flags: &[(String, String)]) -> Result<Option<u32>, CliError> {
    match flag(flags, "block-accesses") {
        None => Ok(None),
        Some(text) => text.parse::<u32>().map(Some).map_err(|_| {
            CliError::Usage(format!("--block-accesses wants an integer, got `{text}`"))
        }),
    }
}

fn record(args: &[String]) -> Result<(), CliError> {
    let (flags, positional) = parse_flags(args)?;
    if let Some(extra) = positional.first() {
        return Err(CliError::Usage(format!("record takes no positional argument `{extra}`")));
    }
    let label = flag(&flags, "workload")
        .ok_or_else(|| CliError::Usage("record needs --workload".into()))?;
    let workload = WorkloadKind::from_label(label).ok_or_else(|| {
        let known: Vec<&str> = WorkloadKind::all().iter().map(|w| w.label()).collect();
        CliError::Usage(format!("unknown workload `{label}` (known: {})", known.join(", ")))
    })?;
    let accesses = parse_u64(&flags, "accesses")?
        .ok_or_else(|| CliError::Usage("record needs --accesses".into()))?;
    let footprint_pages =
        parse_u64(&flags, "footprint-pages")?.unwrap_or_else(|| workload.default_footprint_pages());
    let seed = parse_u64(&flags, "seed")?.unwrap_or(42);
    let block = parse_block(&flags)?;
    let take = usize::try_from(accesses)
        .map_err(|_| CliError::Usage("--accesses does not fit this platform".into()))?;
    let generated = workload.generator(footprint_pages, seed).take(take);

    let summary = match (flag(&flags, "out"), flag(&flags, "store")) {
        (Some(path), None) => {
            let mut meta = TraceMeta::new(workload.label(), footprint_pages, seed);
            if let Some(block) = block {
                meta.block_accesses = block;
            }
            let mut writer = TraceWriter::new(BufWriter::new(File::create(path)?), &meta)?;
            writer.extend(generated)?;
            let summary = writer.finish()?;
            println!("recorded {path}");
            summary
        }
        (None, Some(dir)) => {
            let mut store = TraceStore::open_or_create(dir)?;
            let summary = store.record_with_block(
                workload.label(),
                footprint_pages,
                seed,
                block,
                generated,
            )?;
            let entry =
                store.find(workload.label(), footprint_pages, seed).expect("entry just recorded");
            println!("recorded {dir}/{}", entry.path);
            summary
        }
        (Some(_), Some(_)) => {
            return Err(CliError::Usage("record wants --out or --store, not both".into()));
        }
        (None, None) => {
            return Err(CliError::Usage("record needs --out <file> or --store <dir>".into()));
        }
    };
    println!("  workload={} footprint_pages={footprint_pages} seed={seed}", workload.label());
    println!(
        "  accesses={} blocks={} bytes={} ratio={:.2}x vs raw u64",
        summary.accesses,
        summary.blocks,
        summary.bytes,
        summary.compression_ratio()
    );
    Ok(())
}

fn one_positional(
    args: &[String],
    command: &str,
) -> Result<(String, Vec<(String, String)>), CliError> {
    let (flags, positional) = parse_flags(args)?;
    match positional.as_slice() {
        [path] => Ok((path.clone(), flags)),
        _ => Err(CliError::Usage(format!("{command} takes exactly one file argument"))),
    }
}

fn info(args: &[String]) -> Result<(), CliError> {
    let (path, _) = one_positional(args, "info")?;
    let file = TraceFile::open(&path)?;
    let info = file.info();
    println!("{path}");
    println!(
        "  workload={} footprint_pages={} seed={}",
        info.workload, info.footprint_pages, info.seed
    );
    println!(
        "  accesses={} blocks={} (≤{} accesses each)",
        info.accesses, info.blocks, info.block_accesses
    );
    println!(
        "  bytes={} ({:.3} bytes/access, {:.2}x smaller than raw u64)",
        info.file_bytes,
        if info.accesses == 0 { 0.0 } else { info.file_bytes as f64 / info.accesses as f64 },
        info.compression_ratio
    );
    Ok(())
}

fn verify_cmd(args: &[String]) -> Result<(), CliError> {
    let (path, _) = one_positional(args, "verify")?;
    let report = verify(BufReader::new(File::open(&path)?))?;
    println!(
        "{path}: ok — {} accesses in {} blocks, {} bytes, all CRCs and the seek index check out",
        report.accesses, report.blocks, report.bytes
    );
    Ok(())
}

fn cat(args: &[String]) -> Result<(), CliError> {
    let (flags, positional) = parse_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage("cat takes exactly one file argument".into()));
    };
    let limit = parse_u64(&flags, "limit")?;
    let reader = TraceReader::new(BufReader::new(File::open(path)?))?;
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for (printed, address) in reader.addresses().enumerate() {
        if limit.is_some_and(|l| printed as u64 >= l) {
            break;
        }
        writeln!(out, "{:#014x}", address?)?;
    }
    out.flush()?;
    Ok(())
}

fn convert_cmd(args: &[String]) -> Result<(), CliError> {
    let (flags, positional) = parse_flags(args)?;
    let [legacy_path, out_path] = positional.as_slice() else {
        return Err(CliError::Usage("convert takes <legacy-v1-file> <out-v2-file>".into()));
    };
    let block = parse_block(&flags)?;
    let legacy = BufReader::new(File::open(legacy_path)?);
    // LegacyReader buffers internally, but BufReader also cheapens the
    // small header reads.
    let sink = BufWriter::new(File::create(out_path)?);
    let summary = hytlb_tracefile::convert(legacy, sink, block)?;
    println!("converted {legacy_path} → {out_path}");
    println!(
        "  accesses={} blocks={} bytes={} ({:.2}x smaller than the v1 payload)",
        summary.written.accesses,
        summary.written.blocks,
        summary.written.bytes,
        summary.written.compression_ratio()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing_pairs_and_positionals() {
        let args = strings(&["--workload", "gups", "file.htr2", "--seed", "7"]);
        let (flags, positional) = parse_flags(&args).ok().unwrap();
        assert_eq!(flag(&flags, "workload"), Some("gups"));
        assert_eq!(flag(&flags, "seed"), Some("7"));
        assert_eq!(positional, vec!["file.htr2"]);
    }

    #[test]
    fn missing_flag_value_is_a_usage_error() {
        assert!(matches!(parse_flags(&strings(&["--seed"])), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        assert!(matches!(run(&strings(&["frobnicate"])), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }
}
