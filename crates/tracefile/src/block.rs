//! The `HYTLBTR2` block codec: zig-zag delta coding of address streams.
//!
//! A block is a self-contained run of up to [`MAX_BLOCK_ACCESSES`]
//! addresses: its first address is stored absolutely, every later one as
//! a delta, so blocks decode independently of each other — the property
//! the seek index, parallel decode and `info`-without-full-read all rest
//! on. Two payload encodings exist, and the writer picks whichever is
//! smaller for each block:
//!
//! * **Packed** — addresses are split into a page part (`address >> 12`)
//!   and a 12-bit page offset. Per access the bitstream holds one
//!   same-page flag bit, a zig-zag page delta for page changes, and the
//!   12 offset bits. Page deltas are bit-packed at one of two per-block
//!   widths (`w_small`/`w_big`, chosen to minimize total bits, one
//!   selector bit per delta when they differ) instead of byte-aligned
//!   varints: trace offsets are uniformly random, so the payload floor
//!   is ~13 bits/access and whole bytes per delta would squander most of
//!   the headroom below the 64-bit raw encoding.
//! * **Varint** — plain LEB128 varints of the zig-zag byte-address
//!   delta. Wins on word-strided streams (e.g. converted legacy traces
//!   of sequential scans), where one byte per access beats the packed
//!   floor.
//!
//! Every block record carries a CRC-32 over its header fields and
//! payload, so a flipped bit or truncation surfaces as
//! [`TraceFileError::Corrupt`] at the block that took the damage.

use crate::error::{Result, TraceFileError};
use crate::varint::{read_varint, varint_len, write_varint, zigzag_decode, zigzag_encode};
use std::io::Read;

/// Magic opening every block record.
pub const BLOCK_MAGIC: [u8; 4] = *b"BLK2";

/// Bits of the in-page offset (4 KB pages).
pub const OFFSET_BITS: u32 = 12;

/// Default accesses per block (64 Ki): big enough that per-block
/// overhead (header, index entry, width selection) is noise, small
/// enough that a block decodes well inside L2.
pub const DEFAULT_BLOCK_ACCESSES: u32 = 1 << 16;

/// Hard upper bound on the per-block access count a reader will accept.
/// Bounds allocation when parsing untrusted bytes.
pub const MAX_BLOCK_ACCESSES: u32 = 1 << 22;

/// Hard upper bound on an encoded payload a reader will accept.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 26;

/// Payload encoding selector stored in each block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Bit-packed dual-width page deltas plus raw 12-bit offsets.
    Packed,
    /// LEB128 varints of zig-zag byte-address deltas.
    Varint,
}

impl Encoding {
    fn code(self) -> u8 {
        match self {
            Encoding::Packed => 0,
            Encoding::Varint => 1,
        }
    }

    fn from_code(code: u8) -> Option<Encoding> {
        match code {
            0 => Some(Encoding::Packed),
            1 => Some(Encoding::Varint),
            2.. => None,
        }
    }
}

/// A parsed (but not yet decoded) block record.
#[derive(Debug, Clone)]
pub struct RawBlock {
    /// Number of addresses in the block (≥ 1).
    pub count: u32,
    /// Payload encoding.
    pub encoding: Encoding,
    /// Small packed width for page deltas (0 when unused).
    pub w_small: u8,
    /// Large packed width for page deltas (0 when the block never
    /// changes page).
    pub w_big: u8,
    /// The first address, stored absolutely.
    pub first: u64,
    /// The encoded delta payload.
    pub payload: Vec<u8>,
}

/// Fixed bytes of a block record: magic, count, payload_len, encoding,
/// w_small, w_big, reserved, first, …payload…, crc.
pub const BLOCK_FIXED_BYTES: u64 = 4 + 4 + 4 + 1 + 1 + 1 + 1 + 8 + 4;

// ---------------------------------------------------------------------
// Bit-level packing (LSB-first).

struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { out: Vec::new(), acc: 0, nbits: 0 }
    }

    /// Appends the low `bits` bits of `value`. `bits` must be ≤ 56 so
    /// the accumulator never overflows (callers pass ≤ 53).
    #[inline]
    fn put(&mut self, value: u64, bits: u32) {
        debug_assert!(bits <= 56 && (bits == 64 || value < (1u64 << bits)));
        self.acc |= value << self.nbits;
        self.nbits += bits;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }
}

struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0, acc: 0, nbits: 0 }
    }

    /// Tops the accumulator up toward 56+ buffered bits — one unaligned
    /// word load in the hot path, byte-at-a-time over the payload tail.
    /// After this, `nbits` is the total bits left whenever that total is
    /// below 56.
    #[inline]
    fn refill(&mut self) {
        if self.nbits >= 56 {
            return;
        }
        if self.pos + 8 <= self.bytes.len() {
            let word = u64::from_le_bytes(
                self.bytes[self.pos..self.pos + 8].try_into().expect("8-byte window"),
            );
            self.acc |= word << self.nbits;
            // Cap at 63 buffered bits so a later `consume` never shifts
            // by 64.
            let loaded = (63 - self.nbits) >> 3;
            self.pos += loaded as usize;
            self.nbits += loaded * 8;
        } else {
            while self.nbits < 56 {
                let Some(&byte) = self.bytes.get(self.pos) else { break };
                self.pos += 1;
                self.acc |= u64::from(byte) << self.nbits;
                self.nbits += 8;
            }
        }
    }

    /// Drops `bits` already-buffered bits; `bits` must be ≤ `nbits`.
    #[inline]
    fn consume(&mut self, bits: u32) {
        debug_assert!(bits <= self.nbits);
        self.acc >>= bits;
        self.nbits -= bits;
    }

    /// Reads `bits` bits (≤ 56); `None` once the payload is exhausted.
    ///
    /// The refill is word-at-a-time while at least 8 payload bytes
    /// remain (the decode hot path), falling back to byte-at-a-time for
    /// the tail. Callers never ask for more than 56 bits, so after a
    /// refill the accumulator always holds enough.
    #[inline]
    fn get(&mut self, bits: u32) -> Option<u64> {
        debug_assert!(bits <= 56);
        if self.nbits < bits {
            if self.pos + 8 <= self.bytes.len() {
                let word = u64::from_le_bytes(
                    self.bytes[self.pos..self.pos + 8].try_into().expect("8-byte window"),
                );
                // `nbits < 56`, so at least one whole byte fits below
                // bit 64 of the accumulator.
                self.acc |= word << self.nbits;
                let loaded = (64 - self.nbits) >> 3;
                self.pos += loaded as usize;
                self.nbits += loaded * 8;
            } else {
                while self.nbits < bits {
                    let byte = *self.bytes.get(self.pos)?;
                    self.pos += 1;
                    self.acc |= u64::from(byte) << self.nbits;
                    self.nbits += 8;
                }
            }
        }
        let value = self.acc & ((1u64 << bits) - 1);
        self.acc >>= bits;
        self.nbits -= bits;
        Some(value)
    }
}

// ---------------------------------------------------------------------
// Encoding.

/// Per-access derived values shared by cost estimation and packing.
struct Derived {
    /// Zig-zag page delta for page-changing accesses, `None` when the
    /// access stays on the previous page.
    page_delta: Option<u64>,
    /// Low 12 bits of the address.
    offset: u64,
    /// Zig-zag byte-address delta (for the varint encoding).
    byte_delta: u64,
}

fn derive(addresses: &[u64]) -> Vec<Derived> {
    let mut out = Vec::with_capacity(addresses.len().saturating_sub(1));
    for pair in addresses.windows(2) {
        let (prev, cur) = (pair[0], pair[1]);
        let upper_prev = prev >> OFFSET_BITS;
        let upper_cur = cur >> OFFSET_BITS;
        let page_delta = if upper_cur == upper_prev {
            None
        } else {
            Some(zigzag_encode(upper_cur.wrapping_sub(upper_prev) as i64))
        };
        out.push(Derived {
            page_delta,
            offset: cur & ((1 << OFFSET_BITS) - 1),
            byte_delta: zigzag_encode(cur.wrapping_sub(prev) as i64),
        });
    }
    out
}

fn width_of(value: u64) -> u32 {
    64 - value.leading_zeros()
}

/// Chooses the `(w_small, w_big)` pair minimizing the packed payload
/// bits, from the histogram of page-delta widths. Returns `(0, 0)` when
/// the block never changes page.
fn choose_widths(derived: &[Derived]) -> (u8, u8) {
    let mut hist = [0u64; 54];
    for d in derived {
        if let Some(zz) = d.page_delta {
            hist[width_of(zz) as usize] += 1;
        }
    }
    let w_big = match hist.iter().rposition(|&n| n > 0) {
        Some(w) => w as u32,
        None => return (0, 0),
    };
    // Cost of encoding every delta at w_big with no selector bit:
    let total: u64 = hist.iter().sum();
    let mut best_w = w_big;
    let mut best_cost = total * u64::from(w_big);
    // Versus one selector bit per delta and a second, smaller width:
    let mut below = 0u64; // deltas with width ≤ candidate
    for w1 in 1..w_big {
        below += hist[w1 as usize];
        let cost = below * u64::from(1 + w1) + (total - below) * u64::from(1 + w_big);
        if cost < best_cost {
            best_cost = cost;
            best_w = w1;
        }
    }
    (best_w as u8, w_big as u8)
}

/// Encodes `addresses` (non-empty) into a complete block record,
/// including magic and CRC.
///
/// # Panics
///
/// Panics if `addresses` is empty or longer than
/// [`MAX_BLOCK_ACCESSES`]; the writer never lets either happen.
#[must_use]
pub fn encode_block(addresses: &[u64]) -> Vec<u8> {
    assert!(!addresses.is_empty(), "a block holds at least one access");
    assert!(addresses.len() <= MAX_BLOCK_ACCESSES as usize, "block too large");
    let derived = derive(addresses);
    let (w_small, w_big) = choose_widths(&derived);

    // Packed cost in bits; varint cost in bytes. Pick the smaller.
    let dual = w_small < w_big;
    let packed_bits: u64 = derived
        .iter()
        .map(|d| {
            1 + u64::from(OFFSET_BITS)
                + match d.page_delta {
                    None => 0,
                    Some(zz) if dual => {
                        1 + u64::from(if width_of(zz) <= u32::from(w_small) {
                            u32::from(w_small)
                        } else {
                            u32::from(w_big)
                        })
                    }
                    Some(_) => u64::from(w_big),
                }
        })
        .sum();
    let varint_bytes: u64 = derived.iter().map(|d| varint_len(d.byte_delta) as u64).sum();

    let (encoding, payload) = if varint_bytes * 8 < packed_bits {
        let mut payload = Vec::with_capacity(varint_bytes as usize);
        for d in &derived {
            write_varint(&mut payload, d.byte_delta);
        }
        (Encoding::Varint, payload)
    } else {
        let mut bits = BitWriter::new();
        for d in &derived {
            match d.page_delta {
                None => bits.put(1, 1),
                Some(zz) => {
                    bits.put(0, 1);
                    if dual {
                        if width_of(zz) <= u32::from(w_small) {
                            bits.put(0, 1);
                            bits.put(zz, u32::from(w_small));
                        } else {
                            bits.put(1, 1);
                            bits.put(zz, u32::from(w_big));
                        }
                    } else {
                        bits.put(zz, u32::from(w_big));
                    }
                }
            }
            bits.put(d.offset, OFFSET_BITS);
        }
        (Encoding::Packed, bits.finish())
    };

    let (w_small, w_big) = match encoding {
        Encoding::Packed => (w_small, w_big),
        Encoding::Varint => (0, 0),
    };
    let mut record = Vec::with_capacity(payload.len() + BLOCK_FIXED_BYTES as usize);
    record.extend_from_slice(&BLOCK_MAGIC);
    record.extend_from_slice(&(addresses.len() as u32).to_le_bytes());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.push(encoding.code());
    record.push(w_small);
    record.push(w_big);
    record.push(0); // reserved
    record.extend_from_slice(&addresses[0].to_le_bytes());
    record.extend_from_slice(&payload);
    let crc = crate::crc32::crc32(&record[4..]);
    record.extend_from_slice(&crc.to_le_bytes());
    record
}

// ---------------------------------------------------------------------
// Parsing and decoding.

impl RawBlock {
    /// Parses one block record from `reader`, the 4-byte magic already
    /// consumed, verifying the CRC against the header fields and
    /// payload. Allocation is bounded by [`MAX_BLOCK_ACCESSES`] and
    /// [`MAX_PAYLOAD_BYTES`] before anything is sized from the (possibly
    /// corrupt) header.
    pub fn parse<R: Read>(reader: &mut R, ordinal: u64) -> Result<RawBlock> {
        let what = || format!("block {ordinal}");
        // Header after the magic: count, payload_len, encoding, w_small,
        // w_big, reserved, first — 20 bytes.
        let mut head = [0u8; 20];
        reader.read_exact(&mut head)?;
        let count = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if count == 0 || count > MAX_BLOCK_ACCESSES {
            return Err(TraceFileError::corrupt(
                what(),
                format!("access count {count} out of range"),
            ));
        }
        if payload_len > MAX_PAYLOAD_BYTES {
            return Err(TraceFileError::corrupt(
                what(),
                format!("payload length {payload_len} exceeds the {MAX_PAYLOAD_BYTES}-byte cap"),
            ));
        }
        let encoding = Encoding::from_code(head[8]).ok_or_else(|| {
            TraceFileError::corrupt(what(), format!("unknown payload encoding {}", head[8]))
        })?;
        let (w_small, w_big) = (head[9], head[10]);
        if w_small > w_big || w_big > 53 {
            return Err(TraceFileError::corrupt(
                what(),
                format!("invalid packed widths ({w_small}, {w_big})"),
            ));
        }
        let first = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
        let mut payload = vec![0u8; payload_len as usize];
        reader.read_exact(&mut payload)?;
        let mut crc_bytes = [0u8; 4];
        reader.read_exact(&mut crc_bytes)?;
        let stored = u32::from_le_bytes(crc_bytes);
        let mut crc = crate::crc32::Crc32::new();
        crc.update(&head);
        crc.update(&payload);
        let computed = crc.finish();
        if stored != computed {
            return Err(TraceFileError::corrupt(
                what(),
                format!("CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"),
            ));
        }
        Ok(RawBlock { count, encoding, w_small, w_big, first, payload })
    }

    /// Total bytes of this block's record on disk, including magic and
    /// CRC.
    #[must_use]
    pub fn record_bytes(&self) -> u64 {
        BLOCK_FIXED_BYTES + self.payload.len() as u64
    }

    /// Decodes the payload back into addresses.
    pub fn decode(&self) -> Result<Vec<u64>> {
        let mut out = Vec::with_capacity(self.count as usize);
        out.push(self.first);
        match self.encoding {
            Encoding::Packed => {
                let mut bits = BitReader::new(&self.payload);
                let dual = self.w_small < self.w_big;
                let (w_small, w_big) = (u32::from(self.w_small), u32::from(self.w_big));
                let offset_mask = (1u64 << OFFSET_BITS) - 1;
                let truncated =
                    || TraceFileError::corrupt("block payload", "packed stream ran short");
                // Four same-page flag bits at 13-bit stride: a run of
                // four same-page accesses decodes from one refill.
                const SAME4: u64 = 1 | 1 << 13 | 1 << 26 | 1 << 39;
                let mut upper_prev = self.first >> OFFSET_BITS;
                let mut left = u64::from(self.count) - 1;
                while left > 0 {
                    // One refill covers the whole access in the common
                    // case, so the fields below peel straight off the
                    // accumulator without per-field bounds checks.
                    bits.refill();
                    let avail = bits.nbits;
                    if left >= 4 && avail >= 4 * (1 + OFFSET_BITS) && bits.acc & SAME4 == SAME4 {
                        let base = upper_prev << OFFSET_BITS;
                        out.push(base | ((bits.acc >> 1) & offset_mask));
                        out.push(base | ((bits.acc >> 14) & offset_mask));
                        out.push(base | ((bits.acc >> 27) & offset_mask));
                        out.push(base | ((bits.acc >> 40) & offset_mask));
                        bits.consume(4 * (1 + OFFSET_BITS));
                        left -= 4;
                        continue;
                    }
                    const SAME2: u64 = 1 | 1 << 13;
                    if left >= 2 && avail >= 2 * (1 + OFFSET_BITS) && bits.acc & SAME2 == SAME2 {
                        let base = upper_prev << OFFSET_BITS;
                        out.push(base | ((bits.acc >> 1) & offset_mask));
                        out.push(base | ((bits.acc >> 14) & offset_mask));
                        bits.consume(2 * (1 + OFFSET_BITS));
                        left -= 2;
                        continue;
                    }
                    if avail < 1 + OFFSET_BITS {
                        return Err(truncated());
                    }
                    left -= 1;
                    if bits.acc & 1 == 1 {
                        // Same page: flag + offset, always buffered.
                        let offset = (bits.acc >> 1) & offset_mask;
                        bits.consume(1 + OFFSET_BITS);
                        out.push((upper_prev << OFFSET_BITS) | offset);
                        continue;
                    }
                    // Page change: flag (+ selector) + delta + offset.
                    let (head_bits, width) = if dual {
                        (2, if bits.acc & 2 == 0 { w_small } else { w_big })
                    } else {
                        (1, w_big)
                    };
                    if width == 0 {
                        return Err(TraceFileError::corrupt(
                            "block payload",
                            "page change encoded with zero-width delta",
                        ));
                    }
                    let needed = head_bits + width + OFFSET_BITS;
                    let offset = if needed <= avail {
                        let zz = (bits.acc >> head_bits) & ((1u64 << width) - 1);
                        let offset = (bits.acc >> (head_bits + width)) & offset_mask;
                        bits.consume(needed);
                        upper_prev = upper_prev.wrapping_add(zigzag_decode(zz) as u64);
                        offset
                    } else {
                        // A delta too wide for one refill window (or a
                        // short tail): piecewise reads.
                        bits.consume(head_bits);
                        let zz = bits.get(width).ok_or_else(truncated)?;
                        upper_prev = upper_prev.wrapping_add(zigzag_decode(zz) as u64);
                        bits.get(OFFSET_BITS).ok_or_else(truncated)?
                    };
                    out.push((upper_prev << OFFSET_BITS) | offset);
                }
            }
            Encoding::Varint => {
                let mut pos = 0usize;
                let mut prev = self.first;
                for _ in 1..self.count {
                    let zz = read_varint(&self.payload, &mut pos).ok_or_else(|| {
                        TraceFileError::corrupt("block payload", "varint stream ran short")
                    })?;
                    prev = prev.wrapping_add(zigzag_decode(zz) as u64);
                    out.push(prev);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(addresses: &[u64]) -> RawBlock {
        let record = encode_block(addresses);
        assert_eq!(&record[0..4], &BLOCK_MAGIC);
        let mut cursor = &record[4..];
        let block = RawBlock::parse(&mut cursor, 0).expect("parses");
        assert!(cursor.is_empty(), "parse must consume the whole record");
        assert_eq!(block.decode().expect("decodes"), addresses);
        block
    }

    #[test]
    fn single_access_block() {
        let b = roundtrip(&[0x1234_5678]);
        assert_eq!(b.count, 1);
        assert!(b.payload.is_empty());
    }

    #[test]
    fn same_page_run_is_cheap() {
        // 1000 accesses on one page with *random* offsets (the
        // generator case): 13 bits each → well under 2 bytes. A
        // constant small stride would instead pick 1-byte varints.
        let addresses: Vec<u64> = (0..1000u64)
            .map(|i| 0xabc000 + ((i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) & 0xfff))
            .collect();
        let b = roundtrip(&addresses);
        assert_eq!(b.encoding, Encoding::Packed);
        assert!(b.payload.len() < 2 * addresses.len(), "payload {}", b.payload.len());
    }

    #[test]
    fn word_strided_stream_uses_varints() {
        // +8-byte stride: 1-byte varints beat the 13-bit packed floor.
        let addresses: Vec<u64> = (0..5000u64).map(|i| 0x10_0000 + i * 8).collect();
        let b = roundtrip(&addresses);
        assert_eq!(b.encoding, Encoding::Varint);
        assert!(b.payload.len() <= addresses.len());
    }

    #[test]
    fn non_monotone_and_wrapping_streams_roundtrip() {
        roundtrip(&[u64::MAX, 0, u64::MAX - 4096, 4096, 1, u64::MAX]);
        roundtrip(&[5, 4, 3, 2, 1, 0]);
        roundtrip(&[0, u64::MAX / 2, 0, u64::MAX, 0]);
    }

    #[test]
    fn dual_width_beats_single_width_on_mixed_deltas() {
        // Mostly ±1-page hops with occasional huge jumps: w_small should
        // be chosen near the hop width, not the jump width.
        let mut addresses = vec![0x100_0000u64];
        for i in 1..4096u64 {
            let prev = *addresses.last().expect("nonempty");
            if i % 64 == 0 {
                addresses.push(prev.wrapping_add(0x4000_0000));
            } else {
                addresses.push(prev + 4096);
            }
        }
        let b = roundtrip(&addresses);
        assert_eq!(b.encoding, Encoding::Packed);
        assert!(b.w_small > 0 && b.w_small < b.w_big, "({}, {})", b.w_small, b.w_big);
        // ~2 bits page delta + 12 offset + 2 flags ≈ 2 bytes/access.
        assert!(b.payload.len() < addresses.len() * 5 / 2);
    }

    #[test]
    fn corrupt_count_is_rejected_without_huge_allocation() {
        let mut record = encode_block(&[1, 2, 3]);
        record[4..8].copy_from_slice(&u32::MAX.to_le_bytes()); // count
        let err = RawBlock::parse(&mut &record[4..], 7).expect_err("must reject");
        assert!(err.is_corrupt(), "{err}");
        assert!(err.to_string().contains("block 7"), "{err}");
    }

    #[test]
    fn flipped_payload_bit_fails_crc() {
        let addresses: Vec<u64> = (0..500u64).map(|i| i * 777 % (1 << 30)).collect();
        let mut record = encode_block(&addresses);
        let mid = record.len() / 2;
        record[mid] ^= 0x10;
        let err = RawBlock::parse(&mut &record[4..], 0).expect_err("must reject");
        assert!(err.to_string().contains("CRC"), "{err}");
    }

    #[test]
    fn truncated_record_is_corrupt_not_garbage() {
        let record = encode_block(&(0..500u64).map(|i| i * 4096).collect::<Vec<_>>());
        for cut in [5, 12, 20, record.len() - 2] {
            let err = RawBlock::parse(&mut &record[4..cut], 0).expect_err("must reject");
            assert!(err.is_corrupt(), "cut at {cut}: {err}");
        }
    }
}
