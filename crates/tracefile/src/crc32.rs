//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every block payload, the seek index and the footer of a `HYTLBTR2`
//! file carry a CRC so corruption is detected at the granularity it
//! occurred, instead of surfacing as garbage addresses downstream. The
//! implementation is self-contained (the workspace builds offline, so no
//! `crc32fast`) and uses the slicing-by-8 technique — eight 256-entry
//! tables generated at first use, folding 8 input bytes per step — so
//! checksumming never dominates trace replay.

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/IEEE (the zlib / gzip / PNG CRC).
const POLY: u32 = 0xedb8_8320;

fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (n, slot) in t[0].iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        // table[k][i] extends table[k-1][i] by one zero byte, so the
        // eight lookups in `update` each cover one lane of a u64.
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = t[0][usize::from(prev as u8)] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Incremental CRC-32 state.
///
/// ```
/// use hytlb_tracefile::crc32::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xcbf4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh CRC over nothing.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = tables();
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4 bytes")) ^ c;
            let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4 bytes"));
            c = t[7][usize::from(lo as u8)]
                ^ t[6][usize::from((lo >> 8) as u8)]
                ^ t[5][usize::from((lo >> 16) as u8)]
                ^ t[4][usize::from((lo >> 24) as u8)]
                ^ t[3][usize::from(hi as u8)]
                ^ t[2][usize::from((hi >> 8) as u8)]
                ^ t[1][usize::from((hi >> 16) as u8)]
                ^ t[0][usize::from((hi >> 24) as u8)];
        }
        for &b in chunks.remainder() {
            c = t[0][usize::from((c as u8) ^ b)] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data = b"hybrid tlb coalescing";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 257];
        data[100] = 0x55;
        let clean = crc32(&data);
        for bit in 0..8 {
            data[100] ^= 1 << bit;
            assert_ne!(crc32(&data), clean, "bit {bit} flip went undetected");
            data[100] ^= 1 << bit;
        }
    }
}
