//! Typed errors for the trace-file subsystem.

use std::fmt;
use std::io;

/// Everything that can go wrong reading, writing or verifying a trace
/// file or corpus store.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceFileError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The bytes are not a trace file, or violate the format: bad magic,
    /// failed CRC, truncated block, stale seek index, … `what` says which
    /// structure, `detail` what was wrong with it.
    Corrupt {
        /// The structure that failed to parse (`"block 3"`, `"seek
        /// index"`, `"footer"`, …).
        what: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The file is a hytlb trace, but of a version this build does not
    /// read.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// A corpus-store operation referenced an entry that does not exist
    /// or disagrees with the manifest.
    Store {
        /// What the store operation expected and did not find.
        detail: String,
    },
}

impl TraceFileError {
    /// Builds a [`TraceFileError::Corrupt`] naming the offending
    /// structure.
    #[must_use]
    pub fn corrupt(what: impl Into<String>, detail: impl Into<String>) -> Self {
        TraceFileError::Corrupt { what: what.into(), detail: detail.into() }
    }

    /// `true` when the error reports malformed bytes (as opposed to an
    /// I/O failure or a missing store entry).
    #[must_use]
    pub fn is_corrupt(&self) -> bool {
        matches!(self, TraceFileError::Corrupt { .. } | TraceFileError::UnsupportedVersion { .. })
    }
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            TraceFileError::Corrupt { what, detail } => {
                write!(f, "corrupt trace file ({what}): {detail}")
            }
            TraceFileError::UnsupportedVersion { found } => {
                write!(f, "unsupported trace-file version {found} (this build reads version 2)")
            }
            TraceFileError::Store { detail } => write!(f, "trace store: {detail}"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            TraceFileError::Corrupt { .. }
            | TraceFileError::UnsupportedVersion { .. }
            | TraceFileError::Store { .. } => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        // A short read while parsing a declared structure is corruption
        // (truncated file), not an environment failure; everything else
        // stays an I/O error.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFileError::corrupt("stream", "truncated mid-structure")
        } else {
            TraceFileError::Io(e)
        }
    }
}

impl From<TraceFileError> for io::Error {
    fn from(e: TraceFileError) -> Self {
        match e {
            TraceFileError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Shorthand for results in this crate.
pub type Result<T> = std::result::Result<T, TraceFileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_structure() {
        let e = TraceFileError::corrupt("block 3", "payload CRC mismatch");
        assert!(e.to_string().contains("block 3"));
        assert!(e.is_corrupt());
        assert!(!TraceFileError::Store { detail: "x".into() }.is_corrupt());
    }

    #[test]
    fn unexpected_eof_maps_to_corrupt() {
        let e: TraceFileError = io::Error::new(io::ErrorKind::UnexpectedEof, "eof").into();
        assert!(e.is_corrupt());
        let e: TraceFileError = io::Error::new(io::ErrorKind::PermissionDenied, "no").into();
        assert!(!e.is_corrupt());
    }

    #[test]
    fn converts_to_io_invalid_data() {
        let io_err: io::Error = TraceFileError::UnsupportedVersion { found: 9 }.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
    }
}
