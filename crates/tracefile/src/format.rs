//! File-level structures of the `HYTLBTR2` format: magic, JSON header,
//! seek index and footer.
//!
//! A trace file looks like:
//!
//! ```text
//! "HYTLBTR2"  (8 bytes)
//! header_len  (u32 LE, ≤ 1 MiB)
//! header      (JSON-encoded TraceMeta, header_len bytes)
//! block record …                 ── see crate::block
//! block record …
//! "IDX2" entry_count entries crc ── seek index, one entry per block
//! index_offset accesses blocks crc "HYTLBEND"   ── 36-byte footer
//! ```
//!
//! The footer is fixed-size and sits at EOF, so a seekable reader finds
//! the index in two seeks without scanning blocks. Streaming readers
//! ignore both: blocks are self-delimiting and stop at `"IDX2"`.

use std::io::Read;

use crate::crc32::crc32;
use crate::error::{Result, TraceFileError};

/// Leading magic of a version-2 trace file.
pub const FILE_MAGIC: [u8; 8] = *b"HYTLBTR2";

/// Trailing magic closing the footer; its presence at EOF marks a file
/// whose writer ran to completion.
pub const END_MAGIC: [u8; 8] = *b"HYTLBEND";

/// Magic opening the seek index, in the position a block magic would
/// occupy, so streaming readers detect end-of-blocks.
pub const INDEX_MAGIC: [u8; 4] = *b"IDX2";

/// The version this build reads and writes.
pub const FORMAT_VERSION: u32 = 2;

/// Upper bound on the JSON header, so a corrupt length prefix cannot
/// drive a giant allocation.
pub const MAX_HEADER_BYTES: u32 = 1 << 20;

/// Encoded size of one seek-index entry.
pub const INDEX_ENTRY_BYTES: u64 = 8 + 8 + 8 + 4;

/// Encoded size of the footer.
pub const FOOTER_BYTES: u64 = 8 + 8 + 8 + 4 + 8;

/// Descriptive metadata stored in the JSON header of every trace file.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceMeta {
    /// Format version (always [`FORMAT_VERSION`] for files this build
    /// writes).
    pub version: u32,
    /// Workload label (`"gups"`, `"mcf"`, …) as printed by
    /// `WorkloadKind::label`.
    pub workload: String,
    /// Footprint in 4 KiB pages the trace was generated against.
    pub footprint_pages: u64,
    /// Generator seed.
    pub seed: u64,
    /// Accesses per block the writer targets (the last block may be
    /// shorter).
    pub block_accesses: u32,
}

impl TraceMeta {
    /// Metadata for a new recording with the default block size.
    #[must_use]
    pub fn new(workload: impl Into<String>, footprint_pages: u64, seed: u64) -> Self {
        TraceMeta {
            version: FORMAT_VERSION,
            workload: workload.into(),
            footprint_pages,
            seed,
            block_accesses: crate::block::DEFAULT_BLOCK_ACCESSES,
        }
    }
}

/// One seek-index entry: where a block lives and what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the block's magic from the start of the file.
    pub offset: u64,
    /// Global index of the block's first access.
    pub first_access: u64,
    /// The block's first address (duplicated from the block header so
    /// address-range queries never touch the block).
    pub first_address: u64,
    /// Accesses in the block.
    pub count: u32,
}

/// The fixed-size footer at EOF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Byte offset of [`INDEX_MAGIC`] from the start of the file.
    pub index_offset: u64,
    /// Total accesses across all blocks.
    pub accesses: u64,
    /// Total number of blocks.
    pub blocks: u64,
}

/// Summary a reader can produce without decoding any block.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TraceInfo {
    /// Header metadata.
    pub workload: String,
    /// Footprint in pages, from the header.
    pub footprint_pages: u64,
    /// Generator seed, from the header.
    pub seed: u64,
    /// Target accesses per block, from the header.
    pub block_accesses: u32,
    /// Total accesses, from the footer.
    pub accesses: u64,
    /// Total blocks, from the footer.
    pub blocks: u64,
    /// Size of the file in bytes.
    pub file_bytes: u64,
    /// `8 × accesses / file_bytes`: how much smaller than raw LE u64s.
    pub compression_ratio: f64,
}

/// Serializes `meta` and returns the complete file prelude: magic,
/// length prefix and JSON header.
pub fn encode_header(meta: &TraceMeta) -> Result<Vec<u8>> {
    let json = serde_json::to_vec(meta)
        .map_err(|e| TraceFileError::Store { detail: format!("header serialize: {e}") })?;
    if json.len() as u64 > u64::from(MAX_HEADER_BYTES) {
        return Err(TraceFileError::Store { detail: "header exceeds 1 MiB".into() });
    }
    let mut out = Vec::with_capacity(8 + 4 + json.len());
    out.extend_from_slice(&FILE_MAGIC);
    out.extend_from_slice(&(json.len() as u32).to_le_bytes());
    out.extend_from_slice(&json);
    Ok(out)
}

/// Reads and validates the file prelude, returning the metadata and the
/// number of bytes consumed.
pub fn read_header<R: Read>(reader: &mut R) -> Result<(TraceMeta, u64)> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if magic == *b"HYTLBTR1" {
        return Err(TraceFileError::UnsupportedVersion { found: 1 });
    }
    if magic != FILE_MAGIC {
        return Err(TraceFileError::corrupt("file magic", "not a HYTLBTR2 trace file"));
    }
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let header_len = u32::from_le_bytes(len_bytes);
    if header_len > MAX_HEADER_BYTES {
        return Err(TraceFileError::corrupt(
            "header",
            format!("declared length {header_len} exceeds the 1 MiB bound"),
        ));
    }
    let mut json = vec![0u8; header_len as usize];
    reader.read_exact(&mut json)?;
    let text = std::str::from_utf8(&json)
        .map_err(|_| TraceFileError::corrupt("header", "header is not UTF-8"))?;
    let meta: TraceMeta = serde_json::from_str(text)
        .map_err(|e| TraceFileError::corrupt("header", format!("bad JSON: {e}")))?;
    if meta.version != FORMAT_VERSION {
        return Err(TraceFileError::UnsupportedVersion { found: meta.version });
    }
    if meta.block_accesses == 0 || meta.block_accesses > crate::block::MAX_BLOCK_ACCESSES {
        return Err(TraceFileError::corrupt(
            "header",
            format!("block_accesses {} out of range", meta.block_accesses),
        ));
    }
    Ok((meta, 8 + 4 + u64::from(header_len)))
}

/// Encodes the seek index: magic, entry count, fixed-size entries and a
/// CRC over everything after the magic.
#[must_use]
pub fn encode_index(entries: &[IndexEntry]) -> Vec<u8> {
    let body = INDEX_ENTRY_BYTES as usize * entries.len();
    let mut out = Vec::with_capacity(4 + 4 + body + 4);
    out.extend_from_slice(&INDEX_MAGIC);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.offset.to_le_bytes());
        out.extend_from_slice(&e.first_access.to_le_bytes());
        out.extend_from_slice(&e.first_address.to_le_bytes());
        out.extend_from_slice(&e.count.to_le_bytes());
    }
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Reads the seek index *after* its magic has already been consumed
/// (streaming readers peek the magic to know blocks ended).
/// `max_entries` bounds the allocation; pass the block count from the
/// footer, or a limit derived from the file size.
pub fn read_index_body<R: Read>(reader: &mut R, max_entries: u64) -> Result<Vec<IndexEntry>> {
    let mut count_bytes = [0u8; 4];
    reader.read_exact(&mut count_bytes)?;
    let entry_count = u32::from_le_bytes(count_bytes);
    if u64::from(entry_count) > max_entries {
        return Err(TraceFileError::corrupt(
            "seek index",
            format!("declares {entry_count} entries, more than the file can hold"),
        ));
    }
    let body_len = INDEX_ENTRY_BYTES as usize * entry_count as usize;
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    let mut crc_bytes = [0u8; 4];
    reader.read_exact(&mut crc_bytes)?;
    let mut crc = crate::crc32::Crc32::new();
    crc.update(&count_bytes);
    crc.update(&body);
    if crc.finish() != u32::from_le_bytes(crc_bytes) {
        return Err(TraceFileError::corrupt("seek index", "CRC mismatch"));
    }
    let mut entries = Vec::with_capacity(entry_count as usize);
    for chunk in body.chunks_exact(INDEX_ENTRY_BYTES as usize) {
        entries.push(IndexEntry {
            offset: u64::from_le_bytes(chunk[0..8].try_into().expect("8-byte slice")),
            first_access: u64::from_le_bytes(chunk[8..16].try_into().expect("8-byte slice")),
            first_address: u64::from_le_bytes(chunk[16..24].try_into().expect("8-byte slice")),
            count: u32::from_le_bytes(chunk[24..28].try_into().expect("4-byte slice")),
        });
    }
    Ok(entries)
}

/// Encodes the 36-byte footer.
#[must_use]
pub fn encode_footer(footer: &Footer) -> Vec<u8> {
    let mut out = Vec::with_capacity(FOOTER_BYTES as usize);
    out.extend_from_slice(&footer.index_offset.to_le_bytes());
    out.extend_from_slice(&footer.accesses.to_le_bytes());
    out.extend_from_slice(&footer.blocks.to_le_bytes());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&END_MAGIC);
    out
}

/// Parses and validates a 36-byte footer.
pub fn parse_footer(bytes: &[u8]) -> Result<Footer> {
    if bytes.len() != FOOTER_BYTES as usize {
        return Err(TraceFileError::corrupt("footer", "short footer"));
    }
    if bytes[28..36] != END_MAGIC {
        return Err(TraceFileError::corrupt(
            "footer",
            "missing HYTLBEND trailer (file truncated or writer never finished)",
        ));
    }
    let crc = u32::from_le_bytes(bytes[24..28].try_into().expect("4-byte slice"));
    if crc32(&bytes[..24]) != crc {
        return Err(TraceFileError::corrupt("footer", "CRC mismatch"));
    }
    Ok(Footer {
        index_offset: u64::from_le_bytes(bytes[0..8].try_into().expect("8-byte slice")),
        accesses: u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice")),
        blocks: u64::from_le_bytes(bytes[16..24].try_into().expect("8-byte slice")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips() {
        let meta = TraceMeta::new("gups", 1 << 21, 42);
        let bytes = encode_header(&meta).unwrap();
        let mut cursor = &bytes[..];
        let (back, consumed) = read_header(&mut cursor).unwrap();
        assert_eq!(back, meta);
        assert_eq!(consumed, bytes.len() as u64);
    }

    #[test]
    fn legacy_magic_reports_version_1() {
        let mut cursor = &b"HYTLBTR1xxxx"[..];
        match read_header(&mut cursor) {
            Err(TraceFileError::UnsupportedVersion { found: 1 }) => {}
            other => panic!("expected UnsupportedVersion {{ 1 }}, got {other:?}"),
        }
    }

    #[test]
    fn oversized_header_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FILE_MAGIC);
        bytes.extend_from_slice(&(MAX_HEADER_BYTES + 1).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let mut cursor = &bytes[..];
        let err = read_header(&mut cursor).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn index_roundtrips_and_detects_flips() {
        let entries = vec![
            IndexEntry { offset: 12, first_access: 0, first_address: 4096, count: 3 },
            IndexEntry { offset: 90, first_access: 3, first_address: 8192, count: 7 },
        ];
        let mut bytes = encode_index(&entries);
        let mut cursor = &bytes[4..];
        assert_eq!(read_index_body(&mut cursor, 10).unwrap(), entries);

        bytes[10] ^= 0x40;
        let mut cursor = &bytes[4..];
        let err = read_index_body(&mut cursor, 10).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn footer_roundtrips_and_detects_truncation() {
        let footer = Footer { index_offset: 777, accesses: 12_345, blocks: 4 };
        let bytes = encode_footer(&footer);
        assert_eq!(bytes.len() as u64, FOOTER_BYTES);
        assert_eq!(parse_footer(&bytes).unwrap(), footer);
        assert!(parse_footer(&bytes[..35]).is_err());
        let mut flipped = bytes.clone();
        flipped[3] ^= 1;
        assert!(parse_footer(&flipped).unwrap_err().is_corrupt());
    }
}
