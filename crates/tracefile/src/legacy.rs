//! Reading the legacy `HYTLBTR1` format and converting it to v2.
//!
//! The v1 format (`hytlb_trace::io`) is a JSON header followed by raw
//! little-endian u64s — simple, but 8 bytes per access and with nothing
//! to catch corruption. [`LegacyReader`] streams it with bounded memory
//! (an 8 KiB read buffer, never a full `Vec` of the trace) and
//! [`convert`] re-encodes it block-by-block into v2, which is what
//! `hytlb-tracectl convert` runs.

use std::io::Read;

use crate::error::{Result, TraceFileError};
use crate::format::{TraceMeta, MAX_HEADER_BYTES};
use crate::writer::{TraceWriter, WriteSummary};

/// Leading magic of a version-1 trace file.
pub const LEGACY_MAGIC: [u8; 8] = *b"HYTLBTR1";

/// The v1 JSON header. Field names must match `hytlb_trace::io`.
#[derive(Debug, Clone, serde::Deserialize)]
struct LegacyHeader {
    workload: String,
    footprint_pages: u64,
    accesses: u64,
    seed: u64,
}

/// Streaming reader over a legacy `HYTLBTR1` file.
#[derive(Debug)]
pub struct LegacyReader<R: Read> {
    src: R,
    workload: String,
    footprint_pages: u64,
    seed: u64,
    declared: u64,
    yielded: u64,
    buf: [u8; 8192],
    buf_len: usize,
    buf_pos: usize,
    failed: bool,
}

impl<R: Read> LegacyReader<R> {
    /// Opens a legacy stream, consuming and validating the magic and
    /// header. The declared header length is bounded at 1 MiB so a
    /// corrupt prefix cannot drive a giant allocation.
    pub fn new(mut src: R) -> Result<Self> {
        let mut magic = [0u8; 8];
        src.read_exact(&mut magic)?;
        if magic == crate::format::FILE_MAGIC {
            return Err(TraceFileError::UnsupportedVersion { found: 2 });
        }
        if magic != LEGACY_MAGIC {
            return Err(TraceFileError::corrupt("file magic", "not a HYTLBTR1 trace file"));
        }
        let mut len_bytes = [0u8; 4];
        src.read_exact(&mut len_bytes)?;
        let header_len = u32::from_le_bytes(len_bytes);
        if header_len > MAX_HEADER_BYTES {
            return Err(TraceFileError::corrupt(
                "header",
                format!("declared length {header_len} exceeds the 1 MiB bound"),
            ));
        }
        let mut json = vec![0u8; header_len as usize];
        src.read_exact(&mut json)?;
        let text = std::str::from_utf8(&json)
            .map_err(|_| TraceFileError::corrupt("header", "header is not UTF-8"))?;
        let header: LegacyHeader = serde_json::from_str(text)
            .map_err(|e| TraceFileError::corrupt("header", format!("bad JSON: {e}")))?;
        Ok(LegacyReader {
            src,
            workload: header.workload,
            footprint_pages: header.footprint_pages,
            seed: header.seed,
            declared: header.accesses,
            yielded: 0,
            buf: [0u8; 8192],
            buf_len: 0,
            buf_pos: 0,
            failed: false,
        })
    }

    /// Workload label from the header.
    #[must_use]
    pub fn workload(&self) -> &str {
        &self.workload
    }

    /// Footprint in pages from the header.
    #[must_use]
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Generator seed from the header.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Accesses the header declares (the payload may disagree; the
    /// iterator errors if it runs short).
    #[must_use]
    pub fn declared_accesses(&self) -> u64 {
        self.declared
    }

    /// v2 metadata equivalent to this legacy header.
    #[must_use]
    pub fn meta(&self) -> TraceMeta {
        TraceMeta::new(self.workload.clone(), self.footprint_pages, self.seed)
    }

    fn refill(&mut self) -> std::io::Result<usize> {
        self.buf_pos = 0;
        self.buf_len = 0;
        // Fill as much of the buffer as the source will give, so the
        // tail can be checked for 8-byte alignment.
        while self.buf_len < self.buf.len() {
            let n = self.src.read(&mut self.buf[self.buf_len..])?;
            if n == 0 {
                break;
            }
            self.buf_len += n;
        }
        Ok(self.buf_len)
    }
}

impl<R: Read> Iterator for LegacyReader<R> {
    type Item = Result<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.yielded >= self.declared {
            return None;
        }
        if self.buf_pos + 8 > self.buf_len {
            let leftover = self.buf_len - self.buf_pos;
            match self.refill() {
                Ok(0) => {
                    self.failed = true;
                    let detail = if leftover == 0 {
                        format!(
                            "payload ends after {} of {} declared accesses",
                            self.yielded, self.declared
                        )
                    } else {
                        "payload is not a whole number of u64s".into()
                    };
                    return Some(Err(TraceFileError::corrupt("legacy payload", detail)));
                }
                Ok(_) => {}
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e.into()));
                }
            }
        }
        let chunk = &self.buf[self.buf_pos..self.buf_pos + 8];
        self.buf_pos += 8;
        self.yielded += 1;
        Some(Ok(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))))
    }
}

/// What [`convert`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertSummary {
    /// Totals of the v2 file written.
    pub written: WriteSummary,
    /// Size of the legacy payload alone (`8 × accesses`), for ratio
    /// reporting.
    pub legacy_payload_bytes: u64,
}

/// Streams a legacy `HYTLBTR1` file into a v2 `HYTLBTR2` file, block
/// size taken from `block_accesses` (`None` → default). Memory stays
/// bounded at one block regardless of trace size.
pub fn convert<R: Read, W: std::io::Write>(
    legacy: R,
    sink: W,
    block_accesses: Option<u32>,
) -> Result<ConvertSummary> {
    let mut reader = LegacyReader::new(legacy)?;
    let mut meta = reader.meta();
    if let Some(block) = block_accesses {
        meta.block_accesses = block;
    }
    let mut writer = TraceWriter::new(sink, &meta)?;
    for address in reader.by_ref() {
        writer.push(address?)?;
    }
    let written = writer.finish()?;
    Ok(ConvertSummary { written, legacy_payload_bytes: written.accesses * 8 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TraceReader;

    /// Builds a v1 file by hand (magic + len + JSON + raw u64s), so the
    /// tests don't depend on `hytlb_trace::io` internals.
    fn legacy_bytes(workload: &str, accesses: &[u64]) -> Vec<u8> {
        let json = format!(
            "{{\"workload\":\"{workload}\",\"footprint_pages\":4096,\"accesses\":{},\"seed\":9}}",
            accesses.len()
        );
        let mut out = Vec::new();
        out.extend_from_slice(&LEGACY_MAGIC);
        out.extend_from_slice(&(json.len() as u32).to_le_bytes());
        out.extend_from_slice(json.as_bytes());
        for a in accesses {
            out.extend_from_slice(&a.to_le_bytes());
        }
        out
    }

    #[test]
    fn legacy_reader_streams_the_payload() {
        let addresses: Vec<u64> = (0..3000u64).map(|i| i * 4096 + i % 4096).collect();
        let bytes = legacy_bytes("gups", &addresses);
        let reader = LegacyReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.workload(), "gups");
        assert_eq!(reader.footprint_pages(), 4096);
        assert_eq!(reader.seed(), 9);
        assert_eq!(reader.declared_accesses(), 3000);
        let back: Result<Vec<u64>> = reader.collect();
        assert_eq!(back.unwrap(), addresses);
    }

    #[test]
    fn truncated_legacy_payload_errors() {
        let addresses: Vec<u64> = (0..100u64).map(|i| i * 8).collect();
        let mut bytes = legacy_bytes("mcf", &addresses);
        bytes.truncate(bytes.len() - 20); // 2.5 accesses short
        let reader = LegacyReader::new(&bytes[..]).unwrap();
        let result: Result<Vec<u64>> = reader.collect();
        assert!(result.unwrap_err().is_corrupt());
    }

    #[test]
    fn oversized_legacy_header_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LEGACY_MAGIC);
        bytes.extend_from_slice(&(MAX_HEADER_BYTES + 1).to_le_bytes());
        let err = LegacyReader::new(&bytes[..]).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn v2_magic_is_reported_as_wrong_version() {
        let bytes = b"HYTLBTR2rest";
        match LegacyReader::new(&bytes[..]) {
            Err(TraceFileError::UnsupportedVersion { found: 2 }) => {}
            other => panic!("expected UnsupportedVersion {{ 2 }}, got {other:?}"),
        }
    }

    #[test]
    fn convert_roundtrips_and_shrinks() {
        // Page-local walk: v2 should be much smaller than 8 B/access.
        let addresses: Vec<u64> = (0..5000u64).map(|i| (i / 7) * 4096 + (i * 131) % 4096).collect();
        let legacy = legacy_bytes("graph500", &addresses);
        let mut v2 = Vec::new();
        let summary = convert(&legacy[..], &mut v2, Some(512)).unwrap();
        assert_eq!(summary.written.accesses, 5000);
        assert_eq!(summary.legacy_payload_bytes, 5000 * 8);
        assert!(summary.written.bytes < summary.legacy_payload_bytes / 2);

        let reader = TraceReader::new(&v2[..]).unwrap();
        assert_eq!(reader.meta().workload, "graph500");
        assert_eq!(reader.meta().footprint_pages, 4096);
        assert_eq!(reader.meta().seed, 9);
        let back: Result<Vec<u64>> = reader.addresses().collect();
        assert_eq!(back.unwrap(), addresses);
    }
}
