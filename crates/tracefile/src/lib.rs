//! Compressed, seekable, streaming trace files: the `HYTLBTR2` format.
//!
//! The paper's methodology is capture-then-replay: memory traces are
//! recorded once and re-run against many mapping scenarios. Raw traces
//! are 8 bytes per access; at the paper's billions of accesses that is
//! tens of gigabytes per workload. This crate stores them compressed
//! and verifiable:
//!
//! * **Block codec** ([`block`]) — addresses are split into a page
//!   number and a 12-bit page offset. Page *deltas* are zig-zag mapped
//!   and bit-packed with two per-block-optimized widths (a flag bit
//!   marks same-page runs); offsets, which are uniformly random for
//!   every generator, are stored as raw 12-bit fields — they are
//!   incompressible, and pretending otherwise only adds overhead. A
//!   byte-aligned LEB128 varint encoding is kept as a per-block
//!   fallback for streams the bit-packer handles poorly.
//! * **Blocks are independent** — each carries its first address
//!   absolutely plus a CRC-32, so one block decodes without its
//!   predecessors and corruption is localized.
//! * **Seek index + footer** — a trailing index maps access ranges to
//!   block offsets; the fixed-size footer at EOF finds it in two
//!   seeks. `info` never decodes a block; `read_range` touches only
//!   the blocks that overlap.
//! * **Streaming both ways** — [`TraceWriter`] buffers one block;
//!   [`TraceReader`] decodes one block at a time. Memory is bounded by
//!   the block size (64 Ki accesses by default), not the trace.
//! * **Corpus store** ([`store`]) — a directory keyed by
//!   (workload, footprint, seed) with a JSON manifest, which
//!   `hytlb_sim::MatrixCache` can replay from instead of regenerating.
//!
//! The legacy `HYTLBTR1` format (JSON header + raw u64s) is readable
//! via [`legacy`] and convertible with `hytlb-tracectl convert`.
//!
//! # Examples
//!
//! ```
//! use hytlb_tracefile::{TraceMeta, TraceReader, TraceWriter};
//!
//! let mut bytes = Vec::new();
//! let mut writer = TraceWriter::new(&mut bytes, &TraceMeta::new("gups", 1024, 42)).unwrap();
//! writer.extend((0..1000u64).map(|i| (i % 64) * 4096 + i)).unwrap();
//! let summary = writer.finish().unwrap();
//! assert_eq!(summary.accesses, 1000);
//! assert!(summary.compression_ratio() > 1.0);
//!
//! let reader = TraceReader::new(&bytes[..]).unwrap();
//! let replayed: Result<Vec<u64>, _> = reader.addresses().collect();
//! assert_eq!(replayed.unwrap().len(), 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod crc32;
pub mod error;
pub mod format;
pub mod legacy;
pub mod reader;
pub mod store;
pub mod varint;
pub mod writer;

pub use error::{Result, TraceFileError};
pub use format::{TraceInfo, TraceMeta, FILE_MAGIC, FORMAT_VERSION};
pub use legacy::{convert, ConvertSummary, LegacyReader, LEGACY_MAGIC};
pub use reader::{verify, DecodedBlock, TraceFile, TraceReader, VerifyReport};
pub use store::{CorpusEntry, TraceStore};
pub use writer::{TraceWriter, WriteSummary};
