//! Reading `HYTLBTR2` files three ways: streaming block-at-a-time
//! ([`TraceReader`]), seekable random access ([`TraceFile`]) and full
//! integrity checking ([`verify`]).
//!
//! The streaming reader holds one decoded block at a time, so replaying
//! a multi-gigabyte trace needs memory proportional to the block size,
//! not the trace. The seekable reader uses the trailing index to answer
//! `info` without decoding anything and to land on any access in one
//! seek.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::block::{RawBlock, BLOCK_MAGIC};
use crate::error::{Result, TraceFileError};
use crate::format::{
    parse_footer, read_header, read_index_body, Footer, IndexEntry, TraceInfo, TraceMeta,
    FOOTER_BYTES, INDEX_ENTRY_BYTES, INDEX_MAGIC,
};

/// One decoded block and where it sits in the access stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedBlock {
    /// Global index of the first access in this block.
    pub first_access: u64,
    /// The decoded addresses.
    pub addresses: Vec<u64>,
}

// ---------------------------------------------------------------------
// Streaming reader.

/// Streaming reader: yields blocks in file order with bounded memory.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    meta: TraceMeta,
    next_access: u64,
    ordinal: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream, consuming and validating the magic and header.
    pub fn new(mut src: R) -> Result<Self> {
        let (meta, _) = read_header(&mut src)?;
        Ok(TraceReader { src, meta, next_access: 0, ordinal: 0, done: false })
    }

    /// Header metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Decodes the next block, or `None` once the block region ends
    /// (at the seek index, or at EOF for a file whose writer never
    /// finished — use [`verify`] to reject such files).
    pub fn next_block(&mut self) -> Result<Option<DecodedBlock>> {
        if self.done {
            return Ok(None);
        }
        let Some(magic) = read_record_magic(&mut self.src)? else {
            self.done = true;
            return Ok(None);
        };
        if magic == INDEX_MAGIC {
            self.done = true;
            return Ok(None);
        }
        if magic != BLOCK_MAGIC {
            self.done = true;
            return Err(TraceFileError::corrupt(
                format!("block {}", self.ordinal),
                format!("bad record magic {magic:02x?}"),
            ));
        }
        let raw = RawBlock::parse(&mut self.src, self.ordinal).inspect_err(|_| self.done = true)?;
        let addresses = raw.decode().inspect_err(|_| self.done = true)?;
        let first_access = self.next_access;
        self.next_access += addresses.len() as u64;
        self.ordinal += 1;
        Ok(Some(DecodedBlock { first_access, addresses }))
    }

    /// Consumes the reader into an iterator over individual addresses.
    /// The iterator yields `Err` once on the first corrupt block, then
    /// ends.
    #[must_use]
    pub fn addresses(self) -> Addresses<R> {
        Addresses { reader: self, current: Vec::new().into_iter(), failed: false }
    }
}

/// Iterator over every address of a streamed trace file.
#[derive(Debug)]
pub struct Addresses<R: Read> {
    reader: TraceReader<R>,
    current: std::vec::IntoIter<u64>,
    failed: bool,
}

impl<R: Read> Iterator for Addresses<R> {
    type Item = Result<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if let Some(address) = self.current.next() {
                return Some(Ok(address));
            }
            match self.reader.next_block() {
                Ok(Some(block)) => self.current = block.addresses.into_iter(),
                Ok(None) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Reads a 4-byte record magic, distinguishing clean EOF (no bytes at
/// all → `None`) from truncation inside the magic (an error).
fn read_record_magic<R: Read>(src: &mut R) -> Result<Option<[u8; 4]>> {
    let mut magic = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = src.read(&mut magic[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(TraceFileError::corrupt("stream", "truncated record magic"));
        }
        got += n;
    }
    Ok(Some(magic))
}

// ---------------------------------------------------------------------
// Seekable reader.

/// Random-access reader over a finished trace file on disk.
///
/// Opening reads only the header, footer and seek index; blocks are
/// decoded on demand. Every block read cross-checks the index entry it
/// came from, so a stale index (index rewritten without its blocks, or
/// vice versa) surfaces as corruption instead of wrong data.
#[derive(Debug)]
pub struct TraceFile {
    file: File,
    meta: TraceMeta,
    index: Vec<IndexEntry>,
    footer: Footer,
    file_bytes: u64,
}

impl TraceFile {
    /// Opens `path`, validating header, footer and seek index.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = File::open(path.as_ref())?;
        let file_bytes = file.metadata()?.len();
        let (meta, header_bytes) = read_header(&mut file)?;
        if file_bytes < header_bytes + FOOTER_BYTES {
            return Err(TraceFileError::corrupt("file", "too short to hold a footer"));
        }
        file.seek(SeekFrom::End(-(FOOTER_BYTES as i64)))?;
        let mut footer_bytes = [0u8; FOOTER_BYTES as usize];
        file.read_exact(&mut footer_bytes)?;
        let footer = parse_footer(&footer_bytes)?;
        if footer.index_offset < header_bytes || footer.index_offset >= file_bytes {
            return Err(TraceFileError::corrupt("footer", "index offset outside the file"));
        }
        file.seek(SeekFrom::Start(footer.index_offset))?;
        let Some(magic) = read_record_magic(&mut file)? else {
            return Err(TraceFileError::corrupt("seek index", "index offset points at EOF"));
        };
        if magic != INDEX_MAGIC {
            return Err(TraceFileError::corrupt("seek index", "index offset points at non-index"));
        }
        let max_entries = file_bytes / INDEX_ENTRY_BYTES + 1;
        let index = read_index_body(&mut file, max_entries)?;
        if index.len() as u64 != footer.blocks {
            return Err(TraceFileError::corrupt(
                "seek index",
                format!("{} entries but footer counts {} blocks", index.len(), footer.blocks),
            ));
        }
        let counted: u64 = index.iter().map(|e| u64::from(e.count)).sum();
        if counted != footer.accesses {
            return Err(TraceFileError::corrupt(
                "seek index",
                format!("entries sum to {counted} accesses but footer counts {}", footer.accesses),
            ));
        }
        Ok(TraceFile { file, meta, index, footer, file_bytes })
    }

    /// Header metadata.
    #[must_use]
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Total accesses in the file.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.footer.accesses
    }

    /// Total blocks in the file.
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.footer.blocks
    }

    /// Everything `hytlb-tracectl info` prints, gathered without
    /// decoding a single block.
    #[must_use]
    pub fn info(&self) -> TraceInfo {
        let raw = self.footer.accesses * 8;
        TraceInfo {
            workload: self.meta.workload.clone(),
            footprint_pages: self.meta.footprint_pages,
            seed: self.meta.seed,
            block_accesses: self.meta.block_accesses,
            accesses: self.footer.accesses,
            blocks: self.footer.blocks,
            file_bytes: self.file_bytes,
            compression_ratio: if self.file_bytes == 0 {
                0.0
            } else {
                raw as f64 / self.file_bytes as f64
            },
        }
    }

    /// Decodes block `ordinal`, cross-checking it against its index
    /// entry.
    pub fn block(&mut self, ordinal: u64) -> Result<DecodedBlock> {
        let entry =
            *self.index.get(usize::try_from(ordinal).unwrap_or(usize::MAX)).ok_or_else(|| {
                TraceFileError::Store {
                    detail: format!(
                        "block {ordinal} out of range (file has {})",
                        self.footer.blocks
                    ),
                }
            })?;
        self.file.seek(SeekFrom::Start(entry.offset))?;
        let Some(magic) = read_record_magic(&mut self.file)? else {
            return Err(TraceFileError::corrupt("seek index", "entry offset points at EOF"));
        };
        if magic != BLOCK_MAGIC {
            return Err(TraceFileError::corrupt(
                "seek index",
                format!("entry {ordinal} does not point at a block"),
            ));
        }
        let raw = RawBlock::parse(&mut self.file, ordinal)?;
        if raw.count != entry.count || raw.first != entry.first_address {
            return Err(TraceFileError::corrupt(
                "seek index",
                format!("entry {ordinal} disagrees with the block it points at (stale index)"),
            ));
        }
        let addresses = raw.decode()?;
        Ok(DecodedBlock { first_access: entry.first_access, addresses })
    }

    /// Reads accesses `[start, start + len)` using the index to touch
    /// only the blocks that overlap the range.
    pub fn read_range(&mut self, start: u64, len: u64) -> Result<Vec<u64>> {
        let end = start
            .checked_add(len)
            .ok_or_else(|| TraceFileError::Store { detail: "access range overflows".into() })?;
        if end > self.footer.accesses {
            return Err(TraceFileError::Store {
                detail: format!(
                    "range {start}..{end} out of bounds (file has {} accesses)",
                    self.footer.accesses
                ),
            });
        }
        let mut out = Vec::with_capacity(usize::try_from(len).unwrap_or(0));
        if len == 0 {
            return Ok(out);
        }
        // Last block whose first access is ≤ start.
        let first_block = self.index.partition_point(|e| e.first_access <= start) - 1;
        for ordinal in first_block as u64..self.footer.blocks {
            let block = self.block(ordinal)?;
            if block.first_access >= end {
                break;
            }
            let skip = start.saturating_sub(block.first_access);
            let take = (end - block.first_access).min(block.addresses.len() as u64) - skip;
            let skip = usize::try_from(skip).unwrap_or(usize::MAX);
            let take = usize::try_from(take).unwrap_or(usize::MAX);
            out.extend_from_slice(&block.addresses[skip..skip + take]);
        }
        Ok(out)
    }

    /// Reads the first `n` accesses.
    pub fn read_prefix(&mut self, n: u64) -> Result<Vec<u64>> {
        self.read_range(0, n)
    }
}

// ---------------------------------------------------------------------
// Verification.

/// What [`verify`] checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Blocks decoded and CRC-checked.
    pub blocks: u64,
    /// Accesses across all blocks.
    pub accesses: u64,
    /// Total bytes of the file.
    pub bytes: u64,
}

struct CountingReader<R> {
    inner: R,
    consumed: u64,
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n as u64;
        Ok(n)
    }
}

/// Fully checks a trace file stream: every block's CRC and payload
/// decode, the seek index against the blocks actually present, and the
/// footer totals. Detects truncation (missing index/footer), bit flips
/// anywhere, a stale index and trailing garbage.
pub fn verify<R: Read>(src: R) -> Result<VerifyReport> {
    let mut src = CountingReader { inner: src, consumed: 0 };
    let (_, _) = read_header(&mut src)?;
    let mut actual: Vec<IndexEntry> = Vec::new();
    let mut accesses = 0u64;
    loop {
        let record_offset = src.consumed;
        let Some(magic) = read_record_magic(&mut src)? else {
            return Err(TraceFileError::corrupt(
                "file",
                "ends before the seek index (truncated or writer never finished)",
            ));
        };
        if magic == INDEX_MAGIC {
            let stored = read_index_body(&mut src, actual.len() as u64)?;
            if stored != actual {
                return Err(TraceFileError::corrupt(
                    "seek index",
                    "index disagrees with the blocks present (stale index)",
                ));
            }
            let mut footer_bytes = [0u8; FOOTER_BYTES as usize];
            src.read_exact(&mut footer_bytes)?;
            let footer = parse_footer(&footer_bytes)?;
            if footer.index_offset != record_offset {
                return Err(TraceFileError::corrupt("footer", "index offset disagrees"));
            }
            if footer.blocks != actual.len() as u64 || footer.accesses != accesses {
                return Err(TraceFileError::corrupt("footer", "totals disagree with the blocks"));
            }
            let mut trailing = [0u8; 1];
            if src.read(&mut trailing)? != 0 {
                return Err(TraceFileError::corrupt("file", "trailing bytes after the footer"));
            }
            return Ok(VerifyReport { blocks: footer.blocks, accesses, bytes: src.consumed });
        }
        if magic != BLOCK_MAGIC {
            return Err(TraceFileError::corrupt(
                format!("block {}", actual.len()),
                format!("bad record magic {magic:02x?}"),
            ));
        }
        let raw = RawBlock::parse(&mut src, actual.len() as u64)?;
        let decoded = raw.decode()?;
        actual.push(IndexEntry {
            offset: record_offset,
            first_access: accesses,
            first_address: raw.first,
            count: raw.count,
        });
        accesses += decoded.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    fn sample_file(block_accesses: u32, addresses: &[u64]) -> Vec<u8> {
        let mut meta = TraceMeta::new("mcf", 1 << 10, 3);
        meta.block_accesses = block_accesses;
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, &meta).unwrap();
        writer.extend(addresses.iter().copied()).unwrap();
        writer.finish().unwrap();
        out
    }

    fn sample_addresses(n: u64) -> Vec<u64> {
        // A mix of same-page runs, short jumps and a long jump.
        (0..n)
            .map(|i| (i / 3) * 4096 + (i * 97) % 4096 + if i % 11 == 0 { 1 << 30 } else { 0 })
            .collect()
    }

    #[test]
    fn streaming_reader_replays_exactly() {
        let addresses = sample_addresses(100);
        let bytes = sample_file(16, &addresses);
        let reader = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.meta().workload, "mcf");
        let replayed: Result<Vec<u64>> = reader.addresses().collect();
        assert_eq!(replayed.unwrap(), addresses);
    }

    #[test]
    fn streaming_reader_reports_block_positions() {
        let addresses = sample_addresses(40);
        let bytes = sample_file(16, &addresses);
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut firsts = Vec::new();
        while let Some(block) = reader.next_block().unwrap() {
            firsts.push((block.first_access, block.addresses.len()));
        }
        assert_eq!(firsts, vec![(0, 16), (16, 16), (32, 8)]);
    }

    #[test]
    fn verify_accepts_clean_files_and_counts() {
        let addresses = sample_addresses(50);
        let bytes = sample_file(8, &addresses);
        let report = verify(&bytes[..]).unwrap();
        assert_eq!(report.accesses, 50);
        assert_eq!(report.blocks, 7);
        assert_eq!(report.bytes, bytes.len() as u64);
    }

    #[test]
    fn verify_rejects_truncation_at_every_length() {
        let bytes = sample_file(8, &sample_addresses(20));
        // Chop the file at a spread of lengths; none may verify.
        for cut in [bytes.len() - 1, bytes.len() - 36, bytes.len() / 2, 13] {
            let err = verify(&bytes[..cut]).unwrap_err();
            assert!(err.is_corrupt(), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn verify_rejects_any_flipped_bit_region() {
        let bytes = sample_file(8, &sample_addresses(30));
        let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let blocks_start = 12 + header_len as usize;
        // One flip in the block region, one in the index, one in the footer.
        for pos in [blocks_start + 30, bytes.len() - 50, bytes.len() - 10] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x04;
            assert!(verify(&bad[..]).is_err(), "flip at {pos} went undetected");
        }
    }

    #[test]
    fn tracefile_opens_and_seeks() {
        let addresses = sample_addresses(100);
        let bytes = sample_file(16, &addresses);
        let dir = std::env::temp_dir().join(format!("hytlb_reader_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seek.htr2");
        std::fs::write(&path, &bytes).unwrap();

        let mut tf = TraceFile::open(&path).unwrap();
        assert_eq!(tf.accesses(), 100);
        assert_eq!(tf.blocks(), 7);
        let info = tf.info();
        assert_eq!(info.workload, "mcf");
        assert_eq!(info.file_bytes, bytes.len() as u64);
        assert!(info.compression_ratio > 1.0);

        assert_eq!(tf.read_prefix(10).unwrap(), addresses[..10]);
        assert_eq!(tf.read_range(15, 20).unwrap(), addresses[15..35]);
        assert_eq!(tf.read_range(99, 1).unwrap(), addresses[99..]);
        assert_eq!(tf.read_range(100, 0).unwrap(), Vec::<u64>::new());
        assert!(tf.read_range(95, 10).is_err());
        assert_eq!(tf.block(6).unwrap().addresses, addresses[96..]);
        assert!(tf.block(7).is_err());

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tracefile_rejects_missing_footer() {
        let bytes = sample_file(16, &sample_addresses(20));
        let dir = std::env::temp_dir().join(format!("hytlb_reader_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("nofooter.htr2");
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        let err = TraceFile::open(&path).unwrap_err();
        assert!(err.is_corrupt(), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
