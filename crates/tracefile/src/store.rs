//! `TraceStore`: a directory of recorded traces keyed by
//! (workload, footprint, seed), with a JSON corpus manifest.
//!
//! Layout:
//!
//! ```text
//! <root>/manifest.json                   — corpus manifest (sorted entries)
//! <root>/<workload>/fp<pages>-s<seed>.htr2
//! ```
//!
//! The manifest is the source of truth for lookups; the per-file
//! header repeats the key so a stray `.htr2` file is still
//! self-describing. Recording rewrites the manifest atomically
//! (write-new + rename), so a crash mid-record leaves the previous
//! manifest intact.

use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::error::{Result, TraceFileError};
use crate::format::TraceMeta;
use crate::reader::TraceFile;
use crate::writer::{TraceWriter, WriteSummary};

/// Manifest schema version.
const MANIFEST_VERSION: u32 = 1;

/// One recorded trace in the corpus.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CorpusEntry {
    /// Workload label.
    pub workload: String,
    /// Footprint in 4 KiB pages.
    pub footprint_pages: u64,
    /// Generator seed.
    pub seed: u64,
    /// Accesses recorded.
    pub accesses: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Path of the trace file, relative to the store root.
    pub path: String,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct Manifest {
    version: u32,
    entries: Vec<CorpusEntry>,
}

/// A directory of recorded traces plus its manifest.
#[derive(Debug)]
pub struct TraceStore {
    root: PathBuf,
    entries: Vec<CorpusEntry>,
}

impl TraceStore {
    /// Opens the store at `root`, creating the directory and an empty
    /// manifest if nothing is there yet.
    pub fn open_or_create(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let manifest_path = root.join("manifest.json");
        let entries = if manifest_path.exists() {
            let text = fs::read_to_string(&manifest_path)?;
            let manifest: Manifest = serde_json::from_str(&text).map_err(|e| {
                TraceFileError::Store { detail: format!("manifest.json is unreadable: {e}") }
            })?;
            if manifest.version != MANIFEST_VERSION {
                return Err(TraceFileError::Store {
                    detail: format!("manifest version {} not supported", manifest.version),
                });
            }
            manifest.entries
        } else {
            Vec::new()
        };
        Ok(TraceStore { root, entries })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All entries, in manifest order (sorted by key).
    #[must_use]
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Looks up the entry for `(workload, footprint_pages, seed)`.
    #[must_use]
    pub fn find(&self, workload: &str, footprint_pages: u64, seed: u64) -> Option<&CorpusEntry> {
        self.entries.iter().find(|e| {
            e.workload == workload && e.footprint_pages == footprint_pages && e.seed == seed
        })
    }

    /// Records `addresses` as a new trace, replacing any existing entry
    /// with the same key, and rewrites the manifest.
    pub fn record(
        &mut self,
        workload: &str,
        footprint_pages: u64,
        seed: u64,
        addresses: impl IntoIterator<Item = u64>,
    ) -> Result<WriteSummary> {
        self.record_with_block(workload, footprint_pages, seed, None, addresses)
    }

    /// [`TraceStore::record`] with an explicit block size (`None` →
    /// default).
    pub fn record_with_block(
        &mut self,
        workload: &str,
        footprint_pages: u64,
        seed: u64,
        block_accesses: Option<u32>,
        addresses: impl IntoIterator<Item = u64>,
    ) -> Result<WriteSummary> {
        let relative = format!("{workload}/fp{footprint_pages}-s{seed}.htr2");
        let full = self.root.join(&relative);
        if let Some(parent) = full.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut meta = TraceMeta::new(workload, footprint_pages, seed);
        if let Some(block) = block_accesses {
            meta.block_accesses = block;
        }
        let mut writer = TraceWriter::new(BufWriter::new(File::create(&full)?), &meta)?;
        writer.extend(addresses)?;
        let summary = writer.finish()?;
        self.entries.retain(|e| {
            !(e.workload == workload && e.footprint_pages == footprint_pages && e.seed == seed)
        });
        self.entries.push(CorpusEntry {
            workload: workload.to_string(),
            footprint_pages,
            seed,
            accesses: summary.accesses,
            bytes: summary.bytes,
            path: relative,
        });
        self.entries.sort_by(|a, b| {
            (&a.workload, a.footprint_pages, a.seed).cmp(&(&b.workload, b.footprint_pages, b.seed))
        });
        self.save_manifest()?;
        Ok(summary)
    }

    /// Opens the trace file behind `entry` for random access.
    pub fn open_trace(&self, entry: &CorpusEntry) -> Result<TraceFile> {
        TraceFile::open(self.root.join(&entry.path))
    }

    /// Loads the first `accesses` addresses of the recorded trace for
    /// the key, or `None` when the corpus has no long-enough recording.
    /// Generators are deterministic streams, so the prefix of a longer
    /// recording is bit-identical to a shorter generation.
    pub fn load_prefix(
        &self,
        workload: &str,
        footprint_pages: u64,
        seed: u64,
        accesses: u64,
    ) -> Result<Option<Vec<u64>>> {
        let Some(entry) = self.find(workload, footprint_pages, seed) else {
            return Ok(None);
        };
        if entry.accesses < accesses {
            return Ok(None);
        }
        let mut file = self.open_trace(entry)?;
        if file.meta().workload != workload
            || file.meta().footprint_pages != footprint_pages
            || file.meta().seed != seed
        {
            return Err(TraceFileError::Store {
                detail: format!("{}: file header disagrees with the manifest", entry.path),
            });
        }
        file.read_prefix(accesses).map(Some)
    }

    fn save_manifest(&self) -> Result<()> {
        let manifest = Manifest { version: MANIFEST_VERSION, entries: self.entries.clone() };
        let text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| TraceFileError::Store { detail: format!("manifest serialize: {e}") })?;
        let tmp = self.root.join("manifest.json.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.write_all(b"\n")?;
        }
        fs::rename(&tmp, self.root.join("manifest.json"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hytlb_store_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn walk(n: u64) -> Vec<u64> {
        (0..n).map(|i| (i / 5) * 4096 + (i * 37) % 4096).collect()
    }

    #[test]
    fn record_find_load_roundtrip() {
        let root = scratch_store("roundtrip");
        let mut store = TraceStore::open_or_create(&root).unwrap();
        assert!(store.find("gups", 512, 7).is_none());

        let addresses = walk(1000);
        let summary = store.record("gups", 512, 7, addresses.iter().copied()).unwrap();
        assert_eq!(summary.accesses, 1000);

        let entry = store.find("gups", 512, 7).expect("recorded entry");
        assert_eq!(entry.accesses, 1000);
        assert_eq!(entry.path, "gups/fp512-s7.htr2");
        assert!(root.join(&entry.path).exists());

        assert_eq!(store.load_prefix("gups", 512, 7, 1000).unwrap().unwrap(), addresses);
        assert_eq!(store.load_prefix("gups", 512, 7, 100).unwrap().unwrap(), addresses[..100]);
        assert!(store.load_prefix("gups", 512, 7, 1001).unwrap().is_none(), "too short");
        assert!(store.load_prefix("gups", 512, 8, 10).unwrap().is_none(), "wrong seed");

        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn manifest_survives_reopen_and_rerecord_replaces() {
        let root = scratch_store("reopen");
        let mut store = TraceStore::open_or_create(&root).unwrap();
        store.record("mcf", 256, 1, walk(50)).unwrap();
        store.record("gups", 512, 2, walk(60)).unwrap();
        drop(store);

        let mut store = TraceStore::open_or_create(&root).unwrap();
        assert_eq!(store.entries().len(), 2);
        // Entries are sorted by key: gups before mcf.
        assert_eq!(store.entries()[0].workload, "gups");

        store.record("mcf", 256, 1, walk(80)).unwrap();
        assert_eq!(store.entries().len(), 2, "re-record replaces, not duplicates");
        assert_eq!(store.find("mcf", 256, 1).unwrap().accesses, 80);

        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_manifest_is_a_store_error() {
        let root = scratch_store("badmanifest");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("manifest.json"), b"not json").unwrap();
        let err = TraceStore::open_or_create(&root).unwrap_err();
        assert!(matches!(err, TraceFileError::Store { .. }), "{err}");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn header_manifest_disagreement_is_detected() {
        let root = scratch_store("disagree");
        let mut store = TraceStore::open_or_create(&root).unwrap();
        store.record("gups", 512, 7, walk(40)).unwrap();
        store.record("mcf", 512, 7, walk(40)).unwrap();
        // Swap the two files on disk behind the manifest's back.
        let a = root.join("gups/fp512-s7.htr2");
        let b = root.join("mcf/fp512-s7.htr2");
        let tmp = root.join("swap.tmp");
        fs::rename(&a, &tmp).unwrap();
        fs::rename(&b, &a).unwrap();
        fs::rename(&tmp, &b).unwrap();

        let err = store.load_prefix("gups", 512, 7, 10).unwrap_err();
        assert!(matches!(err, TraceFileError::Store { .. }), "{err}");
        fs::remove_dir_all(&root).ok();
    }
}
