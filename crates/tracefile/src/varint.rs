//! LEB128 varints and zig-zag signed↔unsigned mapping.
//!
//! The `HYTLBTR2` block codec stores address deltas zig-zag-mapped so
//! that small negative and positive jumps both become small unsigned
//! values, then either bit-packs them (see [`crate::block`]) or, for
//! blocks where byte-aligned codes win, writes them as LEB128 varints.

/// Maximum encoded length of a `u64` varint (⌈64 / 7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 10;

/// Maps a signed delta to an unsigned value with small magnitudes first:
/// `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[must_use]
#[inline]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[must_use]
#[inline]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends `value` to `out` as a LEB128 varint (7 bits per byte, high
/// bit = continuation). Returns the number of bytes written.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// The encoded length of `value` as a varint, without encoding it.
#[must_use]
#[inline]
pub fn varint_len(value: u64) -> usize {
    // 1 byte per started 7-bit group; `value == 0` still takes one byte.
    ((64 - (value | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Reads one varint from `bytes` starting at `*pos`, advancing `*pos`.
/// Returns `None` on truncation or on an overlong encoding (more than
/// [`MAX_VARINT_LEN`] bytes, or bits beyond the 64th).
#[must_use]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return None; // would overflow 64 bits
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_orders_by_magnitude() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, i64::MAX - 1, i64::MIN + 1] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v, "{v}");
        }
    }

    #[test]
    fn varint_roundtrips_and_lengths() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::from(u32::MAX), u64::MAX] {
            let mut buf = Vec::new();
            let written = write_varint(&mut buf, v);
            assert_eq!(written, buf.len());
            assert_eq!(varint_len(v), buf.len(), "{v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_and_overlong_varints_are_rejected() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80, 0x80], &mut pos), None); // truncated
        let overlong = [0xffu8; 11];
        pos = 0;
        assert_eq!(read_varint(&overlong, &mut pos), None); // > 64 bits
    }

    #[test]
    fn boundary_lengths() {
        assert_eq!(varint_len(0), 1);
        assert_eq!(varint_len((1 << 7) - 1), 1);
        assert_eq!(varint_len(1 << 7), 2);
        assert_eq!(varint_len((1 << 63) - 1), 9);
        assert_eq!(varint_len(1 << 63), 10);
        assert_eq!(varint_len(u64::MAX), MAX_VARINT_LEN);
    }
}
