//! Streaming `HYTLBTR2` writer with bounded memory.
//!
//! [`TraceWriter`] buffers at most one block of addresses (64 Ki by
//! default); each full block is delta-encoded, CRC-stamped and written
//! as a single `write_all`, so a raw `File` sink performs fine without
//! an extra `BufWriter`. [`TraceWriter::finish`] appends the seek index
//! and footer — a file missing them is one whose writer died, and
//! [`crate::reader::verify`] reports it as truncated.

use std::io::Write;

use crate::block::{encode_block, MAX_BLOCK_ACCESSES};
use crate::error::{Result, TraceFileError};
use crate::format::{encode_footer, encode_header, encode_index, Footer, IndexEntry, TraceMeta};

/// Totals reported by [`TraceWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Addresses written.
    pub accesses: u64,
    /// Blocks written.
    pub blocks: u64,
    /// Total file size in bytes, header and footer included.
    pub bytes: u64,
}

impl WriteSummary {
    /// The size the same trace occupies as raw little-endian u64s (the
    /// payload of the legacy v1 format).
    #[must_use]
    pub fn raw_bytes(&self) -> u64 {
        self.accesses * 8
    }

    /// How much smaller the file is than raw u64s (`> 1` is smaller).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes == 0 {
            return 0.0;
        }
        self.raw_bytes() as f64 / self.bytes as f64
    }
}

/// Streaming writer: push addresses, get a finished `HYTLBTR2` file.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    pending: Vec<u64>,
    block_accesses: usize,
    index: Vec<IndexEntry>,
    written: u64,
    accesses: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace file on `sink`, writing the magic and header
    /// immediately. `meta.block_accesses` controls the block size and
    /// must be in `1..=MAX_BLOCK_ACCESSES`.
    pub fn new(mut sink: W, meta: &TraceMeta) -> Result<Self> {
        if meta.block_accesses == 0 || meta.block_accesses > MAX_BLOCK_ACCESSES {
            return Err(TraceFileError::Store {
                detail: format!(
                    "block_accesses {} out of range 1..={MAX_BLOCK_ACCESSES}",
                    meta.block_accesses
                ),
            });
        }
        let prelude = encode_header(meta)?;
        sink.write_all(&prelude)?;
        Ok(TraceWriter {
            sink,
            pending: Vec::with_capacity(meta.block_accesses as usize),
            block_accesses: meta.block_accesses as usize,
            index: Vec::new(),
            written: prelude.len() as u64,
            accesses: 0,
        })
    }

    /// Appends one address, flushing a block when the buffer fills.
    pub fn push(&mut self, address: u64) -> Result<()> {
        self.pending.push(address);
        if self.pending.len() >= self.block_accesses {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends every address from `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = u64>) -> Result<()> {
        for address in iter {
            self.push(address)?;
        }
        Ok(())
    }

    /// Addresses accepted so far (flushed or pending).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses + self.pending.len() as u64
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let record = encode_block(&self.pending);
        self.index.push(IndexEntry {
            offset: self.written,
            first_access: self.accesses,
            first_address: self.pending[0],
            count: self.pending.len() as u32,
        });
        self.sink.write_all(&record)?;
        self.written += record.len() as u64;
        self.accesses += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final partial block, writes the seek index and
    /// footer, flushes the sink and reports totals. An empty trace
    /// (zero pushes) is legal: it has no blocks, an empty index and a
    /// footer counting zero accesses.
    pub fn finish(mut self) -> Result<WriteSummary> {
        self.flush_block()?;
        let index_offset = self.written;
        let index_bytes = encode_index(&self.index);
        self.sink.write_all(&index_bytes)?;
        self.written += index_bytes.len() as u64;
        let footer =
            Footer { index_offset, accesses: self.accesses, blocks: self.index.len() as u64 };
        let footer_bytes = encode_footer(&footer);
        self.sink.write_all(&footer_bytes)?;
        self.written += footer_bytes.len() as u64;
        self.sink.flush()?;
        Ok(WriteSummary { accesses: self.accesses, blocks: footer.blocks, bytes: self.written })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{FILE_MAGIC, FOOTER_BYTES};

    fn meta_with_block(block_accesses: u32) -> TraceMeta {
        let mut m = TraceMeta::new("gups", 1 << 12, 7);
        m.block_accesses = block_accesses;
        m
    }

    #[test]
    fn empty_trace_is_header_index_footer_only() {
        let mut out = Vec::new();
        let writer = TraceWriter::new(&mut out, &TraceMeta::new("gups", 64, 1)).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.accesses, 0);
        assert_eq!(summary.blocks, 0);
        assert_eq!(summary.bytes, out.len() as u64);
        assert_eq!(out[0..8], FILE_MAGIC);
        assert_eq!(&out[out.len() - 8..], b"HYTLBEND");
        // magic + len + header + empty index (magic, count, crc) + footer
        assert!(out.len() as u64 >= 12 + 12 + FOOTER_BYTES);
    }

    #[test]
    fn blocks_split_at_the_configured_size() {
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, &meta_with_block(10)).unwrap();
        writer.extend((0..25u64).map(|i| i * 4096)).unwrap();
        assert_eq!(writer.accesses(), 25);
        let summary = writer.finish().unwrap();
        assert_eq!(summary.accesses, 25);
        assert_eq!(summary.blocks, 3, "25 accesses at 10/block → 10+10+5");
    }

    #[test]
    fn zero_block_size_is_rejected() {
        let err = TraceWriter::new(Vec::new(), &meta_with_block(0)).unwrap_err();
        assert!(matches!(err, TraceFileError::Store { .. }), "{err}");
    }

    #[test]
    fn summary_ratio_counts_whole_file() {
        let mut out = Vec::new();
        let mut writer = TraceWriter::new(&mut out, &meta_with_block(64)).unwrap();
        // A same-page run compresses far below 8 bytes/access.
        writer.extend(std::iter::repeat_n(4096, 640)).unwrap();
        let summary = writer.finish().unwrap();
        assert_eq!(summary.raw_bytes(), 640 * 8);
        assert!(summary.compression_ratio() > 3.0, "ratio {}", summary.compression_ratio());
    }
}
