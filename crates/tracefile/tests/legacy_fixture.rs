//! A committed `HYTLBTR1` fixture keeps the legacy path honest: if the
//! v1 reader or `convert` regresses, these tests fail against real
//! bytes, not bytes produced by the same code under test.
//!
//! The fixture is gups, footprint 8192 pages, seed 7, 2000 accesses,
//! written by `hytlb_trace::write_trace`. Regenerate (only after a
//! deliberate v1 format change) with:
//!
//! ```text
//! cargo test -p hytlb-tracefile --test legacy_fixture regenerate -- --ignored
//! ```

use hytlb_trace::WorkloadKind;
use hytlb_tracefile::{convert, verify, LegacyReader, TraceReader};
use std::path::PathBuf;

const WORKLOAD: WorkloadKind = WorkloadKind::Gups;
const FOOTPRINT_PAGES: u64 = 8192;
const SEED: u64 = 7;
const ACCESSES: usize = 2000;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/legacy_gups.trace")
}

fn expected_addresses() -> Vec<u64> {
    WORKLOAD.generator(FOOTPRINT_PAGES, SEED).take(ACCESSES).collect()
}

#[test]
fn fixture_reads_back_via_both_paths() {
    let bytes = std::fs::read(fixture_path()).expect("committed fixture present");
    let expected = expected_addresses();

    // The v1 module's own reader.
    let (workload, footprint_pages, seed, addresses) = hytlb_trace::read_trace(&bytes[..]).unwrap();
    assert_eq!(workload, "gups");
    assert_eq!(footprint_pages, FOOTPRINT_PAGES);
    assert_eq!(seed, SEED);
    assert_eq!(addresses, expected);

    // The tracefile crate's streaming legacy reader.
    let reader = LegacyReader::new(&bytes[..]).unwrap();
    assert_eq!(reader.workload(), "gups");
    assert_eq!(reader.declared_accesses(), ACCESSES as u64);
    let streamed: Result<Vec<u64>, _> = reader.collect();
    assert_eq!(streamed.unwrap(), expected);
}

#[test]
fn fixture_converts_to_v2_losslessly() {
    let bytes = std::fs::read(fixture_path()).expect("committed fixture present");
    let mut v2 = Vec::new();
    let summary = convert(&bytes[..], &mut v2, None).unwrap();
    assert_eq!(summary.written.accesses, ACCESSES as u64);
    assert!(
        summary.written.compression_ratio() > 1.8,
        "gups at 8192 pages should beat 1.8x, got {:.2}x",
        summary.written.compression_ratio()
    );

    let report = verify(&v2[..]).unwrap();
    assert_eq!(report.accesses, ACCESSES as u64);

    let reader = TraceReader::new(&v2[..]).unwrap();
    assert_eq!(reader.meta().workload, "gups");
    assert_eq!(reader.meta().footprint_pages, FOOTPRINT_PAGES);
    assert_eq!(reader.meta().seed, SEED);
    let replayed: Result<Vec<u64>, _> = reader.addresses().collect();
    assert_eq!(replayed.unwrap(), expected_addresses());
}

/// Not a test: rewrites the fixture. Run explicitly (see module docs)
/// after a deliberate v1 format change, and commit the result.
#[test]
#[ignore = "regenerates the committed fixture"]
fn regenerate_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mut bytes = Vec::new();
    hytlb_trace::write_trace(
        &mut bytes,
        WORKLOAD.label(),
        FOOTPRINT_PAGES,
        SEED,
        &expected_addresses(),
    )
    .unwrap();
    std::fs::write(&path, &bytes).unwrap();
    println!("wrote {} bytes to {}", bytes.len(), path.display());
}
