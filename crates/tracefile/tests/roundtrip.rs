//! Property-based round-trips and corruption tests for the `HYTLBTR2`
//! format.
//!
//! The round-trip properties cover empty traces, single accesses,
//! non-monotone and adversarial u64 streams, and every block size from
//! one access up. The corruption half asserts the *detection* story:
//! truncation anywhere, a flipped bit anywhere after the header, and a
//! stale seek index all surface as corruption errors — never as wrong
//! addresses.

use hytlb_tracefile::block::{encode_block, RawBlock, BLOCK_MAGIC};
use hytlb_tracefile::varint::{read_varint, write_varint, zigzag_decode, zigzag_encode};
use hytlb_tracefile::{verify, TraceMeta, TraceReader, TraceWriter};
use proptest::prelude::*;

fn write_to_vec(addresses: &[u64], block_accesses: u32) -> Vec<u8> {
    let mut meta = TraceMeta::new("proptest", 1 << 16, 1);
    meta.block_accesses = block_accesses;
    let mut out = Vec::new();
    let mut writer = TraceWriter::new(&mut out, &meta).unwrap();
    writer.extend(addresses.iter().copied()).unwrap();
    writer.finish().unwrap();
    out
}

fn read_from_slice(bytes: &[u8]) -> Result<Vec<u64>, hytlb_tracefile::TraceFileError> {
    TraceReader::new(bytes).unwrap().addresses().collect()
}

/// Strategy: address streams of different shapes — uniformly random
/// u64s (non-monotone, huge deltas), page-local walks, and strided
/// scans — so both payload encodings get exercised.
fn arb_addresses() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        proptest::collection::vec(any::<u64>(), 0..300),
        proptest::collection::vec((0u64..64, 0u64..4096), 0..300)
            .prop_map(|ps| ps.into_iter().map(|(p, o)| p * 4096 + o).collect()),
        (0u64..1 << 40, 1u64..512, 0usize..300)
            .prop_map(|(base, stride, n)| (0..n as u64).map(|i| base + i * stride).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zigzag_roundtrips_any(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn varint_roundtrips_any(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    /// A lone block record round-trips any non-empty address list.
    #[test]
    fn block_roundtrips(addresses in proptest::collection::vec(any::<u64>(), 1..200)) {
        let record = encode_block(&addresses);
        prop_assert_eq!(&record[0..4], &BLOCK_MAGIC);
        let mut cursor = &record[4..];
        let raw = RawBlock::parse(&mut cursor, 0).unwrap();
        prop_assert_eq!(raw.decode().unwrap(), addresses);
    }

    /// A whole file round-trips through the streaming writer and reader
    /// for every block size, including pathological size 1.
    #[test]
    fn file_roundtrips(addresses in arb_addresses(), block in 1u32..64) {
        let bytes = write_to_vec(&addresses, block);
        prop_assert_eq!(read_from_slice(&bytes).unwrap(), addresses.clone());
        let report = verify(&bytes[..]).unwrap();
        prop_assert_eq!(report.accesses, addresses.len() as u64);
        prop_assert_eq!(report.bytes, bytes.len() as u64);
    }

    /// Truncating anywhere fails verification, and streaming replay of
    /// the truncated file never yields anything but a prefix of the
    /// original.
    #[test]
    fn truncation_is_detected(
        addresses in proptest::collection::vec(any::<u64>(), 1..200),
        block in 1u32..32,
        cut_permille in 0u64..1000,
    ) {
        let bytes = write_to_vec(&addresses, block);
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;
        let truncated = &bytes[..cut];
        prop_assert!(verify(truncated).is_err(), "verify accepted a {cut}-byte truncation");
        if let Ok(reader) = TraceReader::new(truncated) {
            let mut replayed = Vec::new();
            for item in reader.addresses() {
                match item {
                    Ok(a) => replayed.push(a),
                    Err(_) => break,
                }
            }
            prop_assert!(
                replayed.len() <= addresses.len() && replayed == addresses[..replayed.len()],
                "truncated replay is not a prefix"
            );
        }
    }

    /// A single flipped bit anywhere from the first block onward fails
    /// verification.
    #[test]
    fn bit_flips_are_detected(
        addresses in proptest::collection::vec(any::<u64>(), 1..150),
        block in 1u32..32,
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let bytes = write_to_vec(&addresses, block);
        let header_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let blocks_start = 12 + header_len;
        let pos = blocks_start + (pos_seed as usize) % (bytes.len() - blocks_start);
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(verify(&bad[..]).is_err(), "flip of bit {bit} at {pos} went undetected");
    }
}

/// Byte surgery: rewrite one index entry's `first_address` and patch
/// the index CRC so the index parses cleanly — only the cross-check
/// against the blocks can catch it. Both `verify` and the seekable
/// reader must.
#[test]
fn stale_seek_index_is_detected() {
    let addresses: Vec<u64> = (0..100u64).map(|i| i * 4096 + i).collect();
    let mut bytes = write_to_vec(&addresses, 16);

    let footer_start = bytes.len() - 36;
    let index_offset =
        u64::from_le_bytes(bytes[footer_start..footer_start + 8].try_into().unwrap()) as usize;
    assert_eq!(&bytes[index_offset..index_offset + 4], b"IDX2");
    let entry_count =
        u32::from_le_bytes(bytes[index_offset + 4..index_offset + 8].try_into().unwrap());
    assert_eq!(entry_count, 7, "100 accesses at 16/block");

    // Corrupt entry 3's first_address (bytes 16..24 of the 28-byte entry).
    let entry3 = index_offset + 8 + 3 * 28;
    bytes[entry3 + 16] ^= 0xff;
    // Re-stamp the index CRC (over count + entries) so parsing passes.
    let crc_pos = index_offset + 8 + 7 * 28;
    let crc = hytlb_tracefile::crc32::crc32(&bytes[index_offset + 4..crc_pos]);
    bytes[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());

    // The streaming verifier cross-checks the index against the blocks.
    let err = verify(&bytes[..]).unwrap_err();
    assert!(err.is_corrupt(), "{err}");
    assert!(err.to_string().contains("stale"), "{err}");

    // The seekable reader opens (the lie is self-consistent) but the
    // poisoned entry is caught the moment it is used.
    let dir = std::env::temp_dir().join(format!("hytlb_stale_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stale.htr2");
    std::fs::write(&path, &bytes).unwrap();
    let mut tf = hytlb_tracefile::TraceFile::open(&path).unwrap();
    assert_eq!(tf.block(2).unwrap().addresses, addresses[32..48], "clean entries still work");
    let err = tf.block(3).unwrap_err();
    assert!(err.is_corrupt(), "{err}");
    assert!(err.to_string().contains("stale"), "{err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_trace_roundtrips_and_verifies() {
    let bytes = write_to_vec(&[], 16);
    assert_eq!(read_from_slice(&bytes).unwrap(), Vec::<u64>::new());
    let report = verify(&bytes[..]).unwrap();
    assert_eq!(report.accesses, 0);
    assert_eq!(report.blocks, 0);
}

#[test]
fn single_access_trace_roundtrips() {
    for address in [0u64, 1, 0xfff, 0x1000, u64::MAX] {
        let bytes = write_to_vec(&[address], 16);
        assert_eq!(read_from_slice(&bytes).unwrap(), vec![address]);
        assert_eq!(verify(&bytes[..]).unwrap().accesses, 1);
    }
}

#[test]
fn non_monotone_wrapping_stream_roundtrips() {
    let addresses = vec![u64::MAX, 0, u64::MAX - 4095, 4096, 1 << 63, (1 << 63) - 1];
    let bytes = write_to_vec(&addresses, 4);
    assert_eq!(read_from_slice(&bytes).unwrap(), addresses);
}
