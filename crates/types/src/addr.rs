//! Strongly-typed virtual/physical addresses and page/frame numbers.

use crate::{PAGE_SHIFT, PAGE_SIZE};
use core::fmt;
use core::ops::{Add, AddAssign, Sub};

macro_rules! addr_common {
    ($ty:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(
            Clone,
            Copy,
            PartialEq,
            Eq,
            Hash,
            PartialOrd,
            Ord,
            Default,
            serde::Serialize,
            serde::Deserialize,
        )]
        pub struct $ty(u64);

        impl $ty {
            /// Wraps a raw 64-bit value.
            #[must_use]
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[must_use]
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Checked addition of a raw offset; `None` on overflow.
            #[must_use]
            #[inline]
            pub fn checked_add(self, rhs: u64) -> Option<Self> {
                self.0.checked_add(rhs).map(Self)
            }

            /// Checked distance to another value of the same domain;
            /// `None` when `rhs` is larger. The loud alternative to raw
            /// `u64` subtraction, which silently wraps in release builds.
            #[must_use]
            #[inline]
            pub fn checked_sub(self, rhs: Self) -> Option<u64> {
                self.0.checked_sub(rhs.0)
            }

            /// Checked subtraction of a raw offset; `None` on underflow.
            #[must_use]
            #[inline]
            pub fn checked_sub_offset(self, rhs: u64) -> Option<Self> {
                self.0.checked_sub(rhs).map(Self)
            }

            /// Offset of this value inside its aligned `span`-sized group
            /// (`self % span`): the page-offset-style helper for cluster /
            /// window / anchor-region subindexing.
            ///
            /// # Panics
            ///
            /// Panics if `span` is zero.
            #[must_use]
            #[inline]
            pub const fn offset_within(self, span: u64) -> u64 {
                self.0 % span
            }

            /// Extracts `(self >> shift) & mask` as a set index — the one
            /// sanctioned path from an address-domain value to a TLB /
            /// page-table array index. `mask` must be a low-bit mask
            /// (`sets - 1`), which callers obtain from power-of-two set
            /// counts.
            #[must_use]
            #[inline]
            pub const fn index_bits(self, shift: u32, mask: u64) -> usize {
                crate::usize_from((self.0 >> shift) & mask)
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($ty), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $ty {
            #[inline]
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u64 {
            #[inline]
            fn from(v: $ty) -> u64 {
                v.0
            }
        }

        impl Add<u64> for $ty {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$ty> for $ty {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $ty) -> u64 {
                self.0 - rhs.0
            }
        }
    };
}

addr_common!(VirtAddr, "A byte address in a process virtual address space.");
addr_common!(PhysAddr, "A byte address in physical memory.");
addr_common!(VirtPageNum, "A virtual page number (virtual address divided by the 4 KB page size).");
addr_common!(
    PhysFrameNum,
    "A physical frame number (physical address divided by the 4 KB page size)."
);

impl VirtAddr {
    /// Virtual page number containing this address.
    #[must_use]
    #[inline]
    pub const fn page_number(self) -> VirtPageNum {
        VirtPageNum::new(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset inside the containing 4 KB page.
    #[must_use]
    #[inline]
    pub const fn page_offset(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }
}

impl PhysAddr {
    /// Physical frame number containing this address.
    #[must_use]
    #[inline]
    pub const fn frame_number(self) -> PhysFrameNum {
        PhysFrameNum::new(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset inside the containing 4 KB frame.
    #[must_use]
    #[inline]
    pub const fn page_offset(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }
}

impl VirtPageNum {
    /// First byte address of the page.
    #[must_use]
    #[inline]
    pub const fn base_addr(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT)
    }

    /// Aligns this VPN down to a multiple of `alignment` pages.
    ///
    /// Used to locate the anchor VPN: `vpn.align_down(anchor_distance)`.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not a power of two.
    #[must_use]
    #[inline]
    pub fn align_down(self, alignment: u64) -> Self {
        assert!(alignment.is_power_of_two(), "alignment must be a power of two");
        Self(self.0 & !(alignment - 1))
    }

    /// `true` when this VPN is a multiple of `alignment` pages.
    #[must_use]
    #[inline]
    pub fn is_aligned(self, alignment: u64) -> bool {
        self.align_down(alignment) == self
    }
}

impl PhysFrameNum {
    /// First byte address of the frame.
    #[must_use]
    #[inline]
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }

    /// Aligns this PFN down to a multiple of `alignment` frames.
    ///
    /// # Panics
    ///
    /// Panics if `alignment` is not a power of two.
    #[must_use]
    #[inline]
    pub fn align_down(self, alignment: u64) -> Self {
        assert!(alignment.is_power_of_two(), "alignment must be a power of two");
        Self(self.0 & !(alignment - 1))
    }

    /// `true` when this PFN is a multiple of `alignment` frames.
    #[must_use]
    #[inline]
    pub fn is_aligned(self, alignment: u64) -> bool {
        self.align_down(alignment) == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn va_splits_into_vpn_and_offset() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.page_number(), VirtPageNum::new(0x12345));
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.page_number().base_addr().as_u64() + va.page_offset() as u64, va.as_u64());
    }

    #[test]
    fn pa_splits_into_pfn_and_offset() {
        let pa = PhysAddr::new(0xdead_beef);
        assert_eq!(pa.frame_number(), PhysFrameNum::new(0xdeadb));
        assert_eq!(pa.page_offset(), 0xeef);
    }

    #[test]
    fn vpn_alignment() {
        let vpn = VirtPageNum::new(0x1235);
        assert_eq!(vpn.align_down(16), VirtPageNum::new(0x1230));
        assert!(!vpn.is_aligned(16));
        assert!(VirtPageNum::new(0x1230).is_aligned(16));
        assert_eq!(vpn.align_down(1), vpn);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn vpn_alignment_requires_power_of_two() {
        let _ = VirtPageNum::new(7).align_down(3);
    }

    #[test]
    fn arithmetic_and_conversions() {
        let a = VirtPageNum::new(10);
        let b = a + 5;
        assert_eq!(b - a, 5);
        let mut c = a;
        c += 2;
        assert_eq!(c, VirtPageNum::new(12));
        assert_eq!(u64::from(b), 15);
        assert_eq!(VirtPageNum::from(15u64), b);
        assert_eq!(VirtPageNum::new(u64::MAX).checked_add(1), None);
    }

    #[test]
    fn checked_sub_and_index_helpers() {
        let a = VirtPageNum::new(10);
        let b = VirtPageNum::new(3);
        assert_eq!(a.checked_sub(b), Some(7));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a.checked_sub_offset(4), Some(VirtPageNum::new(6)));
        assert_eq!(b.checked_sub_offset(4), None);
        assert_eq!(VirtPageNum::new(13).offset_within(8), 5);
        assert_eq!(PhysFrameNum::new(0xabcd).index_bits(4, 0xff), 0xbc);
        assert_eq!(VirtPageNum::new(0x1234).index_bits(0, 0x7f), 0x34);
    }

    #[test]
    fn debug_and_hex_formatting() {
        let vpn = VirtPageNum::new(0xff);
        assert_eq!(format!("{vpn:?}"), "VirtPageNum(0xff)");
        assert_eq!(format!("{vpn:x}"), "ff");
        assert_eq!(format!("{vpn:X}"), "FF");
        assert_eq!(vpn.to_string(), "0xff");
    }
}
