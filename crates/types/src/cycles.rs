//! Cycle accounting for the translation timing model.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul};

/// A count of processor cycles spent in address translation.
///
/// The paper's timing model (Table 3) charges 7 cycles for a regular L2 TLB
/// hit, 8 cycles for an anchor/cluster/range hit and 50 cycles for a page
/// table walk; L1 hits are free because the L1 TLB is accessed in parallel
/// with the L1 cache.
///
/// ```
/// use hytlb_types::Cycles;
/// let total = Cycles::new(7) + Cycles::new(50);
/// assert_eq!(total.as_u64(), 57);
/// assert_eq!(total.per_instruction(57), 1.0);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Cycles-per-instruction contribution given an instruction count.
    ///
    /// Returns 0.0 when `instructions` is zero rather than dividing by zero,
    /// so empty simulations report a zero CPI contribution.
    #[must_use]
    pub fn per_instruction(self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.0 as f64 / instructions as f64
        }
    }

    /// Saturating addition, for accumulators that must never wrap.
    #[must_use]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut c = Cycles::ZERO;
        c += Cycles::new(7);
        assert_eq!(c + Cycles::new(3), Cycles::new(10));
        assert_eq!(Cycles::new(8) * 4, Cycles::new(32));
        let total: Cycles = [Cycles::new(1), Cycles::new(2), Cycles::new(3)].into_iter().sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn cpi_handles_zero_instructions() {
        assert_eq!(Cycles::new(100).per_instruction(0), 0.0);
        assert_eq!(Cycles::new(100).per_instruction(50), 2.0);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        assert_eq!(Cycles::new(u64::MAX).saturating_add(Cycles::new(10)), Cycles::new(u64::MAX));
    }

    #[test]
    fn display() {
        assert_eq!(Cycles::new(50).to_string(), "50 cyc");
    }
}
