//! Fundamental types shared by every `hytlb` crate.
//!
//! The crate defines strongly-typed wrappers for virtual and physical
//! addresses and page/frame numbers, page-size constants matching the x86-64
//! architecture modelled by the paper, access permissions, and the cycle
//! accounting unit used by the timing model.
//!
//! # Examples
//!
//! ```
//! use hytlb_types::{VirtAddr, VirtPageNum, PAGE_SIZE_U64};
//!
//! let va = VirtAddr::new(0x7f00_1234_5678);
//! let vpn = va.page_number();
//! assert_eq!(vpn.base_addr().as_u64() % PAGE_SIZE_U64, 0);
//! assert_eq!(va.page_offset() as u64, va.as_u64() % PAGE_SIZE_U64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cycles;
mod perm;

pub use addr::{PhysAddr, PhysFrameNum, VirtAddr, VirtPageNum};
pub use cycles::Cycles;
pub use perm::Permissions;

/// Number of bits in the page offset of a base (4 KB) page.
pub const PAGE_SHIFT: u32 = 12;

/// Size of a base page in bytes (4 KB).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// [`PAGE_SIZE`] as a `u64`, for byte/page arithmetic on raw 64-bit
/// addresses without a cast at every call site (`hytlb-audit` rule R1
/// bans raw address-domain `as` casts outside this crate).
pub const PAGE_SIZE_U64: u64 = PAGE_SIZE as u64;

// The simulator manipulates 64-bit VPN/PFN values and indexes host-side
// arrays with them; a 32-bit host would silently truncate. Refuse to
// compile rather than corrupt figures.
const _: () = assert!(usize::BITS >= u64::BITS, "hytlb requires a 64-bit target");

/// Converts a `u64` index/count to `usize` losslessly.
///
/// The single sanctioned integer narrowing point for address-derived
/// values (set indices, window numbers, cluster numbers): the crate only
/// compiles on targets where `usize` is at least 64 bits wide, so this is
/// a bit-exact move, unlike an unchecked `as usize` at the call site.
#[must_use]
pub const fn usize_from(v: u64) -> usize {
    v as usize
}

/// Converts a small `u64` (a sub-page offset, a frame offset inside a
/// cluster) to `u8`, panicking loudly instead of truncating.
///
/// # Panics
///
/// Panics if `v` does not fit in 8 bits.
#[must_use]
pub const fn u8_from(v: u64) -> u8 {
    assert!(v <= u8::MAX as u64, "value does not fit in 8 bits");
    v as u8
}

/// Number of base pages in an x86-64 large page (2 MB / 4 KB = 512).
pub const HUGE_PAGE_PAGES: u64 = 512;

/// Size of an x86-64 large page in bytes (2 MB).
pub const HUGE_PAGE_SIZE: usize = PAGE_SIZE * HUGE_PAGE_PAGES as usize;

/// Number of base pages in an x86-64 giant page (1 GB / 4 KB = 262144).
pub const GIANT_PAGE_PAGES: u64 = 512 * 512;

/// Size of an x86-64 giant page in bytes (1 GB).
pub const GIANT_PAGE_SIZE: usize = PAGE_SIZE * GIANT_PAGE_PAGES as usize;

/// Number of page-table entries per 64-byte cache block (8 × 8-byte PTEs).
///
/// Anchor contiguity bits wider than a single PTE's ignored field are
/// distributed over the entries of one cache block (paper §3.1).
pub const PTES_PER_CACHE_BLOCK: usize = 8;

/// Supported translation granularities.
///
/// The paper's evaluated configuration uses 4 KB and 2 MB (Table 3);
/// 1 GB pages — which x86-64 serves from "a separate and smaller 1GB page
/// L2 TLB" (§2.1) — are modelled as well for the page-size-scalability
/// extension experiments.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum PageSize {
    /// Base 4 KB page.
    Base4K,
    /// x86-64 2 MB large page.
    Huge2M,
    /// x86-64 1 GB giant page.
    Giant1G,
}

impl PageSize {
    /// Size of the page in bytes.
    ///
    /// ```
    /// use hytlb_types::PageSize;
    /// assert_eq!(PageSize::Base4K.bytes(), 4096);
    /// assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
    /// assert_eq!(PageSize::Giant1G.bytes(), 1024 * 1024 * 1024);
    /// ```
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            PageSize::Base4K => PAGE_SIZE,
            PageSize::Huge2M => HUGE_PAGE_SIZE,
            PageSize::Giant1G => GIANT_PAGE_SIZE,
        }
    }

    /// Number of base (4 KB) pages covered by one page of this size.
    #[must_use]
    pub const fn base_pages(self) -> u64 {
        match self {
            PageSize::Base4K => 1,
            PageSize::Huge2M => HUGE_PAGE_PAGES,
            PageSize::Giant1G => GIANT_PAGE_PAGES,
        }
    }

    /// log2 of the page size in bytes.
    #[must_use]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => PAGE_SHIFT,
            PageSize::Huge2M => PAGE_SHIFT + 9,
            PageSize::Giant1G => PAGE_SHIFT + 18,
        }
    }
}

impl core::fmt::Display for PageSize {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PageSize::Base4K => f.write_str("4KB"),
            PageSize::Huge2M => f.write_str("2MB"),
            PageSize::Giant1G => f.write_str("1GB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(HUGE_PAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(HUGE_PAGE_PAGES * PAGE_SIZE as u64, HUGE_PAGE_SIZE as u64);
        assert_eq!(PageSize::Base4K.base_pages(), 1);
        assert_eq!(PageSize::Huge2M.base_pages(), 512);
    }

    #[test]
    fn page_size_shift_matches_bytes() {
        for size in [PageSize::Base4K, PageSize::Huge2M] {
            assert_eq!(1usize << size.shift(), size.bytes());
        }
    }

    #[test]
    fn page_size_display() {
        assert_eq!(PageSize::Base4K.to_string(), "4KB");
        assert_eq!(PageSize::Huge2M.to_string(), "2MB");
    }

    #[test]
    fn page_size_orders_by_coverage() {
        assert!(PageSize::Base4K < PageSize::Huge2M);
    }

    #[test]
    fn lossless_narrowing_helpers() {
        assert_eq!(PAGE_SIZE_U64, 4096);
        assert_eq!(usize_from(u64::MAX), u64::MAX as usize);
        assert_eq!(u8_from(255), 255);
        assert_eq!(u8_from(0), 0);
    }

    #[test]
    #[should_panic(expected = "8 bits")]
    fn u8_from_rejects_wide_values() {
        let _ = u8_from(256);
    }
}
