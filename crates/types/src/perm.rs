//! Page access permissions.
//!
//! The paper (§3.3, "Permission and Page Sharing") treats a page whose
//! permissions differ from its anchor's as non-contiguous: such a page must
//! not be translated through the anchor entry. The simulator therefore
//! carries permissions on every mapping and the anchored page table breaks
//! contiguity runs at permission boundaries.

use core::fmt;
use core::ops::{BitAnd, BitOr};

/// Read/write/execute permission bits for a mapped page.
///
/// A tiny hand-rolled flag set (the project avoids a `bitflags` dependency;
/// three bits do not justify one).
///
/// ```
/// use hytlb_types::Permissions;
/// let rw = Permissions::READ | Permissions::WRITE;
/// assert!(rw.contains(Permissions::READ));
/// assert!(!rw.contains(Permissions::EXECUTE));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct Permissions(u8);

impl Permissions {
    /// No access.
    pub const NONE: Permissions = Permissions(0);
    /// Readable.
    pub const READ: Permissions = Permissions(0b001);
    /// Writable.
    pub const WRITE: Permissions = Permissions(0b010);
    /// Executable.
    pub const EXECUTE: Permissions = Permissions(0b100);
    /// Readable and writable — the common data-page permission.
    pub const READ_WRITE: Permissions = Permissions(0b011);

    /// `true` if every bit of `other` is set in `self`.
    #[must_use]
    pub const fn contains(self, other: Permissions) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw bit representation (bit 0 = R, bit 1 = W, bit 2 = X).
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Reconstructs permissions from raw bits, masking unknown bits off.
    #[must_use]
    pub const fn from_bits_truncate(bits: u8) -> Permissions {
        Permissions(bits & 0b111)
    }
}

impl BitOr for Permissions {
    type Output = Permissions;
    fn bitor(self, rhs: Permissions) -> Permissions {
        Permissions(self.0 | rhs.0)
    }
}

impl BitAnd for Permissions {
    type Output = Permissions;
    fn bitand(self, rhs: Permissions) -> Permissions {
        Permissions(self.0 & rhs.0)
    }
}

impl fmt::Debug for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permissions({self})")
    }
}

impl fmt::Display for Permissions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.contains(Permissions::READ) { 'r' } else { '-' };
        let w = if self.contains(Permissions::WRITE) { 'w' } else { '-' };
        let x = if self.contains(Permissions::EXECUTE) { 'x' } else { '-' };
        write!(f, "{r}{w}{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_ops() {
        let rwx = Permissions::READ | Permissions::WRITE | Permissions::EXECUTE;
        assert!(rwx.contains(Permissions::READ_WRITE));
        assert_eq!(rwx & Permissions::WRITE, Permissions::WRITE);
        assert!(Permissions::NONE.contains(Permissions::NONE));
        assert!(!Permissions::READ.contains(Permissions::WRITE));
    }

    #[test]
    fn display_is_ls_style() {
        assert_eq!(Permissions::READ_WRITE.to_string(), "rw-");
        assert_eq!(Permissions::NONE.to_string(), "---");
        assert_eq!((Permissions::READ | Permissions::EXECUTE).to_string(), "r-x");
        assert_eq!(format!("{:?}", Permissions::READ), "Permissions(r--)");
    }

    #[test]
    fn from_bits_truncate_masks_unknown_bits() {
        assert_eq!(Permissions::from_bits_truncate(0xff).bits(), 0b111);
        assert_eq!(Permissions::from_bits_truncate(0b011), Permissions::READ_WRITE);
    }
}
