//! Anatomy of Algorithm 1: how the anchor-distance cost function trades
//! anchor entries, 2 MB entries and 4 KB entries, and why the selected
//! distance is (close to) the empirically best one.
//!
//! For one mapping this example prints, per candidate distance, the
//! heuristic capacity cost and the *measured* TLB misses of a static run —
//! the `static ideal` sweep of the paper — then shows where the dynamic
//! selection landed.
//!
//! ```sh
//! cargo run --release --example distance_tuning
//! ```

use hytlb::prelude::*;
use hytlb::sim::experiment::{mapping_for, trace_for};
use hytlb::sim::Machine;
use hytlb::trace::WorkloadKind;

fn main() {
    let config = PaperConfig { accesses: 300_000, footprint_shift: 3, ..PaperConfig::default() };
    let workload = WorkloadKind::Mcf;
    let scenario = Scenario::MediumContiguity;
    let map = mapping_for(workload, scenario, &config);
    let hist = ContiguityHistogram::from_map(&map);
    let selector = DistanceSelector::paper_default();
    let trace = trace_for(workload, &config);

    println!(
        "workload {workload}, scenario {scenario}: {} chunks, mean contiguity {:.1} pages\n",
        map.chunk_count(),
        hist.mean_contiguity()
    );
    println!("{:>9} {:>14} {:>12}", "distance", "heuristic cost", "walks");
    let mut best = (0u64, u64::MAX);
    for &d in selector.candidates() {
        let cost = selector.cost(d, &hist);
        let run = Machine::for_scheme(SchemeKind::AnchorStatic(d), &map, &config)
            .run(trace.iter().copied());
        if run.tlb_misses() < best.1 {
            best = (d, run.tlb_misses());
        }
        println!("{d:>9} {cost:>14.1} {:>12}", run.tlb_misses());
    }
    let selected = selector.select(&hist);
    println!("\nAlgorithm 1 selects d = {selected}; the measured best is d = {}.", best.0);
    let selected_run = Machine::for_scheme(SchemeKind::AnchorStatic(selected), &map, &config)
        .run(trace.iter().copied());
    println!(
        "misses at selected vs best: {} vs {} ({:+.1}%)",
        selected_run.tlb_misses(),
        best.1,
        (selected_run.tlb_misses() as f64 / best.1.max(1) as f64 - 1.0) * 100.0
    );
}
