//! The paper's headline property: one mechanism adapting to every
//! fragmentation regime.
//!
//! For each of the six mapping scenarios this example shows which anchor
//! distance the OS selects (Algorithm 1) and how the anchor TLB compares
//! against the best prior scheme *for that scenario* — reproducing, in
//! miniature, the conclusion of the paper: "our scheme outperforms or
//! performs similar to the best prior scheme for each mapping scenario".
//!
//! ```sh
//! cargo run --release --example fragmentation_adaptation
//! ```

use hytlb::prelude::*;
use hytlb::sim::experiment::run_suite;
use hytlb::trace::WorkloadKind;

fn main() {
    let config = PaperConfig { accesses: 200_000, footprint_shift: 3, ..PaperConfig::default() };
    let kinds = [
        SchemeKind::Baseline,
        SchemeKind::Thp,
        SchemeKind::Cluster2Mb,
        SchemeKind::Rmm,
        SchemeKind::AnchorDynamic,
    ];
    println!("workload: canneal | misses relative to baseline (%), lower is better\n");
    println!(
        "{:<8} {:>8} {:>12} {:>8} {:>9} | {:>14}",
        "scenario", "THP", "Cluster-2MB", "RMM", "Dynamic", "anchor distance"
    );
    for scenario in Scenario::all() {
        let suite = run_suite(scenario, &[WorkloadKind::Canneal], &kinds, &config);
        let row = &suite.rows[0];
        let base = &row.runs[0];
        let rel: Vec<f64> = row.runs.iter().map(|r| r.relative_misses_pct(base)).collect();
        let distance = row.runs[4].anchor_distance.expect("anchor run");
        println!(
            "{:<8} {:>8.1} {:>12.1} {:>8.1} {:>9.1} | {:>14}",
            scenario.label(),
            rel[1],
            rel[2],
            rel[3],
            rel[4],
            distance
        );
        let best_prior = rel[1..4].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            rel[4] <= best_prior + 10.0,
            "anchor should match the best prior scheme (scenario {scenario})"
        );
    }
    println!("\nThe distance tracks the mapping: small when fragmented, huge when contiguous.");
}
