//! Quickstart: build a fragmented mapping, run the anchor TLB over it, and
//! compare against the 4 KB baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hytlb::prelude::*;

fn main() {
    // 1. An OS mapping: 256 MB allocated with medium fragmentation
    //    (contiguous chunks of 1-512 pages, Table 4 of the paper).
    let footprint_pages = 64 * 1024;
    let mapping = std::sync::Arc::new(Scenario::MediumContiguity.generate(footprint_pages, 42));
    println!(
        "mapping: {} pages in {} contiguous chunks (mean {:.1} pages/chunk)",
        mapping.mapped_pages(),
        mapping.chunk_count(),
        ContiguityHistogram::from_map(&mapping).mean_contiguity()
    );

    // 2. A workload: canneal-style hot/cold accesses over that footprint.
    let config = PaperConfig::default();
    let trace: Vec<u64> =
        WorkloadKind::Canneal.generator(footprint_pages, config.seed).take(500_000).collect();

    // 3. Run the paper's hybrid coalescing (dynamic anchor distance) and
    //    the baseline over the identical trace.
    let base =
        Machine::for_scheme(SchemeKind::Baseline, &mapping, &config).run(trace.iter().copied());
    let anchor = Machine::for_scheme(SchemeKind::AnchorDynamic, &mapping, &config)
        .run(trace.iter().copied());

    println!("\n              walks (TLB misses)   translation CPI");
    for run in [&base, &anchor] {
        println!("{:<12}  {:>20}   {:>15.4}", run.scheme, run.tlb_misses(), run.translation_cpi());
    }
    println!(
        "\nanchor distance selected by Algorithm 1: {} pages",
        anchor.anchor_distance.expect("anchor scheme reports a distance")
    );
    println!("misses relative to baseline: {:.1}%", anchor.relative_misses_pct(&base));
}
