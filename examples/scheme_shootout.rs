//! A full shootout on one workload: every scheme, every scenario, with L2
//! access breakdowns — a compact tour of the whole library surface.
//!
//! ```sh
//! cargo run --release --example scheme_shootout -- graph500
//! ```
//!
//! Pass any paper benchmark label (default: `graph500`).

use hytlb::prelude::*;
use hytlb::sim::experiment::run_suite;
use hytlb::sim::report::{l2_breakdown_table, relative_miss_table};
use hytlb::trace::WorkloadKind;

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "graph500".to_owned());
    let workload = WorkloadKind::from_label(&label).unwrap_or_else(|| {
        let names: Vec<_> = WorkloadKind::all().iter().map(|w| w.label()).collect();
        panic!("unknown workload {label}; choose one of {names:?}")
    });
    let config = PaperConfig { accesses: 300_000, footprint_shift: 3, ..PaperConfig::default() };
    let kinds = SchemeKind::paper_set();
    for scenario in [Scenario::DemandPaging, Scenario::MediumContiguity, Scenario::MaxContiguity] {
        let suite = run_suite(scenario, &[workload], &kinds, &config);
        println!("{}", relative_miss_table(&suite));
        // The Dynamic column is last in the paper set.
        println!("{}", l2_breakdown_table(&suite, kinds.len() - 1));
    }
    println!("Columns: R.hit = regular (4KB/2MB) L2 hits, A.hit = anchor hits,");
    println!("L2 miss = page walks — the Table 5 metrics of the paper.");
}
