//! Capture-then-replay workflow, mirroring the paper's Pin methodology:
//! stream a workload trace to a compressed `HYTLBTR2` file once, then
//! replay the identical trace from disk against several mapping
//! scenarios.
//!
//! Both directions stream: capture pushes each address into the block
//! writer as the generator produces it, and replay decodes the file
//! block by block — neither side ever holds the whole trace in memory.
//!
//! ```sh
//! cargo run --release --example trace_capture
//! ```

use hytlb::prelude::*;
use hytlb::trace::WorkloadKind;
use hytlb::tracefile::{TraceMeta, TraceReader, TraceWriter};

fn main() -> std::io::Result<()> {
    let workload = WorkloadKind::Mcf;
    let footprint = 32 * 1024;
    let seed = 7;
    let accesses = 200_000;

    // 1. "Pin capture": stream the access trace straight to disk.
    let path = std::env::temp_dir().join("hytlb_mcf.htr2");
    let meta = TraceMeta::new(workload.label(), footprint, seed);
    let mut writer = TraceWriter::new(std::fs::File::create(&path)?, &meta)?;
    writer.extend(workload.generator(footprint, seed).take(accesses))?;
    let summary = writer.finish()?;
    println!(
        "captured {} accesses of {} to {} ({} bytes, {:.2}x smaller than raw u64s)",
        summary.accesses,
        workload,
        path.display(),
        summary.bytes,
        summary.compression_ratio(),
    );

    // 2. Replay the stored trace against three different mappings,
    //    re-reading it from disk for every run.
    let stream = |path: &std::path::Path| -> std::io::Result<_> {
        let reader = TraceReader::new(std::fs::File::open(path)?)?;
        Ok(reader.addresses().map(|address| address.expect("trace verified at capture")))
    };
    let config = PaperConfig::default();
    println!("\nreplaying {workload}:");
    println!("{:<10} {:>12} {:>12}", "scenario", "base walks", "anchor walks");
    for scenario in [Scenario::LowContiguity, Scenario::MediumContiguity, Scenario::MaxContiguity] {
        let map = std::sync::Arc::new(scenario.generate(footprint, 3));
        let base = Machine::for_scheme(SchemeKind::Baseline, &map, &config).run(stream(&path)?);
        let anchor =
            Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config).run(stream(&path)?);
        println!(
            "{:<10} {:>12} {:>12}   (d = {})",
            scenario.label(),
            base.tlb_misses(),
            anchor.tlb_misses(),
            anchor.anchor_distance.expect("anchor distance")
        );
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
