//! Capture-then-replay workflow, mirroring the paper's Pin methodology:
//! generate a workload trace once, store it, and replay the identical
//! trace against several mapping scenarios.
//!
//! ```sh
//! cargo run --release --example trace_capture
//! ```

use hytlb::prelude::*;
use hytlb::trace::{read_trace, write_trace, WorkloadKind};

fn main() -> std::io::Result<()> {
    let workload = WorkloadKind::Mcf;
    let footprint = 32 * 1024;
    let seed = 7;

    // 1. "Pin capture": materialize the access trace once.
    let addresses: Vec<u64> = workload.generator(footprint, seed).take(200_000).collect();
    let path = std::env::temp_dir().join("hytlb_mcf.trace");
    write_trace(std::fs::File::create(&path)?, workload.label(), footprint, seed, &addresses)?;
    println!("captured {} accesses of {} to {}", addresses.len(), workload, path.display());

    // 2. Replay the stored trace against three different mappings.
    let (name, fp, _, replay) = read_trace(std::fs::File::open(&path)?)?;
    assert_eq!(fp, footprint);
    let config = PaperConfig::default();
    println!("\nreplaying {name}:");
    println!("{:<10} {:>12} {:>12}", "scenario", "base walks", "anchor walks");
    for scenario in [Scenario::LowContiguity, Scenario::MediumContiguity, Scenario::MaxContiguity] {
        let map = std::sync::Arc::new(scenario.generate(footprint, 3));
        let base =
            Machine::for_scheme(SchemeKind::Baseline, &map, &config).run(replay.iter().copied());
        let anchor = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config)
            .run(replay.iter().copied());
        println!(
            "{:<10} {:>12} {:>12}   (d = {})",
            scenario.label(),
            base.tlb_misses(),
            anchor.tlb_misses(),
            anchor.anchor_distance.expect("anchor distance")
        );
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
