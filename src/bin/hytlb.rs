//! `hytlb` — command-line front end for single simulation cells.
//!
//! ```sh
//! hytlb --workload gups --scenario medium --scheme dynamic --accesses 500000
//! hytlb --list
//! ```

use hytlb::prelude::*;
use hytlb::sim::experiment::{mapping_for, trace_for};
use hytlb::trace::WorkloadKind;

fn usage() -> ! {
    eprintln!(
        "usage: hytlb [--list] [--workload NAME] [--scenario NAME] [--scheme NAME]\n\
         \x20             [--accesses N] [--seed N] [--shift N] [--json]\n\
         defaults: --workload canneal --scenario medium --scheme dynamic"
    );
    std::process::exit(2)
}

fn parse_scheme(name: &str) -> Option<SchemeKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "base" | "baseline" => SchemeKind::Baseline,
        "thp" => SchemeKind::Thp,
        "cluster" => SchemeKind::Cluster,
        "cluster-2mb" | "cluster2mb" => SchemeKind::Cluster2Mb,
        "colt" => SchemeKind::Colt,
        "rmm" => SchemeKind::Rmm,
        "dynamic" | "anchor" => SchemeKind::AnchorDynamic,
        "regions" => SchemeKind::AnchorMultiRegion(8),
        other => {
            let d: u64 = other.strip_prefix("anchor-d")?.parse().ok()?;
            SchemeKind::AnchorStatic(d)
        }
    })
}

fn parse_scenario(name: &str) -> Option<Scenario> {
    Scenario::all().into_iter().find(|s| s.label() == name.to_ascii_lowercase())
}

fn main() {
    let mut workload = WorkloadKind::Canneal;
    let mut scenario = Scenario::MediumContiguity;
    let mut scheme = SchemeKind::AnchorDynamic;
    let mut config =
        PaperConfig { accesses: 1_000_000, footprint_shift: 2, ..PaperConfig::default() };
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--list" => {
                println!("workloads: {}", WorkloadKind::all().map(|w| w.label()).join(" "));
                println!("scenarios: {}", Scenario::all().map(|s| s.label()).join(" "));
                println!(
                    "schemes:   base thp cluster cluster-2mb colt rmm dynamic regions anchor-d<N>"
                );
                return;
            }
            "--workload" => {
                let v = value(&mut args);
                workload = WorkloadKind::from_label(&v).unwrap_or_else(|| usage());
            }
            "--scenario" => {
                let v = value(&mut args);
                scenario = parse_scenario(&v).unwrap_or_else(|| usage());
            }
            "--scheme" => {
                let v = value(&mut args);
                scheme = parse_scheme(&v).unwrap_or_else(|| usage());
            }
            "--accesses" => config.accesses = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--seed" => config.seed = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--shift" => {
                config.footprint_shift = value(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--json" => json = true,
            _ => usage(),
        }
    }

    let map = mapping_for(workload, scenario, &config);
    let trace = trace_for(workload, &config);
    let base = Machine::for_scheme(SchemeKind::Baseline, &map, &config).run(trace.iter().copied());
    let run = Machine::for_scheme(scheme, &map, &config).run(trace.iter().copied());

    if json {
        println!("{}", hytlb::sim::report::to_json(&run));
        return;
    }
    println!(
        "{} on {} under {}: footprint {} pages, {} chunks",
        run.scheme,
        workload,
        scenario,
        map.mapped_pages(),
        map.chunk_count()
    );
    println!(
        "  walks: {} ({:.1}% of baseline)   translation CPI: {:.4}",
        run.tlb_misses(),
        run.relative_misses_pct(&base),
        run.translation_cpi()
    );
    println!(
        "  L2 breakdown: regular {:.0}%, coalesced {:.0}%, miss {:.0}%",
        run.stats.l2_regular_hit_rate() * 100.0,
        run.stats.l2_coalesced_hit_rate() * 100.0,
        run.stats.l2_miss_rate() * 100.0
    );
    if let Some(d) = run.anchor_distance {
        println!("  anchor distance: {d}");
    }
}
