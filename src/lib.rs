//! # hytlb — Hybrid TLB Coalescing, reproduced in Rust
//!
//! Facade crate for the reproduction of *Hybrid TLB Coalescing: Improving
//! TLB Translation Coverage under Diverse Fragmented Memory Allocations*
//! (Park, Heo, Jeong, Huh — ISCA 2017).
//!
//! The workspace is organised bottom-up; this crate re-exports every layer so
//! downstream users (and the examples under `examples/`) need a single
//! dependency:
//!
//! * [`types`] — addresses, page sizes, permissions, cycles.
//! * [`mem`] — buddy allocator, fragmentation driver, address-space maps,
//!   contiguity histograms and the six mapping scenarios of the paper.
//! * [`pagetable`] — x86-64 4-level page table with anchor PTEs and a page
//!   walker.
//! * [`tlb`] — set-associative and fully-associative TLB hardware models.
//! * [`core`] — the paper's contribution: the anchor TLB scheme and the
//!   dynamic anchor-distance selection algorithm.
//! * [`schemes`] — the competing schemes (baseline, THP, cluster,
//!   cluster-2MB, RMM) behind one [`schemes::TranslationScheme`] trait.
//! * [`trace`] — synthetic workload trace generators for the 14 benchmarks.
//! * [`tracefile`] — the compressed, seekable `HYTLBTR2` trace-file format,
//!   the on-disk trace corpus ([`tracefile::TraceStore`]) and the
//!   `hytlb-tracectl` tool.
//! * [`sim`] — the trace-driven simulation engine, experiment definitions
//!   and report renderers.
//!
//! # Quickstart
//!
//! ```
//! use hytlb::prelude::*;
//!
//! // Map 64 MB with medium fragmentation, then run a small random workload
//! // through the anchor scheme.
//! let mapping = std::sync::Arc::new(Scenario::MediumContiguity.generate(16 * 1024, 42));
//! let config = PaperConfig::default();
//! let mut machine = Machine::for_scheme(SchemeKind::AnchorDynamic, &mapping, &config);
//! let trace = WorkloadKind::Gups.generator(16 * 1024, 7).take(10_000);
//! let stats = machine.run(trace);
//! assert!(stats.accesses > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hytlb_core as core;
pub use hytlb_mem as mem;
pub use hytlb_pagetable as pagetable;
pub use hytlb_schemes as schemes;
pub use hytlb_sim as sim;
pub use hytlb_tlb as tlb;
pub use hytlb_trace as trace;
pub use hytlb_tracefile as tracefile;
pub use hytlb_types as types;

/// Convenience re-exports of the most frequently used items.
pub mod prelude {
    pub use hytlb_core::{AnchorConfig, AnchorScheme, DistanceSelector};
    pub use hytlb_mem::{AddressSpaceMap, ContiguityHistogram, Scenario};
    pub use hytlb_schemes::TranslationScheme;
    pub use hytlb_sim::{Machine, PaperConfig, RunStats, SchemeKind};
    pub use hytlb_trace::WorkloadKind;
    pub use hytlb_types::{Cycles, PageSize, PhysFrameNum, VirtAddr, VirtPageNum};
}
