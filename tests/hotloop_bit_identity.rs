//! Bit-identity of the batched, pre-resolved hot loop against the scalar
//! logical-trace reference, across the whole scheme × scenario matrix, plus
//! property tests for the `PageIndex` cursor fast paths.
//!
//! The batched loop ([`Machine::try_run_resolved_with_flush_period`]) cuts
//! chunks so every epoch and flush boundary lands on a chunk end; these
//! tests pick epoch lengths and flush periods that are *not* multiples of
//! the batch size, so boundaries fall mid-chunk and the cutting logic is
//! actually exercised.

use hytlb::mem::{AddressSpaceMap, PageCursor, Scenario};
use hytlb::sim::{Machine, PaperConfig, SchemeKind};
use hytlb::trace::WorkloadKind;
use hytlb::types::{Permissions, PhysFrameNum, VirtPageNum, PAGE_SIZE_U64};
use proptest::prelude::*;
use std::sync::Arc;

/// Every scheme kind the engine can build, including the parameterized
/// anchor variants that `paper_set` leaves out.
fn all_kinds() -> Vec<SchemeKind> {
    let mut kinds = SchemeKind::paper_set().to_vec();
    kinds.extend([
        SchemeKind::Thp1G,
        SchemeKind::Cluster2Mb,
        SchemeKind::AnchorStatic(16),
        SchemeKind::AnchorMultiRegion(4),
    ]);
    kinds
}

/// A config whose epoch length (3,333 accesses) is far from any multiple of
/// the 4,096-access batch size, so every epoch boundary lands mid-chunk.
fn boundary_config() -> PaperConfig {
    PaperConfig {
        accesses: 20_000,
        footprint_shift: 5,
        epoch_instructions: 9_999,
        ..PaperConfig::default()
    }
}

#[test]
fn batched_loop_is_bit_identical_across_the_matrix() {
    let config = boundary_config();
    let workload = WorkloadKind::Canneal;
    // 2,500 is coprime with the batch size and shorter than an epoch, so
    // flushes and epochs interleave in both orders during the run.
    for flush_period in [u64::MAX, 2_500] {
        for scenario in Scenario::all() {
            let footprint = config.footprint_for(workload);
            let map = Arc::new(scenario.generate(footprint, config.seed));
            let index = Arc::new(map.page_index());
            let trace: Vec<u64> =
                workload.generator(footprint, config.seed).take(config.accesses as usize).collect();
            let resolved = index.resolve(&trace);
            for kind in all_kinds() {
                let scalar = Machine::for_scheme_indexed(kind, &map, &index, &config)
                    .try_run_with_flush_period(trace.iter().copied(), flush_period)
                    .expect("mapped trace");
                let batched = Machine::for_scheme_indexed(kind, &map, &index, &config)
                    .try_run_resolved_with_flush_period(&resolved, flush_period)
                    .expect("mapped trace");
                assert_eq!(batched, scalar, "{kind} / {scenario} / flush {flush_period}");
            }
        }
    }
}

#[test]
fn batched_loop_survives_flush_after_every_access() {
    // flush_period == 0 flushes after every access in the scalar loop; the
    // batched loop must degrade to one-access chunks and still agree.
    let config = PaperConfig { accesses: 2_000, ..boundary_config() };
    let workload = WorkloadKind::Gups;
    let footprint = config.footprint_for(workload);
    let map = Arc::new(Scenario::LowContiguity.generate(footprint, config.seed));
    let index = Arc::new(map.page_index());
    let trace: Vec<u64> =
        workload.generator(footprint, config.seed).take(config.accesses as usize).collect();
    let resolved = index.resolve(&trace);
    for kind in [SchemeKind::Baseline, SchemeKind::AnchorDynamic] {
        let scalar = Machine::for_scheme_indexed(kind, &map, &index, &config)
            .try_run_with_flush_period(trace.iter().copied(), 0)
            .expect("mapped trace");
        let batched = Machine::for_scheme_indexed(kind, &map, &index, &config)
            .try_run_resolved_with_flush_period(&resolved, 0)
            .expect("mapped trace");
        assert_eq!(batched, scalar, "{kind} with flush_period 0");
    }
}

/// Builds a sparse map from (gap, len) chunk specs.
fn map_from_specs(specs: &[(u64, u64)]) -> AddressSpaceMap {
    let mut map = AddressSpaceMap::new();
    let mut vpn = 0u64;
    let mut pfn = 1u64 << 20;
    for &(gap, len) in specs {
        vpn += gap + 1;
        map.map_range(VirtPageNum::new(vpn), PhysFrameNum::new(pfn), len, Permissions::READ_WRITE);
        vpn += len;
        pfn += len + 5;
    }
    map
}

/// Strategy: a sparse map (as (gap, len) chunk specs) plus a sequence of
/// logical page indices to look up (reduced modulo the page count, since
/// the map's size is not known until generation time).
fn arb_map_and_accesses() -> impl Strategy<Value = (AddressSpaceMap, Vec<u64>)> {
    (
        proptest::collection::vec((0u64..500, 1u64..48), 1..30),
        proptest::collection::vec(any::<u64>(), 1..200),
    )
        .prop_map(|(specs, raws)| {
            let map = map_from_specs(&specs);
            let pages = map.mapped_pages();
            let accesses = raws.into_iter().map(|r| r % pages).collect();
            (map, accesses)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MRU-chunk cursor lookup agrees with the plain binary search for
    /// any access sequence — including the pathological back-and-forth
    /// patterns where the cursor misses every time.
    #[test]
    fn cursor_lookup_agrees_with_partition_point((map, accesses) in arb_map_and_accesses()) {
        let index = map.page_index();
        let mut cursor = PageCursor::default();
        for &i in &accesses {
            prop_assert_eq!(index.nth_page_with(i, &mut cursor), index.nth_page(i));
        }
    }

    /// `resolve` agrees element-wise with the scalar placement math for
    /// arbitrary logical addresses (page index × page size + offset).
    #[test]
    fn resolve_agrees_with_scalar_math((map, accesses) in arb_map_and_accesses(), offset in 0u64..4096) {
        let index = map.page_index();
        let logical: Vec<u64> =
            accesses.iter().map(|&i| i * PAGE_SIZE_U64 + offset).collect();
        let resolved = index.resolve(&logical);
        prop_assert_eq!(resolved.len(), logical.len());
        for (&l, &va) in logical.iter().zip(&resolved) {
            let vpn = index.nth_page(l / PAGE_SIZE_U64);
            prop_assert_eq!(va.as_u64(), vpn.base_addr().as_u64() + l % PAGE_SIZE_U64);
        }
    }
}
