//! The parallel matrix driver must be bit-identical to the serial
//! reference, cell for cell, at any worker count — the contract that lets
//! every figure binary run on the pool without changing a single number.

use hytlb::prelude::*;
use hytlb::sim::experiment::{run_suite, run_suite_serial, static_ideal};
use hytlb::sim::matrix::{run_matrix, run_matrix_with, run_matrix_with_static_ideal, MatrixCache};
use hytlb::trace::WorkloadKind;

fn tiny_config() -> PaperConfig {
    PaperConfig { accesses: 6_000, footprint_shift: 6, ..PaperConfig::default() }
}

#[test]
fn run_matrix_equals_serial_reference_cell_for_cell() {
    let scenarios = [Scenario::DemandPaging, Scenario::LowContiguity, Scenario::MaxContiguity];
    let workloads = [WorkloadKind::Canneal, WorkloadKind::Gups, WorkloadKind::Omnetpp];
    let kinds = [SchemeKind::Baseline, SchemeKind::Thp, SchemeKind::Rmm, SchemeKind::AnchorDynamic];
    let serial: Vec<_> = scenarios
        .iter()
        .map(|&s| run_suite_serial(s, &workloads, &kinds, &tiny_config()))
        .collect();
    for threads in [1, 2, 7] {
        let config = PaperConfig { threads: Some(threads), ..tiny_config() };
        let parallel = run_matrix(&scenarios, &workloads, &kinds, &config);
        assert_eq!(parallel.len(), serial.len());
        for (p, s) in parallel.iter().zip(&serial) {
            assert_eq!(p.scenario, s.scenario);
            assert_eq!(p.schemes, s.schemes);
            for (prow, srow) in p.rows.iter().zip(&s.rows) {
                assert_eq!(prow.workload, srow.workload);
                for (prun, srun) in prow.runs.iter().zip(&srow.runs) {
                    assert_eq!(prun, srun, "{}/{}/{threads} threads", p.scenario, prow.workload);
                }
            }
        }
    }
}

#[test]
fn run_suite_is_matrix_backed_and_unchanged() {
    let config = PaperConfig { threads: Some(3), ..tiny_config() };
    let kinds = [SchemeKind::Baseline, SchemeKind::Cluster2Mb];
    let workloads = [WorkloadKind::Milc, WorkloadKind::Mcf];
    let suite = run_suite(Scenario::MediumContiguity, &workloads, &kinds, &config);
    let reference = run_suite_serial(Scenario::MediumContiguity, &workloads, &kinds, &config);
    assert_eq!(suite, reference);
}

#[test]
fn static_ideal_column_replicates_serial_sweep_tie_breaking() {
    let config = PaperConfig { threads: Some(4), ..tiny_config() };
    // Deliberately includes distances likely to tie so first-minimum
    // tie-breaking is exercised, not just the unique-winner path.
    let sweep = [4u64, 8, 32, 4096];
    let kinds = [SchemeKind::Baseline];
    let suites = run_matrix_with_static_ideal(
        &MatrixCache::new(),
        &[Scenario::MediumContiguity, Scenario::MaxContiguity],
        &[WorkloadKind::Canneal, WorkloadKind::Milc],
        &kinds,
        &sweep,
        &config,
    );
    for suite in &suites {
        assert_eq!(suite.schemes.last().map(String::as_str), Some("Static Ideal"));
        for row in &suite.rows {
            let serial_best = static_ideal(row.workload, suite.scenario, &sweep, &config);
            assert_eq!(row.runs.last(), Some(&serial_best), "{}/{}", suite.scenario, row.workload);
        }
    }
}

#[test]
fn shared_cache_across_matrices_changes_nothing() {
    let config = PaperConfig { threads: Some(2), ..tiny_config() };
    let kinds = [SchemeKind::Baseline, SchemeKind::AnchorDynamic];
    let workloads = [WorkloadKind::Gups];
    let cache = MatrixCache::new();
    let first = run_matrix_with(&cache, &[Scenario::LowContiguity], &workloads, &kinds, &config);
    // The second run is served entirely from the cache.
    let second = run_matrix_with(&cache, &[Scenario::LowContiguity], &workloads, &kinds, &config);
    assert_eq!(first, second);
    let stats = cache.stats();
    assert_eq!(stats.mapping_builds, 1);
    assert_eq!(stats.trace_builds, 1);
}
