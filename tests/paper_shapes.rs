//! End-to-end assertions of the paper's headline claims, at reduced scale.
//!
//! These are the "shape" invariants EXPERIMENTS.md reports at full scale,
//! pinned as tests so a regression in any layer (allocator, selector, TLB
//! model, scheme) that breaks a published conclusion fails CI.

use hytlb::prelude::*;
use hytlb::sim::experiment::run_suite;
use hytlb::trace::WorkloadKind;

fn config() -> PaperConfig {
    PaperConfig { accesses: 60_000, footprint_shift: 4, ..PaperConfig::default() }
}

/// A representative sub-suite (one workload per access-pattern archetype)
/// keeps the runtime in CI territory.
fn workloads() -> [WorkloadKind; 4] {
    [
        WorkloadKind::Canneal, // hot/cold
        WorkloadKind::Milc,    // streams
        WorkloadKind::Mcf,     // pointer chase
        WorkloadKind::Omnetpp, // fine-grained hot set
    ]
}

/// Figure 9's headline: Dynamic matches or beats the best prior scheme in
/// every mapping scenario (tolerance: 15% relative, for the reduced scale).
#[test]
fn dynamic_is_best_or_tied_everywhere() {
    let config = config();
    for scenario in Scenario::all() {
        let suite = run_suite(scenario, &workloads(), &SchemeKind::paper_set(), &config);
        let means = suite.mean_relative_misses();
        // Columns: Base THP Cluster Cluster-2MB RMM Dynamic.
        let dynamic = means[5];
        let best_prior = means[1..5].iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            dynamic <= best_prior * 1.15 + 2.0,
            "{scenario}: Dynamic {dynamic:.1} vs best prior {best_prior:.1} ({means:?})"
        );
    }
}

/// Figure 2's motivation shape: cluster helps at every contiguity level but
/// plateaus; RMM is bimodal.
#[test]
fn prior_schemes_have_their_published_failure_modes() {
    let config = config();
    let low = run_suite(
        Scenario::LowContiguity,
        &workloads(),
        &[SchemeKind::Baseline, SchemeKind::Cluster, SchemeKind::Rmm],
        &config,
    )
    .mean_relative_misses();
    let max = run_suite(
        Scenario::MaxContiguity,
        &workloads(),
        &[SchemeKind::Baseline, SchemeKind::Cluster, SchemeKind::Rmm],
        &config,
    )
    .mean_relative_misses();
    assert!(low[1] < 95.0, "cluster helps at low contiguity: {low:?}");
    assert!(low[2] > 95.0, "RMM useless at low contiguity: {low:?}");
    assert!(max[2] < 5.0, "RMM near-perfect at max contiguity: {max:?}");
    assert!(max[1] > 20.0, "cluster plateaus at max contiguity: {max:?}");
}

/// Table 6's regimes: the selected distance tracks the mapping's contiguity.
#[test]
fn selected_distances_track_contiguity_regimes() {
    let config = config();
    let d_for = |scenario| {
        let suite =
            run_suite(scenario, &[WorkloadKind::Canneal], &[SchemeKind::AnchorDynamic], &config);
        suite.rows[0].runs[0].anchor_distance.expect("anchor run")
    };
    let low = d_for(Scenario::LowContiguity);
    let medium = d_for(Scenario::MediumContiguity);
    let max = d_for(Scenario::MaxContiguity);
    assert!(low <= 8, "low regime: {low}");
    assert!((8..=256).contains(&medium), "medium regime: {medium}");
    assert!(max >= 1024, "max regime: {max}");
}

/// §2.1's scalability claim, end to end: on a fully contiguous mapping the
/// anchor TLB needs orders of magnitude fewer walks than HW-only coalescing.
#[test]
fn anchor_coverage_scales_beyond_hw_coalescing() {
    let config = config();
    let suite = run_suite(
        Scenario::MaxContiguity,
        &[WorkloadKind::Milc],
        &[SchemeKind::Cluster2Mb, SchemeKind::Colt, SchemeKind::AnchorDynamic],
        &config,
    );
    let runs = &suite.rows[0].runs;
    let (cluster, colt, anchor) =
        (runs[0].tlb_misses(), runs[1].tlb_misses(), runs[2].tlb_misses());
    assert!(anchor * 10 <= colt.max(1), "anchor {anchor} vs CoLT {colt}");
    assert!(anchor <= cluster, "anchor {anchor} vs cluster {cluster}");
}
