//! Property-based tests (proptest) over the core data structures and the
//! paper's architectural invariants.

use hytlb::core::{AnchorConfig, AnchorScheme, DistanceSelector};
use hytlb::mem::{AddressSpaceMap, BuddyAllocator, ContiguityHistogram, Scenario};
use hytlb::pagetable::{AnchoredPageTable, PageTable};
use hytlb::schemes::TranslationScheme;
use hytlb::types::{Permissions, PhysFrameNum, VirtPageNum};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Strategy: a random valid address-space map as disjoint, non-mergeable
/// chunks.
fn arb_map() -> impl Strategy<Value = AddressSpaceMap> {
    proptest::collection::vec((0u64..2000, 1u64..64), 1..40).prop_map(|specs| {
        let mut map = AddressSpaceMap::new();
        let mut vpn = 0u64;
        let mut pfn = 1u64 << 20;
        for (gap, len) in specs {
            vpn += gap + 1;
            map.map_range(
                VirtPageNum::new(vpn),
                PhysFrameNum::new(pfn),
                len,
                Permissions::READ_WRITE,
            );
            vpn += len;
            pfn += len + 3;
        }
        map
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram always accounts for exactly the mapped pages.
    #[test]
    fn histogram_conserves_pages(map in arb_map()) {
        let hist = ContiguityHistogram::from_map(&map);
        prop_assert_eq!(hist.total_pages(), map.mapped_pages());
        prop_assert_eq!(hist.total_chunks() as usize, map.chunk_count());
    }

    /// nth_page enumerates exactly iter_pages, in order.
    #[test]
    fn page_index_matches_iteration(map in arb_map()) {
        let idx = map.page_index();
        prop_assert_eq!(idx.len(), map.mapped_pages());
        for (i, (vpn, _)) in map.iter_pages().enumerate() {
            prop_assert_eq!(idx.nth_page(i as u64), vpn);
        }
    }

    /// Unmapping what was mapped restores the empty map, regardless of
    /// split order.
    #[test]
    fn unmap_everything_empties(map in arb_map(), split in 1u64..97) {
        let mut m = map.clone();
        let chunks: Vec<_> = map.chunks().copied().collect();
        for c in &chunks {
            // Unmap in two arbitrary pieces.
            let cut = (split % c.len).max(1).min(c.len);
            m.unmap_range(c.vpn, cut);
            if cut < c.len {
                m.unmap_range(c.vpn + cut, c.len - cut);
            }
        }
        prop_assert_eq!(m.mapped_pages(), 0);
        prop_assert_eq!(m.chunk_count(), 0);
    }

    /// Anchor probes never mistranslate, for any distance.
    #[test]
    fn anchor_probe_matches_map(map in arb_map(), dlog in 1u32..17) {
        let d = 1u64 << dlog;
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), d);
        apt.reanchor(&map, d);
        for (vpn, pfn) in map.iter_pages() {
            if let Some(p) = apt.anchor_probe(vpn) {
                if p.covers(vpn) {
                    prop_assert_eq!(p.translate(vpn), pfn);
                }
            }
        }
    }

    /// Every page of every chunk whose anchor page is mapped and within
    /// the same chunk is covered by its anchor (the coverage guarantee the
    /// OS maintains).
    #[test]
    fn anchor_coverage_is_complete(map in arb_map(), dlog in 1u32..9) {
        let d = 1u64 << dlog;
        let mut apt = AnchoredPageTable::new(PageTable::from_map(&map, false), d);
        apt.reanchor(&map, d);
        for chunk in map.chunks() {
            for off in 0..chunk.len {
                let vpn = chunk.vpn + off;
                let avpn = vpn.align_down(d);
                // If the anchor lies inside the same chunk, it must cover.
                if avpn >= chunk.vpn {
                    let p = apt.anchor_probe(vpn);
                    prop_assert!(p.is_some(), "anchor missing at {avpn}");
                    prop_assert!(p.unwrap().covers(vpn), "anchor at {avpn} must cover {vpn}");
                }
            }
        }
    }

    /// The anchor scheme translates correctly on arbitrary maps and
    /// distances (the hardware path, not just the page-table probe).
    #[test]
    fn anchor_scheme_translates_arbitrary_maps(map in arb_map(), dlog in 1u32..17) {
        let d = 1u64 << dlog;
        let mut s = AnchorScheme::new(Arc::new(map.clone()), AnchorConfig::static_distance(d));
        for (vpn, pfn) in map.iter_pages() {
            prop_assert_eq!(s.access(vpn.base_addr()).pfn, Some(pfn));
        }
    }

    /// Algorithm 1 always returns a candidate, and that candidate is
    /// cost-minimal over the candidate set.
    #[test]
    fn selector_returns_cost_minimal_candidate(map in arb_map()) {
        let hist = ContiguityHistogram::from_map(&map);
        let sel = DistanceSelector::paper_default();
        let d = sel.select(&hist);
        prop_assert!(sel.candidates().contains(&d));
        let cost = sel.cost(d, &hist);
        for &c in sel.candidates() {
            prop_assert!(cost <= sel.cost(c, &hist) + 1e-9);
        }
    }

    /// Buddy allocator: random alloc/free interleavings conserve frames
    /// and never hand out overlapping blocks.
    #[test]
    fn buddy_conserves_and_never_overlaps(ops in proptest::collection::vec((0u32..4, any::<u16>()), 1..200)) {
        let total = 1u64 << 12;
        let mut buddy = BuddyAllocator::new(total);
        let mut live: HashMap<u64, u32> = HashMap::new();
        for (order, pick) in ops {
            if u64::from(pick) % 3 == 0 && !live.is_empty() {
                let key = *live.keys().nth(usize::from(pick) % live.len()).unwrap();
                let o = live.remove(&key).unwrap();
                buddy.free(PhysFrameNum::new(key), o).unwrap();
            } else if let Ok(base) = buddy.allocate(order) {
                // No overlap with any live block.
                let b0 = base.as_u64();
                let b1 = b0 + (1 << order);
                prop_assert!(b1 <= total);
                for (&l0, &lo) in &live {
                    let l1 = l0 + (1u64 << lo);
                    prop_assert!(b1 <= l0 || l1 <= b0, "overlap {b0}..{b1} vs {l0}..{l1}");
                }
                live.insert(b0, order);
            }
            let live_frames: u64 = live.values().map(|&o| 1u64 << o).sum();
            prop_assert_eq!(buddy.free_frames(), total - live_frames);
        }
    }

    /// Scenario generation: exact footprint, deterministic, and within the
    /// declared chunk-size bounds.
    #[test]
    fn scenarios_meet_their_contract(seed in 0u64..1000, fp_log in 11u32..15) {
        let fp = 1u64 << fp_log;
        for scenario in Scenario::all() {
            let m = scenario.generate(fp, seed);
            prop_assert_eq!(m.mapped_pages(), fp, "{}", scenario);
            prop_assert_eq!(m, scenario.generate(fp, seed));
        }
        if let Some((_, hi)) = Scenario::LowContiguity.synthetic_range() {
            let m = Scenario::LowContiguity.generate(fp, seed);
            let h = ContiguityHistogram::from_map(&m);
            prop_assert!(h.max_contiguity() <= hi);
        }
    }
}
