//! Disk-backed replay must be invisible to the simulator: a matrix run
//! whose traces come from a recorded `TraceStore` corpus is
//! bit-identical to one whose traces come straight from the generators
//! — across every `SchemeKind` and across TLB flush periods.
//!
//! This is the format's whole contract. The codec is lossy-looking
//! (delta + bit-packing) but must be lossless in fact; any drift would
//! show up here as a differing `RunStats`.

use hytlb::mem::Scenario;
use hytlb::sim::matrix::{try_run_matrix_with, MatrixCache};
use hytlb::sim::{Machine, PaperConfig, SchemeKind};
use hytlb::trace::WorkloadKind;
use hytlb::tracefile::TraceStore;
use std::sync::Arc;

/// Every scheme kind the dispatcher knows, paper set and extensions.
fn all_scheme_kinds() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Baseline,
        SchemeKind::Thp,
        SchemeKind::Thp1G,
        SchemeKind::Cluster,
        SchemeKind::Cluster2Mb,
        SchemeKind::Colt,
        SchemeKind::Rmm,
        SchemeKind::AnchorDynamic,
        SchemeKind::AnchorStatic(64),
        SchemeKind::AnchorMultiRegion(2),
    ]
}

fn test_config() -> PaperConfig {
    PaperConfig { accesses: 6_000, footprint_shift: 5, threads: Some(2), ..PaperConfig::default() }
}

fn scratch_corpus(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hytlb_replay_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn matrix_from_corpus_is_bit_identical_across_all_schemes() {
    let config = test_config();
    let workloads = [WorkloadKind::Gups, WorkloadKind::Mcf];
    let scenarios = [Scenario::LowContiguity, Scenario::HighContiguity];
    let kinds = all_scheme_kinds();

    // Record the corpus from a generating cache.
    let root = scratch_corpus("matrix");
    let generated = MatrixCache::new();
    let mut store = TraceStore::open_or_create(&root).unwrap();
    generated.spill_traces(&mut store, &workloads, &config).unwrap();

    // Replay the full matrix from disk.
    let replayed = MatrixCache::with_corpus(Arc::new(TraceStore::open_or_create(&root).unwrap()));
    let from_generator =
        try_run_matrix_with(&generated, &scenarios, &workloads, &kinds, &config).unwrap();
    let from_corpus =
        try_run_matrix_with(&replayed, &scenarios, &workloads, &kinds, &config).unwrap();
    assert_eq!(from_generator, from_corpus, "replayed matrix differs from generated");

    // Every trace came off disk; the generator never ran in the replay
    // cache.
    let stats = replayed.stats();
    assert_eq!(stats.trace_loads, workloads.len());
    assert_eq!(stats.trace_builds, 0);

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn flush_period_runs_are_bit_identical_from_corpus() {
    let config = test_config();
    let workload = WorkloadKind::Graph500;
    let scenario = Scenario::MediumContiguity;

    let root = scratch_corpus("flush");
    let generated = MatrixCache::new();
    let mut store = TraceStore::open_or_create(&root).unwrap();
    generated.spill_traces(&mut store, &[workload], &config).unwrap();
    let replayed = MatrixCache::with_corpus(Arc::new(TraceStore::open_or_create(&root).unwrap()));

    // The resolved traces must already be identical…
    let resolved_gen = generated.resolved_trace(workload, scenario, &config);
    let resolved_replay = replayed.resolved_trace(workload, scenario, &config);
    assert_eq!(resolved_gen, resolved_replay, "resolved traces differ");

    // …and so must full runs, for every scheme at every flush period.
    let shared_gen = generated.mapping(workload, scenario, &config);
    let shared_replay = replayed.mapping(workload, scenario, &config);
    for kind in all_scheme_kinds() {
        for flush_period in [u64::MAX, 2048] {
            let a = Machine::for_scheme_indexed(kind, &shared_gen.map, &shared_gen.index, &config)
                .try_run_resolved_with_flush_period(&resolved_gen, flush_period)
                .unwrap();
            let b = Machine::for_scheme_indexed(
                kind,
                &shared_replay.map,
                &shared_replay.index,
                &config,
            )
            .try_run_resolved_with_flush_period(&resolved_replay, flush_period)
            .unwrap();
            assert_eq!(a, b, "{kind:?} at flush period {flush_period} diverged");
        }
    }

    std::fs::remove_dir_all(&root).ok();
}
