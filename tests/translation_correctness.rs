//! Cross-crate integration tests: every scheme, over every scenario, must
//! translate exactly like the OS's authoritative mapping — the end-to-end
//! contract of the whole stack (mem → pagetable → tlb → schemes → sim).

use hytlb::prelude::*;
use hytlb::sim::experiment::{mapping_for, trace_for};
use hytlb::trace::WorkloadKind;

fn all_kinds() -> Vec<SchemeKind> {
    let mut kinds = SchemeKind::paper_set().to_vec();
    kinds.push(SchemeKind::AnchorStatic(16));
    kinds.push(SchemeKind::AnchorStatic(4096));
    kinds.push(SchemeKind::AnchorMultiRegion(4));
    kinds
}

fn tiny_config() -> PaperConfig {
    PaperConfig { accesses: 5_000, footprint_shift: 6, ..PaperConfig::default() }
}

#[test]
fn every_scheme_translates_correctly_on_every_scenario() {
    let config = tiny_config();
    for scenario in Scenario::all() {
        let map = mapping_for(WorkloadKind::Canneal, scenario, &config);
        for kind in all_kinds() {
            let mut scheme = kind.build(&map, &config);
            for (vpn, pfn) in map.iter_pages().step_by(7) {
                let got = scheme.access(vpn.base_addr()).pfn;
                assert_eq!(got, Some(pfn), "{kind} mistranslated {vpn} under {scenario}");
            }
            // Re-walk through warm TLBs.
            for (vpn, pfn) in map.iter_pages().step_by(13) {
                let got = scheme.access(vpn.base_addr()).pfn;
                assert_eq!(got, Some(pfn), "{kind} warm mistranslation under {scenario}");
            }
        }
    }
}

#[test]
fn machine_runs_agree_with_direct_scheme_access() {
    let config = tiny_config();
    let map = mapping_for(WorkloadKind::Milc, Scenario::MediumContiguity, &config);
    let trace = trace_for(WorkloadKind::Milc, &config);
    let run_a =
        Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config).run(trace.iter().copied());
    let run_b =
        Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config).run(trace.iter().copied());
    assert_eq!(run_a, run_b, "simulation must be deterministic");
    assert_eq!(run_a.accesses, config.accesses);
}

#[test]
fn miss_counts_are_internally_consistent() {
    let config = tiny_config();
    for kind in all_kinds() {
        let map = mapping_for(WorkloadKind::Gups, Scenario::LowContiguity, &config);
        let trace = trace_for(WorkloadKind::Gups, &config);
        let run = Machine::for_scheme(kind, &map, &config).run(trace);
        let s = &run.stats;
        assert_eq!(
            s.accesses,
            s.l1_hits + s.l2_regular_hits + s.coalesced_hits + s.walks + s.faults,
            "{kind}: access breakdown must sum"
        );
        assert_eq!(s.faults, 0, "{kind}: traces touch only mapped pages");
        let rates = s.l2_regular_hit_rate() + s.l2_coalesced_hit_rate() + s.l2_miss_rate();
        assert!((rates - 1.0).abs() < 1e-9 || s.l2_accesses() == 0, "{kind}: rates sum to 1");
    }
}

#[test]
fn anchor_never_loses_to_itself_across_epochs() {
    // Running with epochs enabled (dynamic) on a stable mapping must not
    // flush TLBs or change distance mid-run.
    let config = PaperConfig {
        accesses: 30_000,
        epoch_instructions: 10_000, // many epoch checks within the run
        footprint_shift: 6,
        ..PaperConfig::default()
    };
    let map = mapping_for(WorkloadKind::Canneal, Scenario::MediumContiguity, &config);
    let trace = trace_for(WorkloadKind::Canneal, &config);
    let run = Machine::for_scheme(SchemeKind::AnchorDynamic, &map, &config).run(trace);
    let d = run.anchor_distance.expect("anchor distance");
    assert!(d.is_power_of_two());
}

#[test]
fn paper_set_ordering_on_extreme_scenarios() {
    // The coarse shape of Figure 9's two extreme columns.
    let config = PaperConfig { accesses: 40_000, footprint_shift: 5, ..PaperConfig::default() };
    let suite = hytlb::sim::experiment::run_suite(
        Scenario::MaxContiguity,
        &[WorkloadKind::Milc, WorkloadKind::Canneal],
        &SchemeKind::paper_set(),
        &config,
    );
    let means = suite.mean_relative_misses();
    // Columns: Base THP Cluster Cluster-2MB RMM Dynamic.
    assert!(means[4] < 10.0, "RMM nearly eliminates misses at max contiguity: {means:?}");
    assert!(means[5] < 10.0, "Dynamic matches RMM at max contiguity: {means:?}");

    let suite = hytlb::sim::experiment::run_suite(
        Scenario::LowContiguity,
        &[WorkloadKind::Milc, WorkloadKind::Canneal],
        &SchemeKind::paper_set(),
        &config,
    );
    let means = suite.mean_relative_misses();
    assert!(means[1] > 95.0, "THP ineffective at low contiguity: {means:?}");
    assert!(means[4] > 95.0, "RMM ineffective at low contiguity: {means:?}");
    assert!(means[5] < means[2], "Dynamic beats Cluster at low contiguity: {means:?}");
}
