//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking API subset this workspace uses —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros — with a simple wall-clock measurement loop: a warm-up
//! iteration, then `sample_size` timed samples, reporting min / median /
//! mean per benchmark to stdout.
//!
//! No statistical analysis, plotting or saved baselines; the goal is that
//! `cargo bench` runs offline and prints comparable numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(10);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10, throughput: None }
    }

    /// Compatibility hook: the real crate parses CLI arguments here.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Compatibility hook: flushes reports in the real crate.
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation (printed next to timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report_grouped(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report_grouped(&self.name, &id.to_string(), self.throughput);
        self
    }

    /// Ends the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Times the closure handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Runs `routine` once for warm-up and `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn stats(&self) -> (Duration, Duration, Duration) {
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted.first().copied().unwrap_or_default();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let mean =
            sorted.iter().sum::<Duration>().checked_div(sorted.len() as u32).unwrap_or_default();
        (min, median, mean)
    }

    fn report(&self, name: &str) {
        self.report_grouped("", name, None);
    }

    fn report_grouped(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        let (min, median, mean) = self.stats();
        let label = if group.is_empty() { id.to_owned() } else { format!("{group}/{id}") };
        let rate = match throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                let per_sec = n as f64 / median.as_secs_f64();
                if per_sec >= 1e6 {
                    format!("  {:.1} Melem/s", per_sec / 1e6)
                } else if per_sec >= 1e3 {
                    format!("  {:.1} Kelem/s", per_sec / 1e3)
                } else {
                    format!("  {per_sec:.1} elem/s")
                }
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  {:.1} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!(
            "bench {label:<50} min {min:>10.3?}  median {median:>10.3?}  mean {mean:>10.3?}{rate}"
        );
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| black_box(2u64 + 2));
        assert_eq!(b.samples.len(), 5);
        let (min, median, mean) = b.stats();
        assert!(min <= median && median <= mean.max(median));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2).throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
                b.iter(|| {
                    calls += 1;
                    x * 2
                });
            });
            g.finish();
        }
        // One warm-up + two samples.
        assert_eq!(calls, 3);
        c.bench_function("single", |b| b.iter(|| 1u64));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("Base").to_string(), "Base");
    }
}
