//! Offline stand-in for `proptest`.
//!
//! Implements the property-testing API subset this workspace uses —
//! [`Strategy`] over ranges, tuples, `prop_map`, weighted
//! [`prop_oneof!`], [`collection::vec`], [`any`], [`Just`] and the
//! [`proptest!`] macro — driven by the in-workspace `rand` crate.
//!
//! Differences from crates-io proptest: failures are reported by the
//! standard panic machinery without input shrinking, and case generation
//! is deterministic per test function (seeded from the case index), so
//! failures reproduce exactly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Re-exports matching `proptest::prelude::*` as used in this workspace.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for one test case: seeded from the property name and case
    /// index so every case is independent and reproducible.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        TestRng(SmallRng::seed_from_u64(
            name_hash ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform sample from a range (delegates to the rand stand-in).
    pub fn gen_range<T, S: rand::SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` to unify arm types).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// A constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A / 0, B / 1)
        (A / 0, B / 1, C / 2)
        (A / 0, B / 1, C / 2, D / 3)
    }

    /// Full-domain values, for [`any`].
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T`, uniformly over its domain.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Weighted union of strategies (behind [`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> OneOf<T> {
        /// Builds a union; weights must not all be zero.
        ///
        /// # Panics
        ///
        /// Panics on an empty arm list or all-zero weights.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof needs a positive total weight");
            OneOf { arms, total_weight }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, strat) in &self.arms {
                let weight = u64::from(*weight);
                if pick < weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to total_weight")
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut super::TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts inside a property (alias of `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Asserts equality inside a property (alias of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Weighted choice between strategies: `prop_oneof![w1 => s1, w2 => s2]`.
/// Unweighted arms default to weight 1.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $(($weight, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1u32 => $strat),+]
    };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (@cfg ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        Small(u64),
        Flag(bool),
        Fixed,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u64..10, 5u32..8), c in 1usize..=3) {
            prop_assert!(a < 10);
            prop_assert!((5..8).contains(&b));
            prop_assert!((1..=3).contains(&c));
        }

        #[test]
        fn vec_and_map(xs in crate::collection::vec((0u64..100).prop_map(|v| v * 2), 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|v| v % 2 == 0));
        }

        #[test]
        fn oneof_hits_every_weighted_arm(picks in crate::collection::vec(
            prop_oneof![
                4 => (0u64..5).prop_map(Pick::Small),
                2 => any::<bool>().prop_map(Pick::Flag),
                1 => Just(Pick::Fixed),
            ],
            64..65,
        )) {
            prop_assert_eq!(picks.len(), 64);
            prop_assert!(picks.iter().any(|p| matches!(p, Pick::Small(_))));
        }
    }

    #[test]
    fn cases_are_reproducible() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
