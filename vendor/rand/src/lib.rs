//! Offline stand-in for the `rand` crate.
//!
//! The build container pins all dependencies to in-workspace sources (no
//! network, no registry cache), so this crate reimplements exactly the API
//! subset the workspace uses: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, the same generator family real `rand 0.8` uses on 64-bit
//! targets), [`SeedableRng::seed_from_u64`], and the [`Rng`] convenience
//! methods `gen`, `gen_range` and `gen_bool`.
//!
//! Streams are deterministic for a given seed but are not guaranteed to be
//! bit-identical to crates-io `rand`; every consumer in this workspace only
//! relies on determinism, not on specific values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly-distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly-distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Primitive integers that can be drawn uniformly from a span.
///
/// Mirrors real rand's `SampleUniform` just enough for inference: the
/// [`SampleRange`] impls below are generic over one `T`, so an integer
/// literal in `gen_range(1..=8)` unifies with the surrounding expression
/// instead of defaulting to `i32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + num_helpers::StepDown> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_inclusive(self.start, self.end.step_down(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty inclusive range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

mod num_helpers {
    /// Largest value strictly below `self` (used to turn `lo..hi` into the
    /// inclusive `[lo, hi - 1]`). Only called on non-empty ranges, so the
    /// wrap can never be observed.
    pub trait StepDown {
        fn step_down(self) -> Self;
    }

    macro_rules! impl_step_down {
        ($($t:ty),*) => {$(
            impl StepDown for $t {
                fn step_down(self) -> $t {
                    self.wrapping_sub(1)
                }
            }
        )*};
    }

    impl_step_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator — xoshiro256++, seeded through SplitMix64,
    /// matching the generator family real `rand 0.8` uses for `SmallRng`
    /// on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state,
            // as rand_core's default seed_from_u64 does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=6);
            assert!((3..=6).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
