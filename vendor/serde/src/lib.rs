//! Offline stand-in for `serde`.
//!
//! The build container pins all dependencies to in-workspace sources, so
//! this crate provides the (much smaller) serialization model the
//! workspace actually uses: a JSON-shaped [`Value`] tree, [`Serialize`] /
//! [`Deserialize`] traits converting to and from it, and `#[derive]`
//! macros (re-exported from `serde_derive`) covering the type shapes in
//! this repository — named structs, tuple/newtype structs, and enums with
//! unit, tuple and struct variants, all without generics.
//!
//! The derive output follows serde's externally-tagged conventions so
//! archived result JSON keeps the same shape it had with crates-io serde:
//! unit variants serialize as `"Name"`, newtype variants as
//! `{"Name": value}`, tuple variants as `{"Name": [..]}` and struct
//! variants as `{"Name": {..}}`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the single data model of this stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Non-negative integers.
    UInt(u64),
    /// Negative integers.
    Int(i64),
    /// Floating-point numbers.
    Float(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short label for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Builds an error describing a mismatch.
    #[must_use]
    pub fn expected(what: &str, found: &Value) -> Self {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        u64::from_value(value).and_then(|u| {
            usize::try_from(u).map_err(|_| Error(format!("{u} out of range for usize")))
        })
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error(format!("{u} out of range for {}", stringify!($t)))),
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error(format!("{i} out of range for {}", stringify!($t)))),
                    other => Err(Error::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }

        impl Deserialize for $t {
            #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

// ------------------------------------------------------- other primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ------------------------------------------------------------ containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::expected("2-element array", other)),
        }
    }
}

/// Maps serialize as arrays of `[key, value]` pairs: JSON objects require
/// string keys, and this workspace's maps are integer-keyed. The encoding
/// round-trips through this crate's own [`Deserialize`].
impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(<(K, V)>::from_value).collect(),
            other => Err(Error::expected("array of [key, value] pairs", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(Option::<u64>::from_value(&Value::Null), Ok(None));
        assert_eq!(f64::from_value(&Value::UInt(3)), Ok(3.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let mut m = BTreeMap::new();
        m.insert(5u64, "five".to_owned());
        assert_eq!(BTreeMap::<u64, String>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(u64::from_value(&Value::String("x".into())).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        let e = Error::expected("integer", &Value::Null);
        assert!(e.to_string().contains("expected integer"));
    }

    #[test]
    fn object_get_finds_keys() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.get("a"), Some(&Value::UInt(1)));
        assert_eq!(obj.get("b"), None);
        assert_eq!(Value::Null.get("a"), None);
    }
}
