//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the in-workspace
//! serde stand-in.
//!
//! Implemented directly on `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline). Supports the type shapes used in this workspace:
//!
//! * named-field structs,
//! * tuple structs (newtypes serialize as their inner value, wider tuples
//!   as arrays),
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, matching serde's default representation),
//!
//! all without generic parameters. Unsupported shapes produce a
//! `compile_error!` naming the limitation rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct Name { a: A, b: B }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct Name(A, B);` — field count.
    TupleStruct(usize),
    /// `enum Name { ... }`.
    Enum(Vec<Variant>),
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields (1 = newtype).
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (the stand-in's value-tree conversion).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (the stand-in's value-tree conversion).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&str, &Shape) -> String) -> TokenStream {
    match parse_item(input) {
        Ok((name, shape)) => {
            gen(&name, &shape).parse().expect("serde_derive generated invalid Rust")
        }
        Err(msg) => {
            format!("::core::compile_error!({msg:?});").parse().expect("compile_error tokens")
        }
    }
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<(String, Shape), String> {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the offline serde stand-in"
        ));
    }
    match (keyword.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::NamedStruct(parse_field_names(g.stream())?)))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok((name, Shape::TupleStruct(count_top_level(g.stream()))))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::Enum(parse_variants(g.stream())?)))
        }
        (kw, other) => {
            Err(format!("serde_derive: unsupported item shape `{kw}` followed by {other:?}"))
        }
    }
}

/// Skips `#[attr]` groups, doc comments and visibility modifiers.
fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                iter.next();
                if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    iter.next(); // pub(crate) / pub(super)
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-field body `a: A, b: B`.
fn parse_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut iter = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        match iter.next() {
            None => return Ok(names),
            Some(TokenTree::Ident(field)) => {
                names.push(field.to_string());
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => {
                        return Err(format!(
                            "serde_derive: expected `:` after field `{field}`, got {other:?}"
                        ))
                    }
                }
                skip_type_until_comma(&mut iter);
            }
            Some(other) => return Err(format!("serde_derive: expected field name, got {other}")),
        }
    }
}

/// Consumes type tokens up to (and including) the next comma that is not
/// nested inside `<...>` generics.
fn skip_type_until_comma(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    for tok in iter.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts comma-separated entries at angle-depth zero (tuple-struct arity).
fn count_top_level(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for tok in body {
        saw_any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // `(A, B)` has one top-level comma and two fields; a trailing comma
    // over-counts by one but `(A, B,)` does not occur in this workspace.
    usize::from(saw_any) + count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("serde_derive: expected variant, got {other}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level(g.stream());
                iter.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_field_names(g.stream())?;
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_type_until_comma(&mut iter);
        variants.push(Variant { name, kind });
    }
}

// ---------------------------------------------------------- generation

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| serialize_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_arm(ty: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{ty}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?})),"
        ),
        VariantKind::Tuple(1) => format!(
            "{ty}::{vn}(f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{ty}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Array(::std::vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Struct(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))")
                })
                .collect();
            format!(
                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Object(::std::vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(name, f)).collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Object(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     other => ::std::result::Result::Err(::serde::Error::expected(\"object for {name}\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match value {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}\", other)),\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// `field: from_value(...)` initializer with the lookup defaulting to
/// `Null` so `Option` fields tolerate missing keys while required fields
/// report a shape error.
fn named_field_init(ty: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(value.get({field:?}).unwrap_or(&::serde::Value::Null))\
             .map_err(|e| ::serde::Error(::std::format!(\"{ty}.{field}: {{}}\", e.0)))?"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push(format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),"));
            }
            VariantKind::Tuple(1) => tagged_arms.push(format!(
                "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
            )),
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "{vn:?} => match inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => ::std::result::Result::Ok({name}::{vn}({})),\n\
                         other => ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}::{vn}\", other)),\n\
                     }},",
                    items.join(", ")
                ));
            }
            VariantKind::Struct(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "{vn:?} => match inner {{\n\
                         ::serde::Value::Object(_) => ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n\
                         other => ::std::result::Result::Err(::serde::Error::expected(\"object for {name}::{vn}\", other)),\n\
                     }},",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match value {{\n\
             ::serde::Value::String(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
             }},\n\
             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::Error::expected(\"{name} variant\", other)),\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
