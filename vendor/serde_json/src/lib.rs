//! Offline stand-in for `serde_json`: emits and parses JSON text over the
//! in-workspace serde [`Value`] tree, plus a flat [`json!`] macro.
//!
//! Supports the API subset this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`], [`from_slice`] and
//! `json!({...})` with literal keys and expression values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

pub use serde::Value;

/// Errors from JSON parsing or shape mismatches while deserializing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching serde_json's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

// -------------------------------------------------------------- emitting

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// This stand-in cannot fail; the `Result` keeps serde_json's signature.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indent).
///
/// # Errors
///
/// This stand-in cannot fail; the `Result` keeps serde_json's signature.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
///
/// # Errors
///
/// This stand-in cannot fail; the `Result` keeps serde_json's signature.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            ('[', ']'),
            indent,
            depth,
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            entries.len(),
            ('{', '}'),
            indent,
            depth,
            |out, (k, item), ind, d| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, item, ind, d);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    brackets: (char, char),
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(brackets.0);
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // serde_json representation of non-finite floats.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep the ".0" so the value reads back as a float.
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON bytes into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on non-UTF-8 input, malformed JSON or a shape
/// mismatch.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number {text:?} at byte {start}")))
    }
}

// ------------------------------------------------------------ json! macro

/// Builds a [`Value`] from flat object/array literals, mirroring the
/// serde_json macro for the shapes this workspace uses: string-literal
/// keys with expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::value_from(&$val))),*
        ])
    };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::value_from(&$elem)),*])
    };
    ($other:expr) => { $crate::value_from(&$other) };
}

/// Converts any [`serde::Serialize`] into a [`Value`] — the conversion
/// behind [`json!`] interpolation.
pub fn value_from<T: serde::Serialize>(value: T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("42", Value::UInt(42)),
            ("-7", Value::Int(-7)),
            ("1.5", Value::Float(1.5)),
            ("\"hi\\n\"", Value::String("hi\n".into())),
        ] {
            assert_eq!(parse_value_str(text).unwrap(), value, "{text}");
            assert_eq!(parse_value_str(&to_string(&value).unwrap()).unwrap(), value);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = json!({
            "name": "fig09",
            "rows": [1u64, 2u64, 3u64],
            "nested": json!({"mean": 12.25}),
            "flag": true,
        });
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value_str(&pretty).unwrap(), v);
        assert!(pretty.contains("  \"name\": \"fig09\""));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&100.0f64).unwrap(), "100.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_errors_carry_position() {
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("[] trailing").is_err());
        assert!(from_slice::<Value>(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, vec![1, 2, 3]);
        let maybe: Option<u64> = from_str("null").unwrap();
        assert_eq!(maybe, None);
    }
}
